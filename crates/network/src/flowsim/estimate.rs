//! Estimation mode: Parsimon-style link clustering for fast sweeps.
//!
//! The exact fabric ([`FlowSimulator`](crate::flowsim::FlowSimulator))
//! re-solves max–min rates on every
//! inject/completion — bit-perfect, but a full scenario sweep pays that
//! cost for every configuration. This module trades a *stated, validated*
//! error bound for order-of-magnitude sweep throughput, the same
//! fidelity-for-speed trade the Glasgow testbed makes in hardware:
//!
//! 1. **Features** — every loaded link direction ("resource") gets a
//!    traffic feature vector read off one routing pass: offered load,
//!    flow count, flow-size mix, fan-in/fan-out degree and capacity
//!    tier (see [`LinkFeatures`]).
//! 2. **Clustering** — a deterministic, seeded greedy pass groups
//!    resources whose min–max-normalised features sit within
//!    [`EstimateConfig::epsilon`] of a cluster representative under a
//!    pluggable [`FeatureMetric`].
//! 3. **Representatives** — one *exact* single-link solve runs per
//!    cluster: on an isolated link max–min fairness is weighted
//!    processor sharing, so the representative's crossing flows are
//!    solved with the `O(n log n)` virtual-time construction instead of
//!    the event loop, fanned out on the quarantined
//!    [`partition::map_ordered`] pool.
//! 4. **EDist composition** — each representative's observed per-flow
//!    slowdowns (FCT ÷ ideal FCT) form an [`EDist`] broadcast to every
//!    cluster member; a flow's predicted slowdown blends the worst
//!    cluster on its path (the fluid-model bottleneck rule) with the
//!    summed per-cluster excess (additive multi-hop accumulation),
//!    sampled comonotonically (one inverse-CDF coordinate per flow),
//!    and cloud-wide percentiles are read off the composed predictions.
//!
//! The whole pipeline is a pure function of `(topology, workload, seed)`
//! — byte-identical across runs and worker counts (`tests/estimate.rs`)
//! — and its accuracy against the exact oracle is measured and bounded
//! in `EXPERIMENTS.md` §S2 / `BENCH_estimate.json`.

use crate::flow::{FlowId, FlowSpec};
use crate::flowsim::{partition, RateAllocator};
use crate::routing::{Router, RoutingPolicy};
use crate::topology::Topology;
use picloud_simcore::units::Bytes;
use picloud_simcore::{EDist, SeedFactory, SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How faithfully a scenario is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FidelityMode {
    /// Full exact max–min simulation of every flow on every link.
    #[default]
    Exact,
    /// Parsimon-style estimation: cluster links by traffic features,
    /// simulate one representative per cluster, compose percentiles
    /// from empirical delay distributions.
    Estimate,
}

impl FidelityMode {
    /// Parses a CLI token (`"exact"` / `"estimate"`).
    pub fn parse(s: &str) -> Option<FidelityMode> {
        match s {
            "exact" => Some(FidelityMode::Exact),
            "estimate" => Some(FidelityMode::Estimate),
            _ => None,
        }
    }

    /// The canonical lower-case label (`"exact"` / `"estimate"`).
    pub fn label(self) -> &'static str {
        match self {
            FidelityMode::Exact => "exact",
            FidelityMode::Estimate => "estimate",
        }
    }
}

/// Distance metric over normalised link-feature vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FeatureMetric {
    /// Dimension-normalised Euclidean distance:
    /// `sqrt(mean((a_i - b_i)^2))`, so epsilon is scale-free in the
    /// number of features.
    #[default]
    NormL2,
    /// Chebyshev distance: `max_i |a_i - b_i|` — clusters only links
    /// that agree on *every* feature.
    MaxRel,
}

impl FeatureMetric {
    /// Distance between two normalised feature vectors.
    pub fn distance(self, a: &[f64; FEATURE_DIMS], b: &[f64; FEATURE_DIMS]) -> f64 {
        match self {
            FeatureMetric::NormL2 => {
                let sum: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
                (sum / FEATURE_DIMS as f64).sqrt()
            }
            FeatureMetric::MaxRel => a
                .iter()
                .zip(b.iter())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        }
    }
}

/// Number of dimensions in a [`LinkFeatures`] vector.
pub const FEATURE_DIMS: usize = 6;

/// Traffic features of one loaded link direction, extracted from a
/// single routing pass over the workload (no simulation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFeatures {
    /// The directed-resource index (`link-index * 2 + direction`).
    pub resource: usize,
    /// Routed bits ÷ capacity ÷ workload horizon — the fraction of the
    /// link's capacity the workload asks for.
    pub offered_load: f64,
    /// `log2(1 + n)` of the flows crossing this direction.
    pub flow_count: f64,
    /// Mean `log2` of the crossing flows' sizes in bits — the
    /// mice-vs-elephants mix.
    pub mean_log2_bits: f64,
    /// Links attached to the sending endpoint (traffic can converge
    /// from this many directions).
    pub fan_in: f64,
    /// Links attached to the receiving endpoint.
    pub fan_out: f64,
    /// `log2` of the link capacity in Mbit/s — the oversubscription
    /// tier (access vs fabric vs core).
    pub capacity_tier: f64,
}

impl LinkFeatures {
    /// The raw feature vector, in a fixed dimension order.
    pub fn vector(&self) -> [f64; FEATURE_DIMS] {
        [
            self.offered_load,
            self.flow_count,
            self.mean_log2_bits,
            self.fan_in,
            self.fan_out,
            self.capacity_tier,
        ]
    }
}

/// Tuning knobs for the estimation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimateConfig {
    /// Distance metric over normalised feature vectors.
    pub metric: FeatureMetric,
    /// Clustering radius: a resource joins the first cluster whose
    /// representative is within `epsilon` under `metric`.
    pub epsilon: f64,
    /// Seed for the clustering visit order and the per-flow
    /// inverse-CDF draw coordinates.
    pub seed: u64,
    /// Path-composition blend between bottleneck-only (`0.0`: the
    /// flow's slowdown is the worst cluster on its path, exact for a
    /// single congested hop under max–min fairness) and fully additive
    /// (`1.0`: per-cluster excess delays sum, which over-counts when
    /// one bottleneck dominates). The default is fitted against the
    /// exact oracle on the S2 sweep (`EXPERIMENTS.md` §S2).
    pub blend: f64,
}

impl Default for EstimateConfig {
    fn default() -> Self {
        EstimateConfig {
            metric: FeatureMetric::NormL2,
            epsilon: 0.05,
            seed: 0,
            blend: 0.3,
        }
    }
}

impl EstimateConfig {
    /// The default configuration with the given seed.
    pub fn seeded(seed: u64) -> Self {
        EstimateConfig {
            seed,
            ..EstimateConfig::default()
        }
    }
}

/// One cluster of similar link directions: a representative resource
/// (simulated exactly) and the members its delay distribution is
/// broadcast to. Members are ascending; the representative is a member.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkCluster {
    /// The resource whose crossing flows are replayed exactly.
    pub representative: usize,
    /// Every resource in the cluster, ascending (includes the
    /// representative).
    pub members: Vec<usize>,
}

/// The predicted fate of one workload flow under estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowPrediction {
    /// Injection instant.
    pub start: SimTime,
    /// Transfer size in bits.
    pub size_bits: f64,
    /// Contention-free completion time (bottleneck-rate transfer plus
    /// path propagation), seconds.
    pub ideal_secs: f64,
    /// Max composed slowdown over the clusters on the flow's path.
    pub slowdown: f64,
    /// Predicted flow-completion time, seconds
    /// (`ideal_secs * slowdown`).
    pub fct_secs: f64,
}

/// Everything the estimation pipeline produced for one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateOutcome {
    /// The derived clusters, in creation order.
    pub clusters: Vec<LinkCluster>,
    /// Link directions carrying at least one flow (the clustered set).
    pub loaded_resources: usize,
    /// Flows replayed inside representative simulations — the exact
    /// solver ran on this many flows instead of the whole workload.
    pub rep_flows_solved: usize,
    /// Per-flow predictions, in workload order (unroutable flows are
    /// skipped).
    pub predictions: Vec<FlowPrediction>,
}

impl EstimateOutcome {
    /// Number of clusters (= representative simulations run).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// The predicted-FCT distribution across all flows.
    pub fn fct_dist(&self) -> EDist {
        EDist::from_samples(self.predictions.iter().map(|p| p.fct_secs).collect())
    }
}

/// A routed workload flow, reduced to what estimation needs.
struct RoutedFlow {
    start: SimTime,
    size_bits: f64,
    size: Bytes,
    weight: f64,
    resources: Vec<usize>,
    ideal_secs: f64,
}

/// An owned representative job: one cluster's exact single-link replay.
struct RepJob {
    capacity_bps: u64,
    latency: SimDuration,
    /// `(start, size, weight)` of each crossing flow, workload order.
    flows: Vec<(SimTime, Bytes, f64)>,
}

/// The estimation-mode counterpart of
/// [`FlowSimulator`](crate::flowsim::FlowSimulator): same
/// constructor shape (topology, routing policy, allocator), but `run`
/// predicts FCT percentiles from clustered representatives instead of
/// simulating every flow.
#[derive(Debug, Clone)]
pub struct FlowEstimator {
    topo: Topology,
    policy: RoutingPolicy,
    allocator: RateAllocator,
    workers: usize,
    config: EstimateConfig,
}

impl FlowEstimator {
    /// Creates an estimator over `topo` with the given routing policy
    /// and rate allocator (the representatives replay under the same
    /// allocator the exact oracle would use).
    pub fn new(topo: Topology, policy: RoutingPolicy, allocator: RateAllocator) -> Self {
        FlowEstimator {
            topo,
            policy,
            allocator,
            workers: 1,
            config: EstimateConfig::default(),
        }
    }

    /// Builder-style worker count for the representative fan-out.
    /// Purely a speed knob: predictions are byte-identical at every
    /// worker count (each representative simulation owns its data and
    /// results merge in cluster order).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder-style estimation config (metric, epsilon, seed).
    #[must_use]
    pub fn with_config(mut self, config: EstimateConfig) -> Self {
        self.config = config;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &EstimateConfig {
        &self.config
    }

    /// Runs the full pipeline over `events` (time-ordered
    /// `(arrival, spec)` pairs, e.g. `TrafficWorkload::events`):
    /// features → clustering → representative replays → EDist
    /// composition. Unroutable specs are skipped, mirroring what the
    /// exact simulator would reject.
    pub fn estimate(&self, events: &[(SimTime, FlowSpec)]) -> EstimateOutcome {
        let n_res = self.topo.links().len() * 2;
        let routed = self.route_workload(events);
        // --- 1. Per-resource aggregates from one routing pass. -------
        let mut bits_on = vec![0.0f64; n_res];
        let mut count_on = vec![0u32; n_res];
        let mut log2_sum = vec![0.0f64; n_res];
        let mut flows_on: Vec<Vec<u32>> = vec![Vec::new(); n_res];
        for (i, f) in routed.iter().enumerate() {
            let log2_bits = f.size_bits.max(1.0).log2();
            for &r in &f.resources {
                bits_on[r] += f.size_bits;
                count_on[r] += 1;
                log2_sum[r] += log2_bits;
                flows_on[r].push(i as u32);
            }
        }
        let loaded: Vec<usize> = (0..n_res).filter(|&r| count_on[r] > 0).collect();
        let features = self.extract_features(&loaded, &bits_on, &count_on, &log2_sum, &routed);
        // --- 2. Seeded greedy clustering over normalised features. ---
        let seeds = SeedFactory::new(self.config.seed);
        let clusters = cluster_links(&features, &self.config, &seeds);
        // --- 3. One exact replay per representative, fanned out. -----
        let jobs: Vec<RepJob> = clusters
            .iter()
            .map(|c| {
                let r = c.representative;
                let link = self.topo.link(crate::topology::LinkId((r / 2) as u32));
                RepJob {
                    capacity_bps: link.capacity.as_bps(),
                    latency: link.latency,
                    flows: flows_on[r]
                        .iter()
                        .map(|&i| {
                            let f = &routed[i as usize];
                            (f.start, f.size, f.weight)
                        })
                        .collect(),
                }
            })
            .collect();
        let rep_flows_solved: usize = jobs.iter().map(|j| j.flows.len()).sum();
        let allocator = self.allocator;
        let dists: Vec<EDist> = partition::map_ordered(self.workers, &jobs, |_, job| {
            run_representative(job, allocator)
        });
        // --- 4. Compose predictions: max slowdown over path clusters,
        //        sampled comonotonically (one draw coordinate per flow).
        let mut cluster_of: Vec<Option<u32>> = vec![None; n_res];
        for (ci, c) in clusters.iter().enumerate() {
            for &m in &c.members {
                cluster_of[m] = Some(ci as u32);
            }
        }
        let mut draw = seeds.stream("estimate/draw");
        let predictions: Vec<FlowPrediction> = routed
            .iter()
            .map(|f| {
                let u: f64 = draw.gen_range(0.0..1.0);
                let mut max_excess = 0.0f64;
                let mut sum_excess = 0.0f64;
                let mut seen: Vec<u32> = Vec::with_capacity(f.resources.len());
                for &r in &f.resources {
                    if let Some(ci) = cluster_of[r] {
                        if seen.contains(&ci) {
                            continue;
                        }
                        seen.push(ci);
                        let d = &dists[ci as usize];
                        if !d.is_empty() {
                            let e = (d.sample_at(u) - 1.0).max(0.0);
                            sum_excess += e;
                            max_excess = max_excess.max(e);
                        }
                    }
                }
                // Blend between the fluid-model bottleneck rule (max)
                // and additive per-hop delay accumulation (sum).
                let slowdown = 1.0 + max_excess + self.config.blend * (sum_excess - max_excess);
                FlowPrediction {
                    start: f.start,
                    size_bits: f.size_bits,
                    ideal_secs: f.ideal_secs,
                    slowdown,
                    fct_secs: f.ideal_secs * slowdown,
                }
            })
            .collect();
        EstimateOutcome {
            clusters,
            loaded_resources: loaded.len(),
            rep_flows_solved,
            predictions,
        }
    }

    /// Routes every spec once, recording path resources and the
    /// contention-free ideal FCT (bottleneck-rate transfer + summed
    /// propagation).
    fn route_workload(&self, events: &[(SimTime, FlowSpec)]) -> Vec<RoutedFlow> {
        let mut router = Router::new(self.policy);
        let mut out = Vec::with_capacity(events.len());
        for (k, (at, spec)) in events.iter().enumerate() {
            let Some(path) = router.route(&self.topo, spec.src, spec.dst, FlowId(k as u64)) else {
                continue;
            };
            let mut cur = spec.src;
            let mut resources = Vec::with_capacity(path.len());
            let mut latency = SimDuration::ZERO;
            let mut bottleneck_bps = f64::INFINITY;
            for &lid in &path {
                let link = self.topo.link(lid);
                let forward = cur == link.a;
                resources.push(lid.index() * 2 + usize::from(!forward));
                latency = latency.saturating_add(link.latency);
                bottleneck_bps = bottleneck_bps.min(link.capacity.as_bps() as f64);
                cur = link.other_end(cur);
            }
            let size_bits = spec.size.as_u64() as f64 * 8.0;
            let transfer = if bottleneck_bps.is_finite() && bottleneck_bps > 0.0 {
                size_bits / bottleneck_bps
            } else {
                0.0
            };
            out.push(RoutedFlow {
                start: *at,
                size_bits,
                size: spec.size,
                weight: spec.weight,
                resources,
                ideal_secs: transfer + latency.as_secs_f64(),
            });
        }
        out
    }

    /// Builds the per-resource feature vectors for the loaded set.
    fn extract_features(
        &self,
        loaded: &[usize],
        bits_on: &[f64],
        count_on: &[u32],
        log2_sum: &[f64],
        routed: &[RoutedFlow],
    ) -> Vec<LinkFeatures> {
        // Horizon: the workload's arrival span plus the drain time of
        // the busiest link — a pure function of the inputs, so offered
        // load is deterministic. (Uniform scaling cancels in the
        // min–max normalisation anyway.)
        let t0 = routed
            .iter()
            .map(|f| f.start)
            .min()
            .unwrap_or(SimTime::ZERO);
        let t1 = routed
            .iter()
            .map(|f| f.start)
            .max()
            .unwrap_or(SimTime::ZERO);
        let span = t1.saturating_duration_since(t0).as_secs_f64();
        let worst_drain = loaded
            .iter()
            .map(|&r| {
                let cap = self.capacity_of(r);
                if cap > 0.0 {
                    bits_on[r] / cap
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max);
        let horizon = (span + worst_drain).max(1e-3);
        loaded
            .iter()
            .map(|&r| {
                let link = self.topo.link(crate::topology::LinkId((r / 2) as u32));
                let cap = link.capacity.as_bps() as f64;
                // Even resource = a→b, odd = b→a.
                let (tail, head) = if r % 2 == 0 {
                    (link.a, link.b)
                } else {
                    (link.b, link.a)
                };
                let n = count_on[r] as f64;
                LinkFeatures {
                    resource: r,
                    offered_load: if cap > 0.0 {
                        bits_on[r] / cap / horizon
                    } else {
                        0.0
                    },
                    flow_count: (1.0 + n).log2(),
                    mean_log2_bits: log2_sum[r] / n,
                    fan_in: self.topo.neighbours(tail).len() as f64,
                    fan_out: self.topo.neighbours(head).len() as f64,
                    capacity_tier: (cap / 1e6).max(1.0).log2(),
                }
            })
            .collect()
    }

    fn capacity_of(&self, r: usize) -> f64 {
        self.topo
            .link(crate::topology::LinkId((r / 2) as u32))
            .capacity
            .as_bps() as f64
    }
}

/// Min–max normalises the feature matrix (constant dimensions collapse
/// to 0), then greedily clusters in a seeded visit order: each resource
/// joins the first cluster whose representative is within epsilon, else
/// founds a new cluster. The visit order is a Fisher–Yates shuffle from
/// the `estimate/cluster` stream — deterministic in the seed — and the
/// output is canonicalised (members ascending, clusters by ascending
/// representative) so reports are stable.
fn cluster_links(
    features: &[LinkFeatures],
    config: &EstimateConfig,
    seeds: &SeedFactory,
) -> Vec<LinkCluster> {
    let n = features.len();
    if n == 0 {
        return Vec::new();
    }
    let raw: Vec<[f64; FEATURE_DIMS]> = features.iter().map(LinkFeatures::vector).collect();
    let mut lo = [f64::INFINITY; FEATURE_DIMS];
    let mut hi = [f64::NEG_INFINITY; FEATURE_DIMS];
    for v in &raw {
        for d in 0..FEATURE_DIMS {
            lo[d] = lo[d].min(v[d]);
            hi[d] = hi[d].max(v[d]);
        }
    }
    let norm: Vec<[f64; FEATURE_DIMS]> = raw
        .iter()
        .map(|v| {
            let mut out = [0.0f64; FEATURE_DIMS];
            for d in 0..FEATURE_DIMS {
                let range = hi[d] - lo[d];
                out[d] = if range > 0.0 {
                    (v[d] - lo[d]) / range
                } else {
                    0.0
                };
            }
            out
        })
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = seeds.stream("estimate/cluster");
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    // Greedy pass: clusters keyed by their founding (representative)
    // feature vector.
    let mut reps: Vec<usize> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    for &i in &order {
        let found = reps
            .iter()
            .position(|&ri| config.metric.distance(&norm[ri], &norm[i]) <= config.epsilon);
        match found {
            Some(ci) => members[ci].push(i),
            None => {
                reps.push(i);
                members.push(vec![i]);
            }
        }
    }
    let mut clusters: Vec<LinkCluster> = reps
        .into_iter()
        .zip(members)
        .map(|(ri, mut ms)| {
            ms.sort_unstable();
            LinkCluster {
                representative: features[ri].resource,
                members: ms.into_iter().map(|i| features[i].resource).collect(),
            }
        })
        .collect();
    clusters.sort_by_key(|c| c.representative);
    clusters
}

/// Solves one cluster representative exactly: its crossing flows on an
/// isolated link at the representative's capacity. On a single link,
/// max–min fair allocation *is* weighted processor sharing, so instead
/// of replaying a two-host topology through the full event loop the
/// representative is solved with the classic virtual-time construction:
/// virtual time `V` advances at `capacity / Σweights`, a flow arriving
/// at `V₀` completes when `V` reaches `V₀ + bits/weight`, and real time
/// maps back through the same rate. `O(n log n)` per representative
/// (one heap pop per flow) versus the event loop's per-event region
/// re-solve — this is where the estimation mode's speed lives. The
/// equal-share ablation drops the weights (every active flow gets
/// `capacity / n`, which the same construction yields with unit
/// weights). Returns the empirical distribution of per-flow slowdowns
/// (FCT ÷ contention-free FCT).
fn run_representative(job: &RepJob, allocator: RateAllocator) -> EDist {
    let cap = job.capacity_bps as f64;
    let latency = job.latency.as_secs_f64();
    if cap <= 0.0 {
        return EDist::from_samples(vec![1.0; job.flows.len()]);
    }
    // Completion heap keyed on finish virtual time. Non-negative f64s
    // order identically to their IEEE bit patterns, so the key is the
    // bit pattern plus the arrival index as a deterministic tie-break.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(job.flows.len());
    let mut slowdowns = vec![1.0f64; job.flows.len()];
    let mut v = 0.0f64; // virtual time, bits per unit weight
    let mut t = 0.0f64; // real time, seconds
    let mut sum_w = 0.0f64;
    let mut weight_of = vec![0.0f64; job.flows.len()];
    let mut arrival_of = vec![0.0f64; job.flows.len()];
    let complete = |idx: usize,
                    finish_v: f64,
                    v: &mut f64,
                    t: &mut f64,
                    sum_w: &mut f64,
                    weight_of: &[f64],
                    arrival_of: &[f64],
                    slowdowns: &mut [f64],
                    flows: &[(SimTime, Bytes, f64)]| {
        *t += (finish_v - *v) * *sum_w / cap;
        *v = finish_v;
        *sum_w = (*sum_w - weight_of[idx]).max(0.0);
        let bits = flows[idx].1.as_u64() as f64 * 8.0;
        let ideal = bits / cap + latency;
        let fct = (*t - arrival_of[idx]) + latency;
        slowdowns[idx] = if ideal > 0.0 {
            (fct / ideal).max(1.0)
        } else {
            1.0
        };
    };
    for (i, &(at, size, weight)) in job.flows.iter().enumerate() {
        let arrive = at.saturating_duration_since(SimTime::ZERO).as_secs_f64();
        // Drain completions that land before this arrival.
        while let Some(&Reverse((vbits, idx))) = heap.peek() {
            let finish_v = f64::from_bits(vbits);
            let t_done = t + (finish_v - v) * sum_w / cap;
            if t_done > arrive {
                break;
            }
            heap.pop();
            complete(
                idx,
                finish_v,
                &mut v,
                &mut t,
                &mut sum_w,
                &weight_of,
                &arrival_of,
                &mut slowdowns,
                &job.flows,
            );
        }
        // Advance virtual time to the arrival instant and admit.
        if sum_w > 0.0 {
            v += (arrive - t) * cap / sum_w;
        }
        t = arrive;
        let w = weight.max(f64::MIN_POSITIVE);
        let w = match allocator {
            RateAllocator::MaxMin => w,
            RateAllocator::EqualShare => 1.0,
        };
        let bits = size.as_u64() as f64 * 8.0;
        weight_of[i] = w;
        arrival_of[i] = arrive;
        sum_w += w;
        heap.push(Reverse(((v + bits / w).to_bits(), i)));
    }
    while let Some(Reverse((vbits, idx))) = heap.pop() {
        complete(
            idx,
            f64::from_bits(vbits),
            &mut v,
            &mut t,
            &mut sum_w,
            &weight_of,
            &arrival_of,
            &mut slowdowns,
            &job.flows,
        );
    }
    EDist::from_samples(slowdowns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_mode_round_trips() {
        assert_eq!(FidelityMode::parse("exact"), Some(FidelityMode::Exact));
        assert_eq!(
            FidelityMode::parse("estimate"),
            Some(FidelityMode::Estimate)
        );
        assert_eq!(FidelityMode::parse("fast"), None);
        assert_eq!(FidelityMode::Estimate.label(), "estimate");
    }

    #[test]
    fn metric_distances() {
        let a = [0.0; FEATURE_DIMS];
        let mut b = [0.0; FEATURE_DIMS];
        b[0] = 0.6;
        assert!(FeatureMetric::MaxRel.distance(&a, &b) - 0.6 < 1e-12);
        // L2 spreads the single-dimension gap across sqrt(d).
        let l2 = FeatureMetric::NormL2.distance(&a, &b);
        assert!((l2 - 0.6 / (FEATURE_DIMS as f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn estimator_runs_and_is_deterministic() {
        let topo = Topology::multi_root_tree(2, 4, 1);
        let hosts: Vec<_> = topo.hosts().map(|h| h.id).collect();
        let mut events = Vec::new();
        for i in 0..40u64 {
            let src = hosts[(i % 8) as usize];
            let dst = hosts[((i + 3) % 8) as usize];
            events.push((
                SimTime::ZERO + SimDuration::from_micros(i * 50),
                FlowSpec::new(src, dst, Bytes::kib(64 + (i % 5) * 32)),
            ));
        }
        let est = FlowEstimator::new(
            topo.clone(),
            RoutingPolicy::SingleShortest,
            RateAllocator::MaxMin,
        )
        .with_config(EstimateConfig::seeded(7));
        let one = est.estimate(&events);
        assert!(one.cluster_count() >= 1);
        assert!(one.cluster_count() <= one.loaded_resources);
        assert_eq!(one.predictions.len(), 40);
        assert!(one.predictions.iter().all(|p| p.slowdown >= 1.0));
        // Byte-determinism across a fresh estimator and 8 workers.
        let est8 = FlowEstimator::new(topo, RoutingPolicy::SingleShortest, RateAllocator::MaxMin)
            .with_config(EstimateConfig::seeded(7))
            .with_workers(8);
        let two = est8.estimate(&events);
        assert_eq!(one, two);
    }

    #[test]
    fn clusters_tile_the_loaded_set() {
        let topo = Topology::multi_root_tree(2, 4, 1);
        let hosts: Vec<_> = topo.hosts().map(|h| h.id).collect();
        let events: Vec<(SimTime, FlowSpec)> = (0..16u64)
            .map(|i| {
                (
                    SimTime::ZERO,
                    FlowSpec::new(
                        hosts[(i % 8) as usize],
                        hosts[((i + 1) % 8) as usize],
                        Bytes::mib(1),
                    ),
                )
            })
            .collect();
        let est = FlowEstimator::new(topo, RoutingPolicy::SingleShortest, RateAllocator::MaxMin);
        let out = est.estimate(&events);
        let mut seen = std::collections::BTreeSet::new();
        for c in &out.clusters {
            assert!(c.members.binary_search(&c.representative).is_ok());
            for &m in &c.members {
                assert!(seen.insert(m), "resource {m} in two clusters");
            }
        }
        assert_eq!(seen.len(), out.loaded_resources);
    }
}
