//! Topology partitioning and the deterministic solver worker pool.
//!
//! The fabric's sharing graph decomposes along the physical topology: a
//! pod-local flow can only ever contend with flows inside the same pod
//! (fat-tree) or rack (multi-root tree / leaf–spine), because every path
//! out of the pod crosses the *spine* — the core/gateway layer. The
//! [`PartitionMap`] derives that decomposition structurally, with no
//! second source of truth:
//!
//! 1. the **spine** is every [`DeviceKind::Core`] and
//!    [`DeviceKind::Gateway`] device, plus every
//!    [`DeviceKind::Aggregation`] switch directly attached to a core or
//!    gateway *when removing it disconnects the edge layer* — concretely,
//!    aggregation switches adjacent to a gateway (the multi-root tree,
//!    where aggregation roots *are* the shared layer). Fat-tree
//!    aggregation switches attach only to cores and therefore stay inside
//!    their pod partition;
//! 2. the **local partitions** are the connected components of the device
//!    graph with the spine removed, numbered ascending by their smallest
//!    member [`DeviceId`] — racks on the multi-root tree and leaf–spine,
//!    pods on the fat-tree;
//! 3. each **resource** (one direction of one link) is owned by the
//!    partition containing both endpoints, or by the *shared spine*
//!    bucket when either endpoint is a spine device.
//!
//! The map is consulted by the flow simulator to shard its completion
//! heap and to attribute each dirty region to a partition
//! (`network_partition_solves_total` telemetry); disjoint regions are
//! solved concurrently on [`map_ordered`], the deterministic ordered
//! worker pool. See DESIGN.md §4c for the bit-for-bit argument.

use crate::topology::{DeviceId, DeviceKind, Topology};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};

/// Sentinel partition index for the shared spine (core/gateway layer).
/// Stored as `u32::MAX` internally; exposed through
/// [`PartitionMap::shared_id`] as one past the last local partition.
const SPINE: u32 = u32::MAX;

/// Which partition (pod / rack) owns each device and link direction.
///
/// Derived once from the [`Topology`] by [`PartitionMap::derive`]; the
/// derivation is a pure function of the topology, so two simulators over
/// the same fabric always agree on partition boundaries.
///
/// # Example
///
/// ```
/// use picloud_network::flowsim::partition::PartitionMap;
/// use picloud_network::topology::Topology;
///
/// // k = 4 fat-tree: 4 pods of 4 hosts; cores form the shared spine.
/// let topo = Topology::fat_tree(4);
/// let map = PartitionMap::derive(&topo);
/// assert_eq!(map.partition_count(), 4);
/// let parts: Vec<_> = topo.hosts().map(|h| map.device_partition(h.id)).collect();
/// assert!(parts.iter().all(|p| p.is_some()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    /// Number of local (non-spine) partitions.
    n_local: u32,
    /// Partition per device; `SPINE` for spine devices.
    device_part: Vec<u32>,
    /// Partition per resource (2 per link); `SPINE` for spine-crossing
    /// directions.
    resource_part: Vec<u32>,
    /// Resource count per local partition, plus the spine bucket last.
    resources_per: Vec<u32>,
}

impl PartitionMap {
    /// Derives the partition map from `topo` (see the module docs for the
    /// spine rule). Deterministic: partitions are numbered ascending by
    /// their smallest member device id.
    pub fn derive(topo: &Topology) -> PartitionMap {
        let n_dev = topo.devices().len();
        let is_spine: Vec<bool> = topo
            .devices()
            .iter()
            .map(|d| match d.kind {
                DeviceKind::Core | DeviceKind::Gateway => true,
                DeviceKind::Aggregation => topo
                    .neighbours(d.id)
                    .iter()
                    .any(|(n, _)| matches!(topo.device(*n).kind, DeviceKind::Gateway)),
                DeviceKind::Host { .. } | DeviceKind::TopOfRack { .. } => false,
            })
            .collect();
        // Label connected components of the graph minus the spine, in
        // ascending order of each component's first-seen device id.
        let mut device_part = vec![SPINE; n_dev];
        let mut n_local = 0u32;
        let mut stack: Vec<DeviceId> = Vec::new();
        for d in topo.devices() {
            let di = d.id.0 as usize;
            if is_spine[di] || device_part[di] != SPINE {
                continue;
            }
            device_part[di] = n_local;
            stack.push(d.id);
            while let Some(v) = stack.pop() {
                for &(n, _) in topo.neighbours(v) {
                    let ni = n.0 as usize;
                    if !is_spine[ni] && device_part[ni] == SPINE {
                        device_part[ni] = n_local;
                        stack.push(n);
                    }
                }
            }
            n_local += 1;
        }
        let mut resources_per = vec![0u32; n_local as usize + 1];
        let mut resource_part = Vec::with_capacity(topo.links().len() * 2);
        for l in topo.links() {
            let (pa, pb) = (device_part[l.a.0 as usize], device_part[l.b.0 as usize]);
            let owner = if pa == pb { pa } else { SPINE };
            let bucket = if owner == SPINE {
                n_local as usize
            } else {
                owner as usize
            };
            // Both directions of a link share an owner.
            resource_part.push(owner);
            resource_part.push(owner);
            resources_per[bucket] += 2;
        }
        PartitionMap {
            n_local,
            device_part,
            resource_part,
            resources_per,
        }
    }

    /// Number of local partitions (pods / racks), excluding the spine.
    pub fn partition_count(&self) -> usize {
        self.n_local as usize
    }

    /// Number of completion-heap shards: every local partition plus the
    /// shared-spine bucket.
    pub fn shard_count(&self) -> usize {
        self.n_local as usize + 1
    }

    /// The index of the shared-spine bucket — one past the last local
    /// partition, so `0..=shared_id()` enumerates every bucket.
    pub fn shared_id(&self) -> u32 {
        self.n_local
    }

    /// The local partition owning `device`, or `None` for spine devices.
    pub fn device_partition(&self, device: DeviceId) -> Option<u32> {
        match self.device_part[device.0 as usize] {
            SPINE => None,
            p => Some(p),
        }
    }

    /// The bucket owning resource `res` (a link-direction index as used
    /// by the flow simulator): a local partition id, or
    /// [`PartitionMap::shared_id`] for spine-crossing resources.
    pub fn resource_bucket(&self, res: usize) -> u32 {
        match self.resource_part[res] {
            SPINE => self.n_local,
            p => p,
        }
    }

    /// The bucket owning a whole region (a set of resource indices): the
    /// common local partition if every resource agrees, otherwise the
    /// shared-spine bucket. An empty region maps to the spine.
    pub fn region_bucket(&self, res_list: &[usize]) -> u32 {
        let mut owner = None;
        for &r in res_list {
            let b = self.resource_bucket(r);
            match owner {
                None => owner = Some(b),
                Some(o) if o == b => {}
                Some(_) => return self.n_local,
            }
        }
        owner.unwrap_or(self.n_local)
    }

    /// Resources owned by `bucket` (a local partition id or
    /// [`PartitionMap::shared_id`]).
    pub fn resources_in(&self, bucket: u32) -> usize {
        self.resources_per[bucket as usize] as usize
    }

    /// Human-readable bucket label: `"p3"` for local partitions,
    /// `"shared"` for the spine bucket — the `partition` telemetry label.
    pub fn bucket_label(&self, bucket: u32) -> String {
        if bucket >= self.n_local {
            "shared".to_string()
        } else {
            format!("p{bucket}")
        }
    }
}

/// Applies `f` to every item on a quarantined pool of `workers` OS
/// threads and returns the outputs **in item order**, regardless of
/// scheduling.
///
/// This is the only sanctioned concurrency primitive in the simulation
/// crates (lint rule D4): threads are scoped (no detached lifetimes),
/// carry no RNG and never read the wall clock, and every output lands in
/// the slot of its input index — so the merge order, and therefore every
/// downstream bit, is independent of thread interleaving. Work is
/// claimed from a shared atomic cursor, which makes the *assignment* of
/// items to threads nondeterministic while leaving the result vector
/// deterministic; callers must not let `f` observe the claiming order.
///
/// With `workers <= 1` or fewer than two items the pool is bypassed and
/// `f` runs inline on the caller's thread — the serial reference path.
///
/// # Example
///
/// ```
/// use picloud_network::flowsim::partition::map_ordered;
///
/// let squares = map_ordered(4, &[1u64, 2, 3, 4, 5], |_, x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn map_ordered<I, O, F>(workers: usize, items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<O>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let f = &f;
    let cursor = &cursor;
    // lint: allow(D4) reason=this IS the quarantined pool — scoped, clock-free, RNG-free, order-restoring (see module docs)
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(items.len()))
            .map(|_| {
                // lint: allow(D4) reason=worker of the quarantined pool; results are re-ordered by item index below
                scope.spawn(move || {
                    let mut got: Vec<(usize, O)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        got.push((i, f(i, &items[i])));
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            // lint: allow(P1) reason=a panicking worker already poisoned the solve; propagating the panic is the only sound recovery
            for (i, o) in h.join().expect("solver worker panicked") {
                out[i] = Some(o);
            }
        }
    });
    out.into_iter()
        .map(|o| {
            // lint: allow(P1) reason=every index below items.len() is claimed exactly once by the cursor loop
            o.expect("worker pool left a slot unfilled")
        })
        .collect()
}

/// A boxed unit of work shipped to the persistent solver pool.
type PoolTask = Box<dyn FnOnce() + Send + 'static>;

/// Queue state shared between the pool handle and its worker threads.
struct PoolState {
    tasks: VecDeque<PoolTask>,
    shutdown: bool,
}

/// The synchronisation core of the pool: one mutex-guarded task queue
/// and a condvar the workers park on while it is empty.
struct PoolShared {
    state: Mutex<PoolState>,
    ready: Condvar,
}

/// Locks the pool queue. Tasks run *outside* the lock, so the mutex can
/// only be poisoned by a panic inside the queue plumbing itself — which
/// already poisoned the solve.
fn lock_pool(m: &Mutex<PoolState>) -> MutexGuard<'_, PoolState> {
    // lint: allow(P1) reason=tasks execute outside the lock; poison implies a panicked solve and propagating is the only sound recovery
    m.lock().expect("solver pool mutex poisoned")
}

/// The loop each persistent worker runs: pop a task, execute it with the
/// queue unlocked, park on the condvar when the queue is empty, exit on
/// shutdown. Workers carry no RNG and never read the wall clock; all
/// ordering is restored by the caller (results land in index slots), so
/// scheduling order cannot leak into simulation bits.
fn pool_worker(shared: &PoolShared) {
    loop {
        let task = {
            let mut state = lock_pool(&shared.state);
            loop {
                if let Some(t) = state.tasks.pop_front() {
                    break Some(t);
                }
                if state.shutdown {
                    break None;
                }
                let waited = shared.ready.wait(state);
                // lint: allow(P1) reason=same poison argument as lock_pool — a poisoned queue means a solve already panicked
                state = waited.expect("solver pool mutex poisoned");
            }
        };
        match task {
            Some(t) => t(),
            None => break,
        }
    }
}

/// A persistent, quarantined worker pool for repeated ordered solves.
///
/// [`map_ordered`] spins up a fresh thread scope on every call, which is
/// fine for one-shot fan-outs but taxes the flow simulator's hot path:
/// `recompute_rates` fires on every inject/completion/cancel, and paying
/// thread start-up each time swamps small regional solves. `SolverPool`
/// hoists the scope into long-lived workers owned by the simulator:
/// tasks are queued under a mutex, workers park on a condvar between
/// solves, and results are returned **in item order** through per-call
/// channels — the same order-restoring merge contract as
/// [`map_ordered`], so downstream bits remain independent of scheduling.
///
/// The quarantine rules (lint D4) carry over unchanged: workers hold no
/// RNG, never read the clock, and share no mutable state beyond the task
/// queue. Dropping the pool shuts the workers down and joins them.
///
/// # Example
///
/// ```
/// use picloud_network::flowsim::partition::SolverPool;
///
/// let pool = SolverPool::new(4);
/// let squares = pool.run_ordered(vec![1u64, 2, 3, 4, 5], |_, x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub struct SolverPool {
    shared: Arc<PoolShared>,
    // lint: allow(D4) reason=these ARE the quarantined pool workers — persistent equivalent of map_ordered's scope (see SolverPool docs)
    threads: Vec<std::thread::JoinHandle<()>>,
    size: usize,
}

impl std::fmt::Debug for SolverPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverPool")
            .field("size", &self.size)
            .finish()
    }
}

impl SolverPool {
    /// Builds a pool of `workers` persistent threads (clamped to at
    /// least 1). A pool of size 1 spawns no threads at all: every
    /// [`SolverPool::run_ordered`] call runs inline on the caller — the
    /// serial reference path.
    pub fn new(workers: usize) -> SolverPool {
        let size = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let mut threads = Vec::new();
        if size > 1 {
            for _ in 0..size {
                let shared = Arc::clone(&shared);
                // lint: allow(D4) reason=persistent worker of the quarantined pool; order restored by index slots in run_ordered
                threads.push(std::thread::spawn(move || pool_worker(&shared)));
            }
        }
        SolverPool {
            shared,
            threads,
            size,
        }
    }

    /// The worker count this pool was built with.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Applies `f` to every item on the persistent workers and returns
    /// the outputs **in item order**, exactly like [`map_ordered`] — but
    /// without paying thread start-up per call. Items are owned
    /// (`'static`) because the workers outlive any one call; with one
    /// worker or fewer than two items, `f` runs inline on the caller.
    pub fn run_ordered<I, O, F>(&self, items: Vec<I>, f: F) -> Vec<O>
    where
        I: Send + 'static,
        O: Send + 'static,
        F: Fn(usize, I) -> O + Send + Sync + 'static,
    {
        let n = items.len();
        if self.threads.is_empty() || n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, it)| f(i, it))
                .collect();
        }
        let f = Arc::new(f);
        let (tx, rx) = mpsc::channel::<(usize, O)>();
        {
            let mut state = lock_pool(&self.shared.state);
            for (i, item) in items.into_iter().enumerate() {
                let f = Arc::clone(&f);
                let tx = tx.clone();
                state.tasks.push_back(Box::new(move || {
                    let _ = tx.send((i, f(i, item)));
                }));
            }
        }
        self.shared.ready.notify_all();
        drop(tx);
        let mut out: Vec<Option<O>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        for _ in 0..n {
            // lint: allow(P1) reason=recv fails only when a worker panicked mid-solve; propagating the panic is the only sound recovery
            let (i, o) = rx.recv().expect("solver pool worker panicked");
            out[i] = Some(o);
        }
        out.into_iter()
            .map(|o| {
                // lint: allow(P1) reason=each of the n queued tasks sends exactly one indexed result
                o.expect("solver pool left a slot unfilled")
            })
            .collect()
    }
}

impl Drop for SolverPool {
    fn drop(&mut self) {
        lock_pool(&self.shared.state).shutdown = true;
        self.shared.ready.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The worker-pool size experiment drivers and benches should use: the
/// `PICLOUD_FLOW_WORKERS` environment variable when set to a positive
/// integer, `1` (the serial reference path) otherwise.
///
/// Reading the environment does *not* weaken the determinism contract:
/// worker count never changes results — `tests/flowsim_equiv.rs` pins
/// bit-for-bit state equality across 1, 2 and 8 workers — so this knob
/// only moves wall-clock time, never a single simulated bit.
pub fn default_workers() -> usize {
    std::env::var("PICLOUD_FLOW_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(1, |n| n.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_root_tree_partitions_by_rack() {
        let topo = Topology::multi_root_tree(4, 14, 2);
        let map = PartitionMap::derive(&topo);
        // Aggregation roots hang off the gateway: they are spine, so each
        // rack (ToR + 14 hosts) is its own partition.
        assert_eq!(map.partition_count(), 4);
        for h in topo.hosts() {
            let rack = h.kind.rack().unwrap();
            let tor = topo
                .devices()
                .iter()
                .find(|d| matches!(d.kind, DeviceKind::TopOfRack { rack: r } if r == rack))
                .unwrap();
            assert_eq!(map.device_partition(h.id), map.device_partition(tor.id));
        }
        for d in topo.devices() {
            match d.kind {
                DeviceKind::Aggregation | DeviceKind::Core | DeviceKind::Gateway => {
                    assert_eq!(map.device_partition(d.id), None, "{} must be spine", d.name);
                }
                _ => assert!(map.device_partition(d.id).is_some()),
            }
        }
    }

    #[test]
    fn fat_tree_partitions_by_pod() {
        let topo = Topology::fat_tree(4);
        let map = PartitionMap::derive(&topo);
        assert_eq!(map.partition_count(), 4, "k=4 fat-tree has 4 pods");
        // Fat-tree aggregation switches touch only cores and edge
        // switches: they stay inside their pod.
        let agg_parts: Vec<_> = topo
            .devices()
            .iter()
            .filter(|d| matches!(d.kind, DeviceKind::Aggregation))
            .map(|d| map.device_partition(d.id))
            .collect();
        assert!(agg_parts.iter().all(|p| p.is_some()));
        for d in topo.devices() {
            if matches!(d.kind, DeviceKind::Core) {
                assert_eq!(map.device_partition(d.id), None);
            }
        }
        // Every resource bucket is either a pod or the shared spine, and
        // the buckets tile the resource set exactly.
        let total: usize = (0..=map.shared_id()).map(|b| map.resources_in(b)).sum();
        assert_eq!(total, topo.links().len() * 2);
        assert!(
            map.resources_in(map.shared_id()) > 0,
            "core links are shared"
        );
    }

    #[test]
    fn leaf_spine_partitions_by_leaf() {
        let topo = Topology::leaf_spine(4, 6, 2);
        let map = PartitionMap::derive(&topo);
        assert_eq!(map.partition_count(), 4);
    }

    #[test]
    fn region_bucket_collapses_mixed_regions_to_shared() {
        let topo = Topology::fat_tree(4);
        let map = PartitionMap::derive(&topo);
        let p0: Vec<usize> = (0..topo.links().len() * 2)
            .filter(|&r| map.resource_bucket(r) == 0)
            .collect();
        let p1: Vec<usize> = (0..topo.links().len() * 2)
            .filter(|&r| map.resource_bucket(r) == 1)
            .collect();
        assert_eq!(map.region_bucket(&p0), 0);
        assert_eq!(map.region_bucket(&p1), 1);
        let mixed: Vec<usize> = p0.iter().chain(p1.iter()).copied().collect();
        assert_eq!(map.region_bucket(&mixed), map.shared_id());
        assert_eq!(map.region_bucket(&[]), map.shared_id());
        assert_eq!(map.bucket_label(0), "p0");
        assert_eq!(map.bucket_label(map.shared_id()), "shared");
    }

    #[test]
    fn isolated_hosts_form_their_own_partition() {
        let mut topo = Topology::new("pair");
        let a = topo.add_device(DeviceKind::Host { rack: 0 }, "a");
        let b = topo.add_device(DeviceKind::Host { rack: 0 }, "b");
        topo.add_link(
            a,
            b,
            picloud_simcore::units::Bandwidth::mbps(100),
            picloud_simcore::SimDuration::from_nanos(100),
        );
        let map = PartitionMap::derive(&topo);
        assert_eq!(map.partition_count(), 1);
        assert_eq!(map.device_partition(a), Some(0));
        assert_eq!(map.resource_bucket(0), 0);
        assert_eq!(map.resources_in(map.shared_id()), 0);
    }

    #[test]
    fn map_ordered_is_order_preserving_at_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let serial = map_ordered(1, &items, |i, x| x * 3 + i as u64);
        for workers in [2usize, 3, 8, 16] {
            let parallel = map_ordered(workers, &items, |i, x| x * 3 + i as u64);
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn map_ordered_handles_empty_and_single() {
        let none: Vec<u32> = map_ordered(8, &[], |_, x: &u32| *x);
        assert!(none.is_empty());
        assert_eq!(map_ordered(8, &[7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn solver_pool_matches_map_ordered_at_any_size() {
        let items: Vec<u64> = (0..197).collect();
        let serial = map_ordered(1, &items, |i, x| x * 3 + i as u64);
        for workers in [1usize, 2, 8] {
            let pool = SolverPool::new(workers);
            let got = pool.run_ordered(items.clone(), |i, x| x * 3 + i as u64);
            assert_eq!(serial, got, "workers={workers}");
        }
    }

    #[test]
    fn solver_pool_is_reusable_across_many_solves() {
        let pool = SolverPool::new(4);
        assert_eq!(pool.size(), 4);
        for round in 0..64u64 {
            let items: Vec<u64> = (0..round + 2).collect();
            let want: Vec<u64> = items.iter().map(|x| x + round).collect();
            let got = pool.run_ordered(items, move |_, x| x + round);
            assert_eq!(got, want, "round={round}");
        }
    }

    #[test]
    fn solver_pool_handles_empty_and_single() {
        let pool = SolverPool::new(8);
        let none: Vec<u32> = pool.run_ordered(Vec::<u32>::new(), |_, x| x);
        assert!(none.is_empty());
        assert_eq!(pool.run_ordered(vec![7u32], |_, x| x + 1), vec![8]);
    }
}
