//! Devices, links and topology builders.
//!
//! A [`Topology`] is an undirected multigraph of [`DeviceKind`]-tagged
//! devices joined by capacity-and-latency-labelled [`Link`]s. Three builders
//! cover the paper's fabric and its stated variants:
//!
//! * [`Topology::multi_root_tree`] — Fig. 2: hosts → per-rack ToR →
//!   aggregation root(s) → gateway.
//! * [`Topology::fat_tree`] — the re-cabled k-ary fat-tree of §II-A.
//! * [`Topology::leaf_spine`] — a folded-Clos (VL2-style) alternative,
//!   matching the conclusion's "DC Clos network topology" description.

use picloud_simcore::units::Bandwidth;
use picloud_simcore::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies a device (host, switch or router) in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// The raw index into [`Topology::devices`].
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev-{}", self.0)
    }
}

/// Identifies a link in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The raw index into [`Topology::links`].
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link-{}", self.0)
    }
}

/// What role a device plays in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A server (a Raspberry Pi in the PiCloud); carries its rack index.
    Host {
        /// Rack this host is installed in.
        rack: u16,
    },
    /// A Top-of-Rack switch; carries its rack index.
    TopOfRack {
        /// Rack this switch serves.
        rack: u16,
    },
    /// An aggregation-layer switch (OpenFlow-enabled in the PiCloud).
    Aggregation,
    /// A core switch (fat-tree core layer / Clos spine).
    Core,
    /// The border router — the university gateway in the paper.
    Gateway,
}

impl DeviceKind {
    /// Whether this device terminates traffic (is a host).
    pub fn is_host(self) -> bool {
        matches!(self, DeviceKind::Host { .. })
    }

    /// The rack index, for rack-scoped devices.
    pub fn rack(self) -> Option<u16> {
        match self {
            DeviceKind::Host { rack } | DeviceKind::TopOfRack { rack } => Some(rack),
            _ => None,
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceKind::Host { rack } => write!(f, "host(rack {rack})"),
            DeviceKind::TopOfRack { rack } => write!(f, "ToR(rack {rack})"),
            DeviceKind::Aggregation => write!(f, "aggregation"),
            DeviceKind::Core => write!(f, "core"),
            DeviceKind::Gateway => write!(f, "gateway"),
        }
    }
}

/// A device in the fabric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// This device's id.
    pub id: DeviceId,
    /// Role in the fabric.
    pub kind: DeviceKind,
    /// Human-readable name (`pi-0-3`, `tor-1`, `agg-0`, ...).
    pub name: String,
}

/// An undirected link between two devices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// This link's id.
    pub id: LinkId,
    /// One endpoint.
    pub a: DeviceId,
    /// The other endpoint.
    pub b: DeviceId,
    /// Capacity (full duplex; modelled per direction by the flow simulator).
    pub capacity: Bandwidth,
    /// Propagation + switching latency.
    pub latency: SimDuration,
}

impl Link {
    /// The endpoint opposite `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this link.
    pub fn other_end(&self, from: DeviceId) -> DeviceId {
        if from == self.a {
            self.b
        } else if from == self.b {
            self.a
        } else {
            // lint: allow(P1) reason=documented panic: caller must pass an endpoint of this link (# Panics)
            panic!("{from} is not an endpoint of {}", self.id)
        }
    }
}

/// Link rates used by the builders: hosts attach at Fast Ethernet (the Pi's
/// 100 Mbit NIC); switch uplinks run at gigabit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkRates {
    /// Host-to-ToR (access) rate.
    pub access: Bandwidth,
    /// Switch-to-switch rate.
    pub fabric: Bandwidth,
}

impl Default for LinkRates {
    fn default() -> Self {
        LinkRates {
            access: Bandwidth::mbps(100),
            fabric: Bandwidth::gbps(1),
        }
    }
}

/// An undirected multigraph of devices and links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    devices: Vec<Device>,
    links: Vec<Link>,
    adjacency: Vec<Vec<(DeviceId, LinkId)>>,
    name: String,
}

impl Topology {
    /// Creates an empty topology with a descriptive name.
    pub fn new(name: impl Into<String>) -> Self {
        Topology {
            devices: Vec::new(),
            links: Vec::new(),
            adjacency: Vec::new(),
            name: name.into(),
        }
    }

    /// Descriptive name (`"multi-root-tree"`, `"fat-tree-k4"`, ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a device and returns its id.
    pub fn add_device(&mut self, kind: DeviceKind, name: impl Into<String>) -> DeviceId {
        // lint: allow(P1) reason=u32 overflow needs 4 billion devices; far beyond any scale model
        let id = DeviceId(u32::try_from(self.devices.len()).expect("too many devices"));
        self.devices.push(Device {
            id,
            kind,
            name: name.into(),
        });
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected link and returns its id.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or unknown endpoints.
    pub fn add_link(
        &mut self,
        a: DeviceId,
        b: DeviceId,
        capacity: Bandwidth,
        latency: SimDuration,
    ) -> LinkId {
        assert!(a != b, "self-loop links are not allowed");
        assert!(
            a.index() < self.devices.len() && b.index() < self.devices.len(),
            "link endpoint does not exist"
        );
        // lint: allow(P1) reason=u32 overflow needs 4 billion links; far beyond any scale model
        let id = LinkId(u32::try_from(self.links.len()).expect("too many links"));
        self.links.push(Link {
            id,
            a,
            b,
            capacity,
            latency,
        });
        self.adjacency[a.index()].push((b, id));
        self.adjacency[b.index()].push((a, id));
        id
    }

    /// All devices, in id order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// All links, in id order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The device with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// The link with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Neighbours of `id` as `(neighbour, connecting link)` pairs.
    pub fn neighbours(&self, id: DeviceId) -> &[(DeviceId, LinkId)] {
        &self.adjacency[id.index()]
    }

    /// All hosts, in id order.
    pub fn hosts(&self) -> impl Iterator<Item = &Device> {
        self.devices.iter().filter(|d| d.kind.is_host())
    }

    /// All devices of a given kind-category (by matching closure), useful
    /// for switches.
    pub fn devices_where<'a>(
        &'a self,
        pred: impl Fn(&DeviceKind) -> bool + 'a,
    ) -> impl Iterator<Item = &'a Device> {
        self.devices.iter().filter(move |d| pred(&d.kind))
    }

    /// Hosts grouped by rack index, sorted by rack.
    pub fn hosts_by_rack(&self) -> BTreeMap<u16, Vec<DeviceId>> {
        let mut map: BTreeMap<u16, Vec<DeviceId>> = BTreeMap::new();
        for d in self.hosts() {
            if let Some(rack) = d.kind.rack() {
                map.entry(rack).or_default().push(d.id);
            }
        }
        map
    }

    /// Whether every device can reach every other.
    pub fn is_connected(&self) -> bool {
        crate::graph::is_connected(self)
    }

    /// Total capacity crossing the host bisection: hosts are split into two
    /// halves (by rack order), and the result is the max-flow between the
    /// halves — the standard bisection-bandwidth measure used to compare
    /// the multi-root tree against the fat-tree re-cable.
    pub fn bisection_bandwidth(&self) -> Bandwidth {
        let by_rack = self.hosts_by_rack();
        let all: Vec<DeviceId> = by_rack.values().flatten().copied().collect();
        if all.len() < 2 {
            return Bandwidth::ZERO;
        }
        let half = all.len() / 2;
        crate::graph::max_flow_between_sets(self, &all[..half], &all[half..half * 2])
    }

    // ------------------------------------------------------------------
    // Builders
    // ------------------------------------------------------------------

    /// The paper's Fig. 2 fabric: `racks` racks of `hosts_per_rack` hosts,
    /// one ToR per rack, `roots` aggregation switches each connected to
    /// every ToR (the "multi-root" part) and to the gateway.
    ///
    /// Defaults used throughout the reproduction: `(4, 14, 2)` with
    /// [`LinkRates::default`].
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn multi_root_tree(racks: u16, hosts_per_rack: u16, roots: u16) -> Topology {
        Topology::multi_root_tree_with(racks, hosts_per_rack, roots, LinkRates::default())
    }

    /// [`Topology::multi_root_tree`] with explicit link rates.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn multi_root_tree_with(
        racks: u16,
        hosts_per_rack: u16,
        roots: u16,
        rates: LinkRates,
    ) -> Topology {
        assert!(
            racks > 0 && hosts_per_rack > 0 && roots > 0,
            "counts must be positive"
        );
        let mut t = Topology::new(format!("multi-root-tree-{racks}x{hosts_per_rack}"));
        let lat_access = SimDuration::from_micros(50);
        let lat_fabric = SimDuration::from_micros(20);

        let gateway = t.add_device(DeviceKind::Gateway, "gateway");
        let aggs: Vec<DeviceId> = (0..roots)
            .map(|i| t.add_device(DeviceKind::Aggregation, format!("agg-{i}")))
            .collect();
        for &agg in &aggs {
            t.add_link(agg, gateway, rates.fabric, lat_fabric);
        }
        for r in 0..racks {
            let tor = t.add_device(DeviceKind::TopOfRack { rack: r }, format!("tor-{r}"));
            for &agg in &aggs {
                t.add_link(tor, agg, rates.fabric, lat_fabric);
            }
            for h in 0..hosts_per_rack {
                let host = t.add_device(DeviceKind::Host { rack: r }, format!("pi-{r}-{h}"));
                t.add_link(host, tor, rates.access, lat_access);
            }
        }
        t
    }

    /// A classic k-ary fat-tree: `k` pods, each with `k/2` edge and `k/2`
    /// aggregation switches, `(k/2)²` core switches, and `k/2` hosts per
    /// edge switch (`k³/4` hosts total). Edge switches play the ToR role,
    /// so hosts carry their pod-edge pair as a rack index.
    ///
    /// A gateway hangs off core switch 0, preserving the paper's border
    /// router.
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd or less than 2.
    pub fn fat_tree(k: u16) -> Topology {
        Topology::fat_tree_with(k, LinkRates::default())
    }

    /// [`Topology::fat_tree`] with explicit link rates.
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd or less than 2.
    pub fn fat_tree_with(k: u16, rates: LinkRates) -> Topology {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree arity must be even and >= 2"
        );
        let half = k / 2;
        let mut t = Topology::new(format!("fat-tree-k{k}"));
        let lat_access = SimDuration::from_micros(50);
        let lat_fabric = SimDuration::from_micros(20);

        let cores: Vec<DeviceId> = (0..half * half)
            .map(|i| t.add_device(DeviceKind::Core, format!("core-{i}")))
            .collect();
        let gateway = t.add_device(DeviceKind::Gateway, "gateway");
        // lint: allow(P1) reason=tree builders always create at least one core switch
        t.add_link(cores[0], gateway, rates.fabric, lat_fabric);

        for pod in 0..k {
            let aggs: Vec<DeviceId> = (0..half)
                .map(|i| t.add_device(DeviceKind::Aggregation, format!("agg-{pod}-{i}")))
                .collect();
            // Aggregation switch i connects to core group i.
            for (i, &agg) in aggs.iter().enumerate() {
                for j in 0..half as usize {
                    let core = cores[i * half as usize + j];
                    t.add_link(agg, core, rates.fabric, lat_fabric);
                }
            }
            for e in 0..half {
                let rack = pod * half + e;
                let edge = t.add_device(DeviceKind::TopOfRack { rack }, format!("edge-{pod}-{e}"));
                for &agg in &aggs {
                    t.add_link(edge, agg, rates.fabric, lat_fabric);
                }
                for h in 0..half {
                    let host = t.add_device(DeviceKind::Host { rack }, format!("pi-{pod}-{e}-{h}"));
                    t.add_link(host, edge, rates.access, lat_access);
                }
            }
        }
        t
    }

    /// A folded-Clos / leaf–spine fabric: `leaves` ToR switches each
    /// connected to every one of `spines` spine switches, with
    /// `hosts_per_leaf` hosts per leaf and a gateway on spine 0.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn leaf_spine(leaves: u16, spines: u16, hosts_per_leaf: u16) -> Topology {
        assert!(
            leaves > 0 && spines > 0 && hosts_per_leaf > 0,
            "counts must be positive"
        );
        let rates = LinkRates::default();
        let mut t = Topology::new(format!("leaf-spine-{leaves}x{spines}"));
        let lat_access = SimDuration::from_micros(50);
        let lat_fabric = SimDuration::from_micros(20);

        let spine_ids: Vec<DeviceId> = (0..spines)
            .map(|i| t.add_device(DeviceKind::Core, format!("spine-{i}")))
            .collect();
        let gateway = t.add_device(DeviceKind::Gateway, "gateway");
        // lint: allow(P1) reason=Clos builders always create at least one spine switch
        t.add_link(spine_ids[0], gateway, rates.fabric, lat_fabric);

        for l in 0..leaves {
            let leaf = t.add_device(DeviceKind::TopOfRack { rack: l }, format!("leaf-{l}"));
            for &spine in &spine_ids {
                t.add_link(leaf, spine, rates.fabric, lat_fabric);
            }
            for h in 0..hosts_per_leaf {
                let host = t.add_device(DeviceKind::Host { rack: l }, format!("pi-{l}-{h}"));
                t.add_link(host, leaf, rates.access, lat_access);
            }
        }
        t
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} devices ({} hosts), {} links",
            self.name,
            self.devices.len(),
            self.hosts().count(),
            self.links.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fabric_shape() {
        let t = Topology::multi_root_tree(4, 14, 2);
        assert_eq!(t.hosts().count(), 56);
        let tors = t
            .devices_where(|k| matches!(k, DeviceKind::TopOfRack { .. }))
            .count();
        assert_eq!(tors, 4);
        let aggs = t
            .devices_where(|k| matches!(k, DeviceKind::Aggregation))
            .count();
        assert_eq!(aggs, 2);
        assert_eq!(
            t.devices_where(|k| matches!(k, DeviceKind::Gateway))
                .count(),
            1
        );
        assert!(t.is_connected());
        // 56 access + 4*2 tor-agg + 2 agg-gw links.
        assert_eq!(t.links().len(), 56 + 8 + 2);
    }

    #[test]
    fn hosts_by_rack_partitions() {
        let t = Topology::multi_root_tree(4, 14, 2);
        let by_rack = t.hosts_by_rack();
        assert_eq!(by_rack.len(), 4);
        assert!(by_rack.values().all(|v| v.len() == 14));
    }

    #[test]
    fn fat_tree_k4_shape() {
        let t = Topology::fat_tree(4);
        // k^3/4 = 16 hosts, 4 core, 8 agg, 8 edge.
        assert_eq!(t.hosts().count(), 16);
        assert_eq!(
            t.devices_where(|k| matches!(k, DeviceKind::Core)).count(),
            4
        );
        assert_eq!(
            t.devices_where(|k| matches!(k, DeviceKind::Aggregation))
                .count(),
            8
        );
        assert_eq!(
            t.devices_where(|k| matches!(k, DeviceKind::TopOfRack { .. }))
                .count(),
            8
        );
        assert!(t.is_connected());
    }

    #[test]
    fn fat_tree_k6_covers_56_hosts() {
        // The 56-Pi cloud re-cabled: k=6 gives 54 host ports; with k=8 it's 128.
        assert_eq!(Topology::fat_tree(6).hosts().count(), 54);
        assert_eq!(Topology::fat_tree(8).hosts().count(), 128);
    }

    #[test]
    fn leaf_spine_shape() {
        let t = Topology::leaf_spine(4, 2, 14);
        assert_eq!(t.hosts().count(), 56);
        assert!(t.is_connected());
    }

    #[test]
    fn fat_tree_beats_tree_on_bisection() {
        // With uniform link rates (the canonical fat-tree setting) the
        // fat-tree's richer fabric must win; with the default rates the
        // 100 Mbit host NIC is the bottleneck in both fabrics.
        let uniform = LinkRates {
            access: Bandwidth::gbps(1),
            fabric: Bandwidth::gbps(1),
        };
        let tree = Topology::multi_root_tree_with(4, 4, 1, uniform);
        let fat = Topology::fat_tree_with(4, uniform);
        let tree_bb = tree.bisection_bandwidth();
        let fat_bb = fat.bisection_bandwidth();
        assert!(
            fat_bb > tree_bb,
            "fat-tree {fat_bb} should exceed tree {tree_bb}"
        );
        // Default rates: both NIC-bound, equal bisection.
        assert_eq!(
            Topology::multi_root_tree(4, 4, 1).bisection_bandwidth(),
            Topology::fat_tree(4).bisection_bandwidth()
        );
    }

    #[test]
    fn link_other_end() {
        let t = Topology::multi_root_tree(1, 1, 1);
        let l = &t.links()[0];
        assert_eq!(l.other_end(l.a), l.b);
        assert_eq!(l.other_end(l.b), l.a);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_end_rejects_stranger() {
        let t = Topology::multi_root_tree(1, 2, 1);
        let l = t.links()[0].clone();
        let stranger = t.hosts().last().unwrap().id;
        let _ = l.other_end(stranger);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut t = Topology::new("bad");
        let d = t.add_device(DeviceKind::Gateway, "gw");
        t.add_link(d, d, Bandwidth::mbps(1), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_fat_tree_rejected() {
        let _ = Topology::fat_tree(3);
    }

    #[test]
    fn display_summarises() {
        let t = Topology::multi_root_tree(4, 14, 2);
        let s = t.to_string();
        assert!(s.contains("56 hosts"), "{s}");
    }
}
