//! Path selection.
//!
//! The paper's fabric is "fully programmable" through OpenFlow; the
//! forwarding behaviours the reproduction needs are (a) deterministic
//! single shortest-path routing (what a spanning tree would give the
//! original Ethernet fabric) and (b) ECMP across all equal-cost shortest
//! paths (what the SDN controller installs in the fat-tree). The
//! [`Router`] precomputes candidate paths lazily per `(src, dst)` pair and
//! picks deterministically per flow.

use crate::flow::FlowId;
use crate::graph;
use crate::topology::{DeviceId, LinkId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How paths are chosen for flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Always the single lowest-link-id shortest path — models a spanning
    /// tree / static routing fabric with no multipath.
    SingleShortest,
    /// Equal-cost multipath over all shortest paths (up to the cap),
    /// selected by a deterministic hash of the flow id.
    Ecmp {
        /// Maximum equal-cost paths to enumerate per pair.
        max_paths: usize,
    },
}

impl Default for RoutingPolicy {
    fn default() -> Self {
        RoutingPolicy::Ecmp { max_paths: 16 }
    }
}

/// A path cache + selector over one topology.
///
/// # Example
///
/// ```
/// use picloud_network::routing::{Router, RoutingPolicy};
/// use picloud_network::topology::Topology;
/// use picloud_network::flow::FlowId;
///
/// let topo = Topology::multi_root_tree(2, 2, 2);
/// let mut router = Router::new(RoutingPolicy::default());
/// let hosts: Vec<_> = topo.hosts().map(|h| h.id).collect();
/// let path = router.route(&topo, hosts[0], hosts[3], FlowId(1)).unwrap();
/// assert!(!path.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Router {
    policy: RoutingPolicy,
    // BTreeMap, not HashMap: the cache is simulation-visible state and
    // its iteration order must never leak into route selection (D1).
    cache: BTreeMap<(DeviceId, DeviceId), Vec<Vec<LinkId>>>,
}

impl Router {
    /// Creates a router with the given policy.
    pub fn new(policy: RoutingPolicy) -> Self {
        Router {
            policy,
            cache: BTreeMap::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Chooses a path for `flow` from `src` to `dst`, or `None` if
    /// unreachable. Results are deterministic in `(src, dst, flow)`.
    pub fn route(
        &mut self,
        topo: &Topology,
        src: DeviceId,
        dst: DeviceId,
        flow: FlowId,
    ) -> Option<Vec<LinkId>> {
        let policy = self.policy;
        let candidates = self.candidates(topo, src, dst);
        if candidates.is_empty() {
            return None;
        }
        let pick = match policy {
            RoutingPolicy::SingleShortest => 0,
            RoutingPolicy::Ecmp { .. } => {
                // SplitMix64 over the flow id: cheap, deterministic, well
                // mixed — stands in for the 5-tuple hash real switches use.
                let mut z = flow.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                (z % candidates.len() as u64) as usize
            }
        };
        Some(candidates[pick].clone())
    }

    /// All candidate paths for a pair (cached after first computation).
    pub fn candidates(&mut self, topo: &Topology, src: DeviceId, dst: DeviceId) -> &[Vec<LinkId>] {
        let limit = match self.policy {
            RoutingPolicy::SingleShortest => 1,
            RoutingPolicy::Ecmp { max_paths } => max_paths.max(1),
        };
        self.cache
            .entry((src, dst))
            .or_insert_with(|| graph::all_shortest_paths(topo, src, dst, limit))
    }

    /// Discards the path cache; call after the topology changes (a
    /// re-cable, a link failure).
    pub fn invalidate(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use std::collections::HashSet;

    #[test]
    fn single_shortest_is_stable_across_flows() {
        let topo = Topology::multi_root_tree(2, 1, 2);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        let mut router = Router::new(RoutingPolicy::SingleShortest);
        let p1 = router.route(&topo, hosts[0], hosts[1], FlowId(1)).unwrap();
        let p2 = router
            .route(&topo, hosts[0], hosts[1], FlowId(999))
            .unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn ecmp_spreads_flows_across_roots() {
        let topo = Topology::multi_root_tree(2, 1, 4);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        let mut router = Router::new(RoutingPolicy::Ecmp { max_paths: 8 });
        let used: HashSet<Vec<LinkId>> = (0..64)
            .map(|i| router.route(&topo, hosts[0], hosts[1], FlowId(i)).unwrap())
            .collect();
        assert!(
            used.len() >= 3,
            "ECMP should hit several of the 4 paths, hit {}",
            used.len()
        );
    }

    #[test]
    fn route_is_deterministic_per_flow() {
        let topo = Topology::fat_tree(4);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        let mut r1 = Router::new(RoutingPolicy::default());
        let mut r2 = Router::new(RoutingPolicy::default());
        for i in 0..32 {
            assert_eq!(
                r1.route(&topo, hosts[0], hosts[15], FlowId(i)),
                r2.route(&topo, hosts[0], hosts[15], FlowId(i))
            );
        }
    }

    #[test]
    fn unreachable_returns_none() {
        let mut topo = Topology::new("disc");
        let a = topo.add_device(crate::topology::DeviceKind::Host { rack: 0 }, "a");
        let b = topo.add_device(crate::topology::DeviceKind::Host { rack: 1 }, "b");
        let mut router = Router::new(RoutingPolicy::default());
        assert_eq!(router.route(&topo, a, b, FlowId(0)), None);
    }

    #[test]
    fn fresh_routers_agree_on_all_pairs() {
        // Two routers built independently from the same topology must
        // return identical paths for every (src, dst, flow) — the D1
        // regression this file was converted to BTreeMap for.
        let topo = Topology::fat_tree(4);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        let mut r1 = Router::new(RoutingPolicy::default());
        let mut r2 = Router::new(RoutingPolicy::default());
        // Warm the two caches in opposite orders to expose any
        // insertion-order dependence.
        for &a in &hosts {
            for &b in &hosts {
                let _ = r1.candidates(&topo, a, b);
            }
        }
        for &a in hosts.iter().rev() {
            for &b in hosts.iter().rev() {
                let _ = r2.candidates(&topo, a, b);
            }
        }
        for &a in &hosts {
            for &b in &hosts {
                for flow in 0..4 {
                    assert_eq!(
                        r1.route(&topo, a, b, FlowId(flow)),
                        r2.route(&topo, a, b, FlowId(flow)),
                        "pair ({a:?}, {b:?}) flow {flow}"
                    );
                }
            }
        }
    }

    #[test]
    fn invalidate_clears_cache() {
        let topo = Topology::multi_root_tree(2, 1, 1);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        let mut router = Router::new(RoutingPolicy::SingleShortest);
        let _ = router.route(&topo, hosts[0], hosts[1], FlowId(0));
        router.invalidate();
        // Re-route still works after invalidation.
        assert!(router.route(&topo, hosts[0], hosts[1], FlowId(0)).is_some());
    }
}
