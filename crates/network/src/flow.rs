//! Flow identity and specification.
//!
//! A *flow* is one logical transfer between two hosts (an HTTP response, an
//! HDFS block, a migration pre-copy round). The flow-level simulator in
//! [`crate::flowsim`] computes each flow's throughput from link contention
//! rather than simulating individual packets — the fidelity/speed trade the
//! whole scale model is built on.

use crate::topology::{DeviceId, LinkId};
use picloud_simcore::units::Bytes;
use picloud_simcore::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a flow within one [`crate::flowsim::FlowSimulator`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow-{}", self.0)
    }
}

/// What a caller asks the simulator to transfer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Sending host.
    pub src: DeviceId,
    /// Receiving host.
    pub dst: DeviceId,
    /// Bytes to transfer.
    pub size: Bytes,
    /// Application tag carried through to the completion record (e.g.
    /// `"http"`, `"shuffle"`, `"migration"`).
    pub tag: String,
    /// Bandwidth-sharing weight (default 1.0). Under weighted max–min
    /// fairness a weight-0.5 flow takes half a weight-1 flow's share on a
    /// contended link — how an operator protects tenant traffic from
    /// migration streams (§III's "synergistic optimisation").
    pub weight: f64,
}

impl FlowSpec {
    /// Creates a spec with an empty tag and weight 1.
    pub fn new(src: DeviceId, dst: DeviceId, size: Bytes) -> Self {
        FlowSpec {
            src,
            dst,
            size,
            tag: String::new(),
            weight: 1.0,
        }
    }

    /// Sets the application tag.
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = tag.into();
        self
    }

    /// Sets the bandwidth-sharing weight.
    ///
    /// # Panics
    ///
    /// Panics unless `weight` is finite and strictly positive.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "flow weight must be positive"
        );
        self.weight = weight;
        self
    }
}

/// A live flow inside the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// This flow's id.
    pub id: FlowId,
    /// The original request.
    pub spec: FlowSpec,
    /// Links the flow traverses.
    pub path: Vec<LinkId>,
    /// When the flow entered the network.
    pub started: SimTime,
    /// Bits still to transfer.
    pub remaining_bits: f64,
    /// Rate currently allocated, bits/s.
    pub rate_bps: f64,
}

/// A finished flow, with its completion statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedFlow {
    /// This flow's id.
    pub id: FlowId,
    /// The original request.
    pub spec: FlowSpec,
    /// When the flow entered the network.
    pub started: SimTime,
    /// When the last bit arrived.
    pub finished: SimTime,
}

impl CompletedFlow {
    /// Flow completion time.
    pub fn fct(&self) -> picloud_simcore::SimDuration {
        self.finished.duration_since(self.started)
    }

    /// Achieved mean throughput in bits/s (0 for zero-duration flows).
    pub fn mean_throughput_bps(&self) -> f64 {
        let secs = self.fct().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.spec.size.as_u64() as f64 * 8.0 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picloud_simcore::SimDuration;

    #[test]
    fn spec_builder() {
        let s = FlowSpec::new(DeviceId(1), DeviceId(2), Bytes::mib(1)).with_tag("http");
        assert_eq!(s.tag, "http");
        assert_eq!(s.size, Bytes::mib(1));
    }

    #[test]
    fn completed_flow_stats() {
        let c = CompletedFlow {
            id: FlowId(0),
            spec: FlowSpec::new(DeviceId(0), DeviceId(1), Bytes::mib(1)),
            started: SimTime::from_secs(1),
            finished: SimTime::from_secs(2),
        };
        assert_eq!(c.fct(), SimDuration::from_secs(1));
        let tput = c.mean_throughput_bps();
        assert!((tput - 8.0 * 1024.0 * 1024.0).abs() < 1.0);
    }

    #[test]
    fn flow_id_display() {
        assert_eq!(FlowId(9).to_string(), "flow-9");
    }
}
