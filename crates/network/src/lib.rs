//! The PiCloud data-centre network fabric.
//!
//! The paper interconnects its 56 Pis "through a canonical multi-root tree
//! topology": hosts to Top-of-Rack switches, ToRs to an OpenFlow-enabled
//! aggregation layer, and everything to the university gateway acting as
//! core/border router (Fig. 2). It also notes the clusters "can easily be
//! re-cabled to form a fat-tree topology". This crate models that fabric at
//! flow level:
//!
//! * [`topology`] — devices, links and the three builders: the paper's
//!   multi-root tree, a k-ary fat-tree, and a folded-Clos / VL2-style
//!   leaf–spine.
//! * [`graph`] — BFS shortest paths, connectivity, edge-disjoint path
//!   counting and Dinic max-flow (used for bisection bandwidth).
//! * [`routing`] — ECMP over all shortest paths, plus static single-path
//!   routing.
//! * [`flow`] / [`flowsim`] — a deterministic flow-level simulator with
//!   water-filling max–min fair rate allocation, per-link utilisation
//!   accounting and an equal-share ablation allocator.
//!
//! # Example
//!
//! ```
//! use picloud_network::topology::Topology;
//!
//! // The paper's fabric: 4 racks x 14 hosts, 2 aggregation roots.
//! let topo = Topology::multi_root_tree(4, 14, 2);
//! assert_eq!(topo.hosts().count(), 56);
//! assert!(topo.is_connected());
//! ```

pub mod failure;
pub mod flow;
pub mod flowsim;
pub mod graph;
pub mod routing;
pub mod topology;

pub use failure::{ConnectivityReport, FailureMask};
pub use flow::{Flow, FlowId, FlowSpec};
pub use flowsim::estimate::{
    EstimateConfig, EstimateOutcome, FeatureMetric, FidelityMode, FlowEstimator,
};
pub use flowsim::{FlowSimulator, RateAllocator};
pub use routing::{Router, RoutingPolicy};
pub use topology::{DeviceId, DeviceKind, Link, LinkId, Topology};
