//! Failure injection.
//!
//! The paper motivates the testbed with DC failure studies ("Understanding
//! network failures in data centers", Gill et al. — its reference 2) and
//! argues a physical testbed exposes failure behaviour simulators abstract
//! away. This module injects link and device failures into a topology and
//! measures what survives: a [`FailureMask`] overlays a topology without
//! mutating it, so experiments can sweep failure sets cheaply, and
//! [`DegradedTopology`] materialises the surviving fabric for routing and
//! flow simulation.

use crate::graph;
use crate::topology::{DeviceId, DeviceKind, LinkId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A set of failed links and devices overlaying a topology.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureMask {
    failed_links: BTreeSet<LinkId>,
    failed_devices: BTreeSet<DeviceId>,
}

impl FailureMask {
    /// No failures.
    pub fn none() -> Self {
        FailureMask::default()
    }

    /// Fails a link.
    pub fn fail_link(&mut self, link: LinkId) -> &mut Self {
        self.failed_links.insert(link);
        self
    }

    /// Fails a device (implicitly failing every link touching it).
    pub fn fail_device(&mut self, device: DeviceId) -> &mut Self {
        self.failed_devices.insert(device);
        self
    }

    /// Repairs a link.
    pub fn repair_link(&mut self, link: LinkId) -> &mut Self {
        self.failed_links.remove(&link);
        self
    }

    /// Repairs a device.
    pub fn repair_device(&mut self, device: DeviceId) -> &mut Self {
        self.failed_devices.remove(&device);
        self
    }

    /// Whether `link` is up on `topo` under this mask.
    pub fn link_up(&self, topo: &Topology, link: LinkId) -> bool {
        if self.failed_links.contains(&link) {
            return false;
        }
        let l = topo.link(link);
        !self.failed_devices.contains(&l.a) && !self.failed_devices.contains(&l.b)
    }

    /// Whether `device` is up under this mask.
    pub fn device_up(&self, device: DeviceId) -> bool {
        !self.failed_devices.contains(&device)
    }

    /// Number of explicitly failed links.
    pub fn failed_link_count(&self) -> usize {
        self.failed_links.len()
    }

    /// Number of failed devices.
    pub fn failed_device_count(&self) -> usize {
        self.failed_devices.len()
    }

    /// Materialises the surviving fabric: failed devices disappear, failed
    /// links disappear, everything else keeps its capacity and latency.
    /// Device ids are *not* preserved — use the returned name map.
    pub fn apply(&self, topo: &Topology) -> DegradedTopology {
        let mut out = Topology::new(format!("{}(degraded)", topo.name()));
        let mut old_to_new: Vec<Option<DeviceId>> = vec![None; topo.devices().len()];
        for d in topo.devices() {
            if self.device_up(d.id) {
                let nid = out.add_device(d.kind, d.name.clone());
                old_to_new[d.id.index()] = Some(nid);
            }
        }
        for l in topo.links() {
            if !self.link_up(topo, l.id) {
                continue;
            }
            let (Some(a), Some(b)) = (old_to_new[l.a.index()], old_to_new[l.b.index()]) else {
                continue;
            };
            out.add_link(a, b, l.capacity, l.latency);
        }
        DegradedTopology {
            topology: out,
            old_to_new,
        }
    }
}

impl fmt::Display for FailureMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} failed link(s), {} failed device(s)",
            self.failed_links.len(),
            self.failed_devices.len()
        )
    }
}

/// A topology with failures applied, plus the id translation.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedTopology {
    /// The surviving fabric.
    pub topology: Topology,
    /// Old device id → new device id (None if the device failed).
    old_to_new: Vec<Option<DeviceId>>,
}

impl DegradedTopology {
    /// The new id of an original device, if it survived.
    pub fn translate(&self, old: DeviceId) -> Option<DeviceId> {
        self.old_to_new.get(old.index()).copied().flatten()
    }
}

/// Connectivity report for a (possibly degraded) fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConnectivityReport {
    /// Hosts still present.
    pub hosts_up: usize,
    /// Ordered host pairs that can still reach each other.
    pub reachable_pairs: usize,
    /// All ordered host pairs among surviving hosts.
    pub total_pairs: usize,
}

impl ConnectivityReport {
    /// Fraction of surviving-host pairs that can communicate, in `[0, 1]`.
    /// 1.0 for fewer than two hosts.
    pub fn reachability(&self) -> f64 {
        if self.total_pairs == 0 {
            1.0
        } else {
            self.reachable_pairs as f64 / self.total_pairs as f64
        }
    }

    /// Measures a fabric.
    pub fn measure(topo: &Topology) -> ConnectivityReport {
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        let n = hosts.len();
        if n < 2 {
            return ConnectivityReport {
                hosts_up: n,
                reachable_pairs: 0,
                total_pairs: 0,
            };
        }
        let mut reachable = 0usize;
        for &src in &hosts {
            let dist = graph::bfs_distances(topo, src);
            reachable += hosts
                .iter()
                .filter(|&&h| h != src && dist[h.index()] != u32::MAX)
                .count();
        }
        ConnectivityReport {
            hosts_up: n,
            reachable_pairs: reachable,
            total_pairs: n * (n - 1),
        }
    }
}

impl fmt::Display for ConnectivityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hosts up, {:.1}% pairs reachable",
            self.hosts_up,
            self.reachability() * 100.0
        )
    }
}

/// Convenience: the aggregation/core devices of a topology, the usual
/// failure-experiment targets.
pub fn aggregation_devices(topo: &Topology) -> Vec<DeviceId> {
    topo.devices_where(|k| matches!(k, DeviceKind::Aggregation | DeviceKind::Core))
        .map(|d| d.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_fabric() -> Topology {
        Topology::multi_root_tree(4, 14, 2)
    }

    #[test]
    fn no_failures_full_reachability() {
        let topo = paper_fabric();
        let r = ConnectivityReport::measure(&topo);
        assert_eq!(r.hosts_up, 56);
        assert!((r.reachability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_aggregation_root_is_survivable_with_two_roots() {
        let topo = paper_fabric();
        let aggs = aggregation_devices(&topo);
        assert_eq!(aggs.len(), 2);
        let mut mask = FailureMask::none();
        mask.fail_device(aggs[0]);
        let degraded = mask.apply(&topo);
        let r = ConnectivityReport::measure(&degraded.topology);
        assert_eq!(r.hosts_up, 56);
        assert!(
            (r.reachability() - 1.0).abs() < 1e-12,
            "second root carries all"
        );
    }

    #[test]
    fn both_roots_down_partitions_racks() {
        let topo = paper_fabric();
        let mut mask = FailureMask::none();
        for agg in aggregation_devices(&topo) {
            mask.fail_device(agg);
        }
        let degraded = mask.apply(&topo);
        let r = ConnectivityReport::measure(&degraded.topology);
        assert_eq!(r.hosts_up, 56);
        // Only intra-rack pairs survive: 4 racks x 14 x 13 of 56 x 55.
        let expect = (4 * 14 * 13) as f64 / (56 * 55) as f64;
        assert!(
            (r.reachability() - expect).abs() < 1e-9,
            "{}",
            r.reachability()
        );
    }

    #[test]
    fn single_root_tree_is_fragile() {
        let topo = Topology::multi_root_tree(4, 14, 1);
        let mut mask = FailureMask::none();
        mask.fail_device(aggregation_devices(&topo)[0]);
        let r = ConnectivityReport::measure(&mask.apply(&topo).topology);
        assert!(r.reachability() < 0.25, "one-root tree partitions");
    }

    #[test]
    fn fat_tree_tolerates_a_core_switch() {
        let topo = Topology::fat_tree(4);
        let cores = aggregation_devices(&topo);
        let mut mask = FailureMask::none();
        // Fail one *core* switch (kind Core appears in the list).
        let core = topo
            .devices_where(|k| matches!(k, DeviceKind::Core))
            .next()
            .expect("fat tree has cores")
            .id;
        mask.fail_device(core);
        let r = ConnectivityReport::measure(&mask.apply(&topo).topology);
        assert!((r.reachability() - 1.0).abs() < 1e-12);
        assert!(!cores.is_empty());
    }

    #[test]
    fn access_link_failure_strands_one_host() {
        let topo = paper_fabric();
        let host = topo.hosts().next().expect("has hosts").id;
        let access = topo.neighbours(host)[0].1;
        let mut mask = FailureMask::none();
        mask.fail_link(access);
        let degraded = mask.apply(&topo);
        let r = ConnectivityReport::measure(&degraded.topology);
        // The host is present but unreachable.
        assert_eq!(r.hosts_up, 56);
        let expect = (55 * 54) as f64 / (56 * 55) as f64;
        assert!((r.reachability() - expect).abs() < 1e-9);
    }

    #[test]
    fn repair_restores() {
        let topo = paper_fabric();
        let link = topo.links()[0].id;
        let mut mask = FailureMask::none();
        mask.fail_link(link);
        assert!(!mask.link_up(&topo, link));
        mask.repair_link(link);
        assert!(mask.link_up(&topo, link));
        let dev = topo.devices()[0].id;
        mask.fail_device(dev);
        assert!(!mask.device_up(dev));
        mask.repair_device(dev);
        assert!(mask.device_up(dev));
    }

    #[test]
    fn translation_maps_survivors() {
        let topo = paper_fabric();
        let victim = aggregation_devices(&topo)[0];
        let mut mask = FailureMask::none();
        mask.fail_device(victim);
        let degraded = mask.apply(&topo);
        assert_eq!(degraded.translate(victim), None);
        let survivor = topo.hosts().next().expect("hosts").id;
        let new = degraded.translate(survivor).expect("host survived");
        assert_eq!(
            degraded.topology.device(new).name,
            topo.device(survivor).name
        );
    }

    #[test]
    fn display_forms() {
        let mut mask = FailureMask::none();
        mask.fail_link(LinkId(0));
        assert!(mask.to_string().contains("1 failed link"));
        let r = ConnectivityReport::measure(&paper_fabric());
        assert!(r.to_string().contains("100.0% pairs"));
    }
}
