//! Graph algorithms over a [`Topology`].
//!
//! Everything here is exact (no heuristics): BFS shortest paths for routing,
//! Dinic's max-flow for bisection bandwidth, and edge-disjoint path counting
//! for the redundancy comparison between the multi-root tree and the
//! fat-tree re-cable.

use crate::topology::{DeviceId, LinkId, Topology};
use picloud_simcore::units::Bandwidth;
use std::collections::VecDeque;

/// Whether every device can reach every other device.
pub fn is_connected(topo: &Topology) -> bool {
    let n = topo.devices().len();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut queue = VecDeque::from([DeviceId(0)]);
    // lint: allow(P1) reason=seen is sized to the device count and src is validated by the caller
    seen[0] = true;
    let mut count = 1;
    while let Some(d) = queue.pop_front() {
        for &(next, _) in topo.neighbours(d) {
            if !seen[next.index()] {
                seen[next.index()] = true;
                count += 1;
                queue.push_back(next);
            }
        }
    }
    count == n
}

/// BFS distances (in hops) from `src` to every device; `u32::MAX` when
/// unreachable.
pub fn bfs_distances(topo: &Topology, src: DeviceId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; topo.devices().len()];
    dist[src.index()] = 0;
    let mut queue = VecDeque::from([src]);
    while let Some(d) = queue.pop_front() {
        for &(next, _) in topo.neighbours(d) {
            if dist[next.index()] == u32::MAX {
                dist[next.index()] = dist[d.index()] + 1;
                queue.push_back(next);
            }
        }
    }
    dist
}

/// One shortest path from `src` to `dst` as a sequence of links, or `None`
/// if unreachable. Ties are broken deterministically by link id.
pub fn shortest_path(topo: &Topology, src: DeviceId, dst: DeviceId) -> Option<Vec<LinkId>> {
    if src == dst {
        return Some(Vec::new());
    }
    let dist = bfs_distances(topo, src);
    if dist[dst.index()] == u32::MAX {
        return None;
    }
    // Walk backwards from dst choosing the lowest-id link to a predecessor.
    let mut path = Vec::new();
    let mut cur = dst;
    while cur != src {
        let d = dist[cur.index()];
        let mut best: Option<(LinkId, DeviceId)> = None;
        for &(prev, link) in topo.neighbours(cur) {
            if dist[prev.index()] + 1 == d {
                match best {
                    Some((bl, _)) if bl <= link => {}
                    _ => best = Some((link, prev)),
                }
            }
        }
        // lint: allow(P1) reason=BFS invariant: every settled node recorded a predecessor when first reached
        let (link, prev) = best.expect("BFS predecessor must exist");
        path.push(link);
        cur = prev;
    }
    path.reverse();
    Some(path)
}

/// All shortest paths from `src` to `dst`, capped at `limit` paths to keep
/// enumeration bounded in rich fabrics. Paths are produced in a
/// deterministic (link-id lexicographic) order.
pub fn all_shortest_paths(
    topo: &Topology,
    src: DeviceId,
    dst: DeviceId,
    limit: usize,
) -> Vec<Vec<LinkId>> {
    if src == dst {
        return vec![Vec::new()];
    }
    let dist = bfs_distances(topo, src);
    if dist[dst.index()] == u32::MAX || limit == 0 {
        return Vec::new();
    }
    // Reverse distances prune DFS branches that cannot lie on any shortest
    // path (a node is on one iff dist_src + dist_dst == total). Without
    // this the DFS walks every strictly-increasing-level path in the
    // graph — on a k=16 fat-tree a same-rack pair explores ~60k dead-end
    // paths through the core before giving up. The pruned branches yield
    // no results, so the returned paths and their order are unchanged.
    let rdist = bfs_distances(topo, dst);
    let total = dist[dst.index()];
    // DFS forward along strictly-increasing BFS levels.
    let mut results = Vec::new();
    let mut stack: Vec<LinkId> = Vec::new();
    #[allow(clippy::too_many_arguments)] // recursion state, not an API
    fn dfs(
        topo: &Topology,
        dist: &[u32],
        rdist: &[u32],
        total: u32,
        cur: DeviceId,
        dst: DeviceId,
        stack: &mut Vec<LinkId>,
        results: &mut Vec<Vec<LinkId>>,
        limit: usize,
    ) {
        if results.len() >= limit {
            return;
        }
        if cur == dst {
            results.push(stack.clone());
            return;
        }
        // Deterministic order: sort candidate edges by link id.
        let mut nexts: Vec<(DeviceId, LinkId)> = topo
            .neighbours(cur)
            .iter()
            .copied()
            .filter(|(n, _)| {
                dist[n.index()] == dist[cur.index()] + 1
                    && rdist[n.index()] != u32::MAX
                    && dist[n.index()] + rdist[n.index()] == total
            })
            .collect();
        nexts.sort_by_key(|&(_, l)| l);
        for (next, link) in nexts {
            stack.push(link);
            dfs(topo, dist, rdist, total, next, dst, stack, results, limit);
            stack.pop();
        }
    }
    dfs(
        topo,
        &dist,
        &rdist,
        total,
        src,
        dst,
        &mut stack,
        &mut results,
        limit,
    );
    results
}

/// One shortest path from `src` to `dst` that avoids every link in
/// `dead`, or `None` if no such path exists. Used by the SDN controller's
/// failure recovery.
pub fn shortest_path_avoiding(
    topo: &Topology,
    src: DeviceId,
    dst: DeviceId,
    dead: &std::collections::BTreeSet<LinkId>,
) -> Option<Vec<LinkId>> {
    if src == dst {
        return Some(Vec::new());
    }
    // BFS with dead links skipped; track predecessor links.
    let n = topo.devices().len();
    let mut dist = vec![u32::MAX; n];
    let mut pred: Vec<Option<(DeviceId, LinkId)>> = vec![None; n];
    dist[src.index()] = 0;
    let mut queue = VecDeque::from([src]);
    while let Some(d) = queue.pop_front() {
        if d == dst {
            break;
        }
        // Deterministic expansion order by link id.
        let mut nexts: Vec<(DeviceId, LinkId)> = topo
            .neighbours(d)
            .iter()
            .copied()
            .filter(|(_, l)| !dead.contains(l))
            .collect();
        nexts.sort_by_key(|&(_, l)| l);
        for (next, link) in nexts {
            if dist[next.index()] == u32::MAX {
                dist[next.index()] = dist[d.index()] + 1;
                pred[next.index()] = Some((d, link));
                queue.push_back(next);
            }
        }
    }
    if dist[dst.index()] == u32::MAX {
        return None;
    }
    let mut path = Vec::new();
    let mut cur = dst;
    while cur != src {
        // lint: allow(P1) reason=BFS invariant: nodes on a reconstructed path were reached, so have predecessors
        let (prev, link) = pred[cur.index()].expect("reached nodes have predecessors");
        path.push(link);
        cur = prev;
    }
    path.reverse();
    Some(path)
}

/// Maximum flow between two *sets* of hosts, in link-capacity units —
/// the bisection-bandwidth primitive. Each link contributes its capacity
/// in each direction (full-duplex).
pub fn max_flow_between_sets(
    topo: &Topology,
    sources: &[DeviceId],
    sinks: &[DeviceId],
) -> Bandwidth {
    if sources.is_empty() || sinks.is_empty() {
        return Bandwidth::ZERO;
    }
    let n = topo.devices().len();
    // Dinic over an expanded graph: node indices 0..n, super-source n,
    // super-sink n+1.
    let mut dinic = Dinic::new(n + 2);
    for link in topo.links() {
        let c = link.capacity.as_bps();
        dinic.add_edge(link.a.index(), link.b.index(), c);
        dinic.add_edge(link.b.index(), link.a.index(), c);
    }
    for s in sources {
        dinic.add_edge(n, s.index(), u64::MAX / 4);
    }
    for t in sinks {
        dinic.add_edge(t.index(), n + 1, u64::MAX / 4);
    }
    Bandwidth::bps(dinic.max_flow(n, n + 1))
}

/// Number of edge-disjoint paths between two devices (unit-capacity
/// max-flow) — the fault-tolerance measure for the Fig. 2 comparison.
pub fn edge_disjoint_paths(topo: &Topology, src: DeviceId, dst: DeviceId) -> u64 {
    if src == dst {
        return 0;
    }
    let n = topo.devices().len();
    let mut dinic = Dinic::new(n);
    for link in topo.links() {
        dinic.add_edge(link.a.index(), link.b.index(), 1);
        dinic.add_edge(link.b.index(), link.a.index(), 1);
    }
    dinic.max_flow(src.index(), dst.index())
}

/// Dinic's maximum-flow algorithm on an adjacency-list residual graph.
struct Dinic {
    // Edge arrays: to[e], cap[e]; reverse edge is e ^ 1.
    to: Vec<usize>,
    cap: Vec<u64>,
    head: Vec<Vec<usize>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    fn new(n: usize) -> Self {
        Dinic {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: u64) {
        let e = self.to.len();
        self.to.push(to);
        self.cap.push(cap);
        self.head[from].push(e);
        self.to.push(from);
        self.cap.push(0);
        self.head[to].push(e + 1);
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = VecDeque::from([s]);
        self.level[s] = 0;
        while let Some(v) = queue.pop_front() {
            for &e in &self.head[v] {
                if self.cap[e] > 0 && self.level[self.to[e]] < 0 {
                    self.level[self.to[e]] = self.level[v] + 1;
                    queue.push_back(self.to[e]);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, f: u64) -> u64 {
        if v == t {
            return f;
        }
        while self.iter[v] < self.head[v].len() {
            let e = self.head[v][self.iter[v]];
            let u = self.to[e];
            if self.cap[e] > 0 && self.level[u] == self.level[v] + 1 {
                let d = self.dfs(u, t, f.min(self.cap[e]));
                if d > 0 {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0
    }

    fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        let mut flow = 0u64;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, u64::MAX);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{DeviceKind, Topology};
    use picloud_simcore::units::Bandwidth;
    use picloud_simcore::SimDuration;

    fn line3() -> (Topology, DeviceId, DeviceId, DeviceId) {
        let mut t = Topology::new("line");
        let a = t.add_device(DeviceKind::Host { rack: 0 }, "a");
        let b = t.add_device(DeviceKind::TopOfRack { rack: 0 }, "b");
        let c = t.add_device(DeviceKind::Host { rack: 0 }, "c");
        t.add_link(a, b, Bandwidth::mbps(100), SimDuration::ZERO);
        t.add_link(b, c, Bandwidth::mbps(100), SimDuration::ZERO);
        (t, a, b, c)
    }

    #[test]
    fn connectivity() {
        let (t, ..) = line3();
        assert!(is_connected(&t));
        let mut disconnected = Topology::new("disc");
        disconnected.add_device(DeviceKind::Gateway, "g1");
        disconnected.add_device(DeviceKind::Gateway, "g2");
        assert!(!is_connected(&disconnected));
        assert!(is_connected(&Topology::new("empty")));
    }

    #[test]
    fn shortest_path_on_line() {
        let (t, a, _, c) = line3();
        let p = shortest_path(&t, a, c).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(shortest_path(&t, a, a), Some(vec![]));
    }

    #[test]
    fn shortest_path_unreachable_is_none() {
        let mut t = Topology::new("disc");
        let a = t.add_device(DeviceKind::Gateway, "g1");
        let b = t.add_device(DeviceKind::Gateway, "g2");
        assert_eq!(shortest_path(&t, a, b), None);
    }

    #[test]
    fn all_shortest_paths_in_multiroot_tree() {
        // 2 roots => two equal-cost ToR-to-ToR paths.
        let t = Topology::multi_root_tree(2, 1, 2);
        let hosts: Vec<DeviceId> = t.hosts().map(|h| h.id).collect();
        let paths = all_shortest_paths(&t, hosts[0], hosts[1], 16);
        assert_eq!(paths.len(), 2, "one path per aggregation root");
        for p in &paths {
            assert_eq!(p.len(), 4, "host-tor-agg-tor-host");
        }
        // Paths are distinct.
        assert_ne!(paths[0], paths[1]);
    }

    #[test]
    fn all_shortest_paths_respects_limit() {
        let t = Topology::multi_root_tree(2, 1, 4);
        let hosts: Vec<DeviceId> = t.hosts().map(|h| h.id).collect();
        let paths = all_shortest_paths(&t, hosts[0], hosts[1], 3);
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn avoiding_dead_links_detours_or_fails() {
        use std::collections::BTreeSet;
        let t = Topology::multi_root_tree(2, 1, 2);
        let hosts: Vec<DeviceId> = t.hosts().map(|h| h.id).collect();
        let free = shortest_path(&t, hosts[0], hosts[1]).unwrap();
        // Avoiding nothing matches plain BFS length.
        let same = shortest_path_avoiding(&t, hosts[0], hosts[1], &BTreeSet::new()).unwrap();
        assert_eq!(same.len(), free.len());
        // Kill the second hop: the detour through the other root is found.
        let mut dead = BTreeSet::new();
        dead.insert(free[1]);
        let detour = shortest_path_avoiding(&t, hosts[0], hosts[1], &dead).unwrap();
        assert!(!detour.contains(&free[1]));
        assert_eq!(detour.len(), free.len(), "other root, same length");
        // Kill the access link: no path at all.
        dead.insert(free[0]);
        assert_eq!(shortest_path_avoiding(&t, hosts[0], hosts[1], &dead), None);
        // Trivial self path.
        assert_eq!(
            shortest_path_avoiding(&t, hosts[0], hosts[0], &dead),
            Some(vec![])
        );
    }

    #[test]
    fn max_flow_simple_bottleneck() {
        let (t, a, _, c) = line3();
        let f = max_flow_between_sets(&t, &[a], &[c]);
        assert_eq!(f, Bandwidth::mbps(100));
    }

    #[test]
    fn max_flow_empty_sets() {
        let (t, a, ..) = line3();
        assert_eq!(max_flow_between_sets(&t, &[], &[a]), Bandwidth::ZERO);
    }

    #[test]
    fn edge_disjoint_counts_roots() {
        // Host-to-host redundancy is limited by the single access link.
        let t = Topology::multi_root_tree(2, 1, 2);
        let hosts: Vec<DeviceId> = t.hosts().map(|h| h.id).collect();
        assert_eq!(edge_disjoint_paths(&t, hosts[0], hosts[1]), 1);
        // ToR-to-ToR enjoys one path per root.
        let tors: Vec<DeviceId> = t
            .devices_where(|k| matches!(k, DeviceKind::TopOfRack { .. }))
            .map(|d| d.id)
            .collect();
        assert_eq!(edge_disjoint_paths(&t, tors[0], tors[1]), 2);
    }

    #[test]
    fn fat_tree_tor_redundancy_exceeds_tree() {
        let tree = Topology::multi_root_tree(4, 4, 1);
        let fat = Topology::fat_tree(4);
        let tor_pair = |t: &Topology| {
            let tors: Vec<DeviceId> = t
                .devices_where(|k| matches!(k, DeviceKind::TopOfRack { .. }))
                .map(|d| d.id)
                .collect();
            (tors[0], *tors.last().unwrap())
        };
        let (a1, b1) = tor_pair(&tree);
        let (a2, b2) = tor_pair(&fat);
        assert!(edge_disjoint_paths(&fat, a2, b2) > edge_disjoint_paths(&tree, a1, b1));
    }

    #[test]
    fn bfs_distance_levels() {
        let t = Topology::multi_root_tree(4, 14, 2);
        let gw = t
            .devices_where(|k| matches!(k, DeviceKind::Gateway))
            .next()
            .unwrap()
            .id;
        let dist = bfs_distances(&t, gw);
        // gateway -> agg (1) -> tor (2) -> host (3).
        for h in t.hosts() {
            assert_eq!(dist[h.id.index()], 3);
        }
    }
}
