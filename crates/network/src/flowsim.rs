//! Deterministic flow-level network simulation.
//!
//! [`FlowSimulator`] carries flows across a [`Topology`], allocating each
//! flow a rate from the capacities of the links it traverses. Links are
//! full-duplex: each direction of each link is an independent resource, as
//! on the real Ethernet fabric.
//!
//! Two allocators are provided (the ablation called out in DESIGN.md §4):
//!
//! * [`RateAllocator::MaxMin`] — progressive-filling water-fill, the
//!   standard fluid model of long-lived TCP sharing.
//! * [`RateAllocator::EqualShare`] — each resource is split evenly among
//!   its flows and a flow runs at the minimum share along its path. Not
//!   work-conserving; shows how much max–min's surplus redistribution
//!   matters.
//!
//! Time only advances through [`FlowSimulator::advance_to`] /
//! [`FlowSimulator::run_to_completion`]; between recomputation points every
//! rate is constant, so completions are computed exactly, not stepped.
//!
//! # Scaling machinery (DESIGN.md §4, "fabric scaling")
//!
//! Three structures keep the hot path sub-quadratic in active flows:
//!
//! * an **inverted resource→flows index** (`flows_on`, a `BTreeSet` per
//!   link direction) so utilisation queries and rate recomputation touch
//!   only the flows on affected resources;
//! * an **incremental solver** ([`RecomputeMode::Incremental`], the
//!   default) that re-solves only the *dirty region* — the resources on
//!   the changed flow's path plus the transitive closure of flows sharing
//!   them. The from-scratch solver is retained as the oracle
//!   ([`RecomputeMode::Full`]) and the two are bit-for-bit equivalent
//!   (`tests/flowsim_equiv.rs` proves it on seeded random workloads);
//! * a **completion-time min-heap** with lazy invalidation (per-flow rate
//!   epochs, like the engine's cancelled set) replacing the O(active)
//!   scan in [`FlowSimulator::next_completion_time`] — sharded per
//!   topology partition so each pod's churn only disturbs its own heap.
//!
//! # Partitioned parallel solve (DESIGN.md §4c)
//!
//! The [`partition`] module derives a [`partition::PartitionMap`] from
//! the topology (pods on the fat-tree, racks on the multi-root tree;
//! core/gateway links form the *shared spine*). Each recomputation
//! splits the dirty set into its connected sharing components, solves
//! the components concurrently on [`partition::map_ordered`] — a
//! deterministic, scoped, clock-free worker pool — and merges the
//! results in ascending flow-id order. Because disjoint components
//! share no resource, per-component arithmetic is identical to the
//! joint solve, so the result is **bit-for-bit independent of the
//! worker count** ([`FlowSimulator::set_workers`]);
//! `tests/flowsim_equiv.rs` pins this against the serial oracle at
//! worker counts 1, 2 and 8. Cross-partition flows collapse their
//! regions into a single shared-spine solve, which runs exactly like
//! any other region — just attributed to the `shared` bucket in the
//! `network_partition_solves_total` telemetry.
//!
//! Same-instant arrival bursts (traffic generator, MapReduce shuffle)
//! should use [`FlowSimulator::inject_batch`], which triggers one
//! recomputation for the whole burst instead of one per flow.

pub mod estimate;
pub mod partition;

use crate::flow::{CompletedFlow, Flow, FlowId, FlowSpec};
use crate::flowsim::partition::{PartitionMap, SolverPool};
use crate::routing::{Router, RoutingPolicy};
use crate::topology::{LinkId, Topology};
use picloud_simcore::telemetry::MetricsRegistry;
use picloud_simcore::{SimDuration, SimTime, TimeWeightedGauge};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;
use std::sync::Arc;

/// Bits below which a flow is considered finished (guards float error).
const EPSILON_BITS: f64 = 1e-6;

/// Minimum total region-flow count before a multi-region recompute is
/// worth fanning out to the worker pool: below this, thread start-up
/// dwarfs the solve. Results are bit-identical either way.
const PARALLEL_FLOWS_MIN: usize = 64;

/// How link capacity is divided among contending flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RateAllocator {
    /// Weighted water-filling max–min fairness (work-conserving).
    #[default]
    MaxMin,
    /// Naive equal split per resource, minimum along the path (not
    /// work-conserving) — the ablation baseline.
    EqualShare,
}

/// Scope of the rate recomputation triggered by each inject / completion /
/// cancel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RecomputeMode {
    /// Re-solve only the dirty region: the resources on the changed
    /// flow's path plus the transitive closure of flows sharing them.
    /// Bit-for-bit equivalent to [`RecomputeMode::Full`].
    #[default]
    Incremental,
    /// Re-solve every active flow from scratch — the oracle the
    /// incremental solver is checked against.
    Full,
}

/// Error returned when a flow cannot be injected.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectError {
    /// No path exists between the endpoints.
    NoRoute {
        /// The failed spec, returned to the caller.
        spec: FlowSpec,
    },
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::NoRoute { spec } => {
                write!(f, "no route from {} to {}", spec.src, spec.dst)
            }
        }
    }
}

impl std::error::Error for InjectError {}

/// One direction of one link — the simulator's unit of contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct ResourceId(usize);

/// A pending completion prediction: flow `id` finishes at `at` if its rate
/// is still the one it had at epoch `epoch`. Stale entries (flow gone, or
/// re-rated since) are discarded lazily when they surface at the top of
/// the heap, exactly like the event engine's cancelled set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CompletionEntry {
    at: SimTime,
    id: FlowId,
    epoch: u64,
}

/// A deterministic flow-level simulator over a topology.
///
/// # Example
///
/// ```
/// use picloud_network::flowsim::FlowSimulator;
/// use picloud_network::flow::FlowSpec;
/// use picloud_network::topology::Topology;
/// use picloud_simcore::units::Bytes;
/// use picloud_simcore::SimTime;
///
/// let topo = Topology::multi_root_tree(2, 2, 2);
/// let hosts: Vec<_> = topo.hosts().map(|h| h.id).collect();
/// let mut sim = FlowSimulator::new(topo, Default::default(), Default::default());
/// sim.inject(FlowSpec::new(hosts[0], hosts[2], Bytes::mib(10)), SimTime::ZERO)?;
/// let end = sim.run_to_completion();
/// assert_eq!(sim.completed().len(), 1);
/// assert!(end > SimTime::ZERO);
/// # Ok::<(), picloud_network::flowsim::InjectError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlowSimulator {
    topo: Topology,
    router: Router,
    allocator: RateAllocator,
    mode: RecomputeMode,
    now: SimTime,
    active: ActiveTable,
    next_id: u64,
    completed: Vec<CompletedFlow>,
    /// Monotonic count of every completion ever recorded — survives
    /// [`FlowSimulator::drain_completed`], unlike `completed.len()`.
    completed_total: u64,
    /// Capacity per resource (2 per link: even = a→b, odd = b→a), bits/s.
    resource_capacity: Vec<f64>,
    /// Inverted index: the active flows crossing each resource.
    flows_on: Vec<BTreeSet<FlowId>>,
    /// Resource-sharing adjacency, one sparse row per resource: row `a`
    /// maps each co-traversed resource `b` to the number of active flows
    /// crossing both. Lets the dirty-region walk stay purely on
    /// resources instead of chasing per-flow sets, at memory
    /// proportional to actual sharing (a dense `n_res²` matrix is
    /// ~151 MB on a 1024-host fat-tree).
    res_adj: Vec<BTreeMap<u32, u32>>,
    /// Current allocated rate sum per resource, bits/s (kept in lock-step
    /// with `flows_on` at every recomputation point).
    resource_used: Vec<f64>,
    /// Utilisation gauge per resource.
    resource_util: Vec<TimeWeightedGauge>,
    /// Total bits carried per resource.
    resource_bits: Vec<f64>,
    /// Pod/rack ownership of every device and link direction, derived
    /// once from the topology.
    partitions: PartitionMap,
    /// Worker threads for the partitioned solve (1 = fully serial).
    workers: usize,
    /// Persistent solver workers (present iff `workers > 1`); shared on
    /// clone — `run_ordered` calls are independent, so two simulators
    /// can safely queue onto the same workers.
    pool: Option<Arc<SolverPool>>,
    /// Min-heaps of predicted completion instants (lazy invalidation),
    /// sharded per partition bucket — local partitions first, the
    /// shared-spine bucket last — so pod-local churn stays pod-local.
    completions: Vec<BinaryHeap<Reverse<CompletionEntry>>>,
    /// Regions solved per partition bucket since construction (the
    /// `network_partition_solves_total` telemetry counter).
    partition_solves: Vec<u64>,
}

#[derive(Debug, Clone)]
struct ActiveFlow {
    flow: Flow,
    resources: Vec<ResourceId>,
    prop_latency: SimDuration,
    /// Bumped on every rate change; completion-heap entries carrying an
    /// older epoch are stale.
    epoch: u64,
    /// The shard this flow lives in — active table and completion heap
    /// alike: its partition bucket, fixed for the flow's lifetime (paths
    /// never change after injection).
    bucket: u32,
}

/// The active-flow table, sharded by partition bucket (local partitions
/// first, the shared-spine bucket last) so that a region solve only
/// touches maps sized to its own partition — lookups during gather and
/// apply stay cache-resident no matter how many flows the *other* pods
/// carry. Shard key-sets are disjoint (a flow lives in exactly the
/// bucket of its resources), so a k-way merge over the shards recovers
/// the global ascending-id iteration order bit-for-bit.
#[derive(Debug, Clone)]
struct ActiveTable {
    shards: Vec<BTreeMap<FlowId, ActiveFlow>>,
    total: usize,
}

impl ActiveTable {
    fn new(shards: usize) -> Self {
        ActiveTable {
            shards: vec![BTreeMap::new(); shards],
            total: 0,
        }
    }

    fn len(&self) -> usize {
        self.total
    }

    fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Inserts into the shard named by `af.bucket`.
    fn insert(&mut self, id: FlowId, af: ActiveFlow) {
        let b = af.bucket as usize;
        if self.shards[b].insert(id, af).is_none() {
            self.total += 1;
        }
    }

    /// Lookup when the owning shard is known (completion-heap entries
    /// always name their own shard).
    fn get_in(&self, bucket: u32, id: &FlowId) -> Option<&ActiveFlow> {
        self.shards[bucket as usize].get(id)
    }

    /// Lookup by id alone, probing shards in bucket order. Shards are
    /// disjoint, so at most one can answer.
    fn get_mut_any(&mut self, id: &FlowId) -> Option<&mut ActiveFlow> {
        self.shards.iter_mut().find_map(|s| s.get_mut(id))
    }

    /// Removal when the owning shard is known.
    fn remove_in(&mut self, bucket: u32, id: &FlowId) -> Option<ActiveFlow> {
        let removed = self.shards[bucket as usize].remove(id);
        if removed.is_some() {
            self.total -= 1;
        }
        removed
    }

    /// Removal by id alone, probing shards in bucket order.
    fn remove_any(&mut self, id: &FlowId) -> Option<ActiveFlow> {
        for s in &mut self.shards {
            if let Some(af) = s.remove(id) {
                self.total -= 1;
                return Some(af);
            }
        }
        None
    }

    /// All flows in ascending id order — the k-way merge over the
    /// disjoint shards, bit-identical to iterating one global map.
    fn iter_merged(&self) -> impl Iterator<Item = (FlowId, &ActiveFlow)> {
        let mut iters: Vec<_> = self.shards.iter().map(|s| s.iter().peekable()).collect();
        std::iter::from_fn(move || {
            let mut best: Option<(FlowId, usize)> = None;
            for (k, it) in iters.iter_mut().enumerate() {
                if let Some(&(&id, _)) = it.peek() {
                    if best.is_none_or(|(bid, _)| id < bid) {
                        best = Some((id, k));
                    }
                }
            }
            let (_, k) = best?;
            iters[k].next().map(|(id, af)| (*id, af))
        })
    }
}

/// Visits every flow across `shards` in ascending id order with mutable
/// access — the `iter_mut` flavour of [`ActiveTable::iter_merged`],
/// shared by the clock advance and the dense apply walk.
fn for_each_merged_mut(
    shards: &mut [BTreeMap<FlowId, ActiveFlow>],
    mut f: impl FnMut(FlowId, &mut ActiveFlow),
) {
    let mut iters: Vec<_> = shards.iter_mut().map(|s| s.iter_mut().peekable()).collect();
    loop {
        let mut best: Option<(FlowId, usize)> = None;
        for (k, it) in iters.iter_mut().enumerate() {
            if let Some((&id, _)) = it.peek() {
                if best.is_none_or(|(bid, _)| id < bid) {
                    best = Some((id, k));
                }
            }
        }
        let Some((_, k)) = best else { break };
        let Some((id, af)) = iters[k].next() else {
            break;
        };
        f(*id, af);
    }
}

/// One disjoint dirty region prepared for solving, fully **owned**: its
/// resources (with capacities and inverted-index counts snapshotted from
/// the simulator) plus its flow table (ids ascending; weights and
/// CSR-flattened paths index-aligned). Owning the data lets the job ship
/// to the persistent [`SolverPool`], whose workers outlive any single
/// borrow of the simulator; the solve arithmetic below is a line-for-line
/// transcription of the borrowed original, so results stay bit-for-bit
/// identical (pinned by `tests/flowsim_equiv.rs`).
struct SolveJob {
    /// Global resource count — scratch vectors are dense and
    /// resource-indexed, exactly like the pre-pool solver.
    n_res: usize,
    res_list: Vec<usize>,
    bucket: u32,
    flows: Vec<FlowId>,
    weight: Vec<f64>,
    /// CSR offsets: flow `i`'s path occupies
    /// `path_res[path_start[i] as usize..path_start[i + 1] as usize]`.
    path_start: Vec<u32>,
    path_res: Vec<ResourceId>,
    /// `resource_capacity[r]` for each `r` in `res_list`, index-aligned.
    capacity: Vec<f64>,
    /// `flows_on[r].len()` for each `r` in `res_list` — the equal-share
    /// denominators.
    flow_count: Vec<u32>,
}

impl SolveJob {
    /// Flow `i`'s path resources, in traversal order.
    fn path(&self, i: usize) -> &[ResourceId] {
        &self.path_res[self.path_start[i] as usize..self.path_start[i + 1] as usize]
    }

    /// Solves this region under `allocator`, returning rates
    /// index-aligned with `flows`.
    fn solve(&self, allocator: RateAllocator) -> Vec<f64> {
        match allocator {
            RateAllocator::MaxMin => self.solve_max_min(),
            RateAllocator::EqualShare => self.solve_equal_share(),
        }
    }

    /// Weighted progressive-filling water-fill restricted to the region.
    ///
    /// The pick order (lowest-index resource among minima), freeze order
    /// (ascending flow id) and arithmetic order are identical whether the
    /// region is the whole graph or one closed component, which is what
    /// makes incremental and full recomputes bit-for-bit equivalent.
    fn solve_max_min(&self) -> Vec<f64> {
        let n_res = self.n_res;
        let n_flows = self.flows.len();
        let mut cap_left = vec![0.0f64; n_res];
        for (k, &r) in self.res_list.iter().enumerate() {
            cap_left[r] = self.capacity[k];
        }
        let mut rates = vec![0.0f64; n_flows];
        // A flow with no path (retired, or a degenerate same-host route)
        // crosses no bottleneck; it keeps rate 0.0 without entering the
        // fill at all.
        let mut frozen: Vec<bool> = (0..n_flows).map(|i| self.path(i).is_empty()).collect();
        let mut n_unfrozen = frozen.iter().filter(|f| !**f).count();
        // Weighted max-min: each resource tracks the total weight of the
        // unfrozen flows crossing it; the fair share is per unit weight.
        let mut weight_on: Vec<f64> = vec![0.0; n_res];
        for i in 0..n_flows {
            for r in self.path(i) {
                weight_on[r.0] += self.weight[i];
            }
        }
        // CSR of region-flow indices per resource, ascending by flow id —
        // the same order `flows_on` iterates, without any tree walks or
        // searches in the fill loop below.
        let mut start = vec![0u32; n_res + 1];
        for r in &self.path_res {
            start[r.0 + 1] += 1;
        }
        for r in 0..n_res {
            start[r + 1] += start[r];
        }
        let mut idx_on = vec![0u32; start[n_res] as usize];
        let mut cursor = start.clone();
        for i in 0..n_flows {
            for r in self.path(i) {
                idx_on[cursor[r.0] as usize] = i as u32;
                cursor[r.0] += 1;
            }
        }
        while n_unfrozen > 0 {
            // Find the tightest resource: min cap_left / weight_on.
            let mut bottleneck: Option<(usize, f64)> = None;
            for &r in &self.res_list {
                if weight_on[r] <= 0.0 {
                    continue;
                }
                let fair = cap_left[r] / weight_on[r];
                match bottleneck {
                    Some((_, best)) if best <= fair => {}
                    _ => bottleneck = Some((r, fair)),
                }
            }
            let Some((bott, fair)) = bottleneck else {
                // Remaining flows traverse no resources (can't happen for
                // non-empty paths) — their rates stay 0.0.
                break;
            };
            // Freeze every unfrozen flow crossing the bottleneck at its
            // weighted share of the bottleneck's fair rate. The inverted
            // index yields exactly those flows in ascending id order, so
            // the fill never rescans flows the bottleneck doesn't touch.
            let mut froze_any = false;
            for &fi in &idx_on[start[bott] as usize..start[bott + 1] as usize] {
                let i = fi as usize;
                if frozen[i] {
                    continue;
                }
                let w = self.weight[i];
                let rate = fair * w;
                rates[i] = rate;
                frozen[i] = true;
                froze_any = true;
                n_unfrozen -= 1;
                for r in self.path(i) {
                    cap_left[r.0] = (cap_left[r.0] - rate).max(0.0);
                    weight_on[r.0] -= w;
                }
            }
            if !froze_any {
                // Float residue left phantom weight on a resource whose
                // flows are all frozen; retire it so the fill terminates.
                weight_on[bott] = 0.0;
            }
        }
        rates
    }

    /// Equal split per resource, minimum along the path, restricted to
    /// the region (counts were snapshotted from the inverted index).
    /// Returns rates index-aligned with the region flow table.
    fn solve_equal_share(&self) -> Vec<f64> {
        let n_res = self.n_res;
        let mut shares = vec![f64::INFINITY; n_res];
        for (k, &r) in self.res_list.iter().enumerate() {
            let n = self.flow_count[k] as usize;
            if n > 0 {
                shares[r] = self.capacity[k] / n as f64;
            }
        }
        (0..self.flows.len())
            .map(|i| {
                let rate = self
                    .path(i)
                    .iter()
                    .map(|r| shares[r.0])
                    .fold(f64::INFINITY, f64::min);
                if rate.is_finite() {
                    rate
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// The instant at which `remaining_bits` drains at `rate_bps`, rounded
/// *up* to the next nanosecond: rounding down could produce a zero-length
/// step on a sub-nanosecond residual and stall the clock.
fn completion_at(now: SimTime, remaining_bits: f64, rate_bps: f64) -> SimTime {
    let secs = remaining_bits / rate_bps;
    let nanos = (secs * 1e9).ceil().max(1.0);
    now + SimDuration::from_nanos(nanos as u64)
}

impl FlowSimulator {
    /// Creates a simulator over `topo` with the given routing policy and
    /// rate allocator.
    pub fn new(topo: Topology, policy: RoutingPolicy, allocator: RateAllocator) -> Self {
        let n_res = topo.links().len() * 2;
        let resource_capacity = topo
            .links()
            .iter()
            .flat_map(|l| {
                let c = l.capacity.as_bps() as f64;
                [c, c]
            })
            .collect();
        let partitions = PartitionMap::derive(&topo);
        let shards = partitions.shard_count();
        FlowSimulator {
            router: Router::new(policy),
            allocator,
            mode: RecomputeMode::default(),
            now: SimTime::ZERO,
            active: ActiveTable::new(shards),
            next_id: 0,
            completed: Vec::new(),
            completed_total: 0,
            resource_capacity,
            flows_on: vec![BTreeSet::new(); n_res],
            res_adj: vec![BTreeMap::new(); n_res],
            resource_used: vec![0.0; n_res],
            resource_util: (0..n_res)
                .map(|_| TimeWeightedGauge::new(SimTime::ZERO, 0.0))
                .collect(),
            resource_bits: vec![0.0; n_res],
            partitions,
            workers: 1,
            pool: None,
            completions: vec![BinaryHeap::new(); shards],
            partition_solves: vec![0; shards],
            topo,
        }
    }

    /// Builder-style variant of [`FlowSimulator::set_workers`].
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.set_workers(workers);
        self
    }

    /// The pod/rack partition map derived from the topology.
    pub fn partition_map(&self) -> &PartitionMap {
        &self.partitions
    }

    /// Worker threads used by the partitioned solve (1 = serial).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sets the worker-thread count for the partitioned solve (clamped
    /// to at least 1). Purely a speed knob: results are bit-for-bit
    /// identical at every worker count, because disjoint sharing
    /// components solve with unchanged arithmetic and merge in a fixed
    /// order (see the module docs and DESIGN.md §4c).
    ///
    /// With more than one worker the simulator owns a persistent
    /// [`SolverPool`]: the workers are spawned once here and reused by
    /// every subsequent solve, so repeated recomputes pay no per-call
    /// thread start-up.
    pub fn set_workers(&mut self, workers: usize) {
        let workers = workers.max(1);
        self.workers = workers;
        self.pool = if workers > 1 {
            Some(Arc::new(SolverPool::new(workers)))
        } else {
            None
        };
    }

    /// Dirty regions solved per partition bucket since construction —
    /// index `i` is local partition `i`, the last entry is the shared
    /// spine. The live view behind `network_partition_solves_total`.
    pub fn partition_solves(&self) -> &[u64] {
        &self.partition_solves
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of in-flight flows.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Completed flows, in completion order.
    pub fn completed(&self) -> &[CompletedFlow] {
        &self.completed
    }

    /// Monotonic count of every completion ever recorded, unaffected by
    /// [`FlowSimulator::drain_completed`].
    pub fn completed_total(&self) -> u64 {
        self.completed_total
    }

    /// Removes and returns the completed-flow records accumulated so far.
    pub fn drain_completed(&mut self) -> Vec<CompletedFlow> {
        std::mem::take(&mut self.completed)
    }

    /// The scope of each rate recomputation (incremental by default).
    pub fn recompute_mode(&self) -> RecomputeMode {
        self.mode
    }

    /// Switches between the incremental solver and the from-scratch
    /// oracle. The two are bit-for-bit equivalent, so this only affects
    /// speed; it may be flipped at any recomputation boundary.
    pub fn set_recompute_mode(&mut self, mode: RecomputeMode) {
        self.mode = mode;
    }

    /// Snapshot of `(id, allocated rate in bits/s)` for every active
    /// flow, ascending by id.
    pub fn active_rates(&self) -> Vec<(FlowId, f64)> {
        self.active
            .iter_merged()
            .map(|(id, af)| (id, af.flow.rate_bps))
            .collect()
    }

    /// Injects a flow at time `at` (must not precede the current time).
    ///
    /// Zero-sized flows complete immediately (after path latency).
    ///
    /// # Errors
    ///
    /// [`InjectError::NoRoute`] if the endpoints are disconnected.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn inject(&mut self, spec: FlowSpec, at: SimTime) -> Result<FlowId, InjectError> {
        let mut ids = self.inject_batch(vec![spec], at)?;
        debug_assert_eq!(ids.len(), 1);
        Ok(ids.remove(0))
    }

    /// Injects a burst of flows arriving at the same instant, triggering
    /// **one** rate recomputation for the whole burst instead of one per
    /// flow. Returns the assigned ids in spec order.
    ///
    /// Equivalent to injecting the specs one by one at `at` (same ids,
    /// same rates, same telemetry), except all-or-nothing on routing:
    /// if any spec has no route, nothing is injected.
    ///
    /// # Errors
    ///
    /// [`InjectError::NoRoute`] with the first unroutable spec; the
    /// simulator is left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn inject_batch(
        &mut self,
        specs: Vec<FlowSpec>,
        at: SimTime,
    ) -> Result<Vec<FlowId>, InjectError> {
        assert!(
            at >= self.now,
            "flow injected in the past ({at} < {})",
            self.now
        );
        self.advance_to(at);
        // Route every spec before committing anything, so a routing
        // failure leaves the simulator untouched.
        let mut routed = Vec::with_capacity(specs.len());
        for (k, spec) in specs.into_iter().enumerate() {
            let id = FlowId(self.next_id + k as u64);
            let path = match self.router.route(&self.topo, spec.src, spec.dst, id) {
                Some(p) => p,
                None => return Err(InjectError::NoRoute { spec }),
            };
            routed.push((id, spec, path));
        }
        let mut ids = Vec::with_capacity(routed.len());
        let mut seeds: Vec<ResourceId> = Vec::new();
        for (id, spec, path) in routed {
            self.next_id += 1;
            ids.push(id);
            let resources = self.path_resources(spec.src, &path);
            let prop_latency = path
                .iter()
                .map(|l| self.topo.link(*l).latency)
                .fold(SimDuration::ZERO, SimDuration::saturating_add);
            let size_bits = spec.size.as_u64() as f64 * 8.0;
            if size_bits <= EPSILON_BITS {
                self.completed.push(CompletedFlow {
                    id,
                    spec,
                    started: at,
                    finished: at.saturating_add(prop_latency),
                });
                self.completed_total += 1;
                continue;
            }
            let flow = Flow {
                id,
                spec,
                path,
                started: at,
                remaining_bits: size_bits,
                rate_bps: 0.0,
            };
            self.index_add(id, &resources);
            seeds.extend(resources.iter().copied());
            let bucket = self.flow_bucket(&resources);
            self.active.insert(
                id,
                ActiveFlow {
                    flow,
                    resources,
                    prop_latency,
                    epoch: 0,
                    bucket,
                },
            );
        }
        if !seeds.is_empty() {
            self.recompute_rates(&seeds);
        }
        Ok(ids)
    }

    /// Cancels an in-flight flow (a failed request, an aborted migration).
    /// Returns the partially-transferred flow if it was active.
    pub fn cancel(&mut self, id: FlowId) -> Option<Flow> {
        let af = self.active.remove_any(&id)?;
        self.index_remove(id, &af.resources);
        self.recompute_rates(&af.resources);
        Some(af.flow)
    }

    /// Earliest instant at which an active flow completes its transfer, or
    /// `None` if nothing is active (or everything is rate-starved).
    ///
    /// Served from the per-partition completion min-heaps: stale entries
    /// (flow gone, or re-rated since the prediction) are popped lazily
    /// here, then the earliest live prediction across the shards wins
    /// (ties broken by flow id, so the scan order is immaterial).
    /// Completion delays are rounded *up* to the next nanosecond, so the
    /// clock always makes progress.
    pub fn next_completion_time(&mut self) -> Option<SimTime> {
        let mut best: Option<(SimTime, FlowId)> = None;
        for s in 0..self.completions.len() {
            while let Some(Reverse(e)) = self.completions[s].peek() {
                let top = *e;
                let Some(af) = self.active.get_in(s as u32, &top.id) else {
                    self.completions[s].pop();
                    continue;
                };
                if af.epoch != top.epoch {
                    self.completions[s].pop();
                    continue;
                }
                if top.at <= self.now && af.flow.remaining_bits > EPSILON_BITS {
                    // A sub-nanosecond residual survived the predicted
                    // instant; re-predict from the current remaining
                    // volume (≥ 1 ns ahead, so this cannot loop).
                    let at = completion_at(self.now, af.flow.remaining_bits, af.flow.rate_bps);
                    let entry = CompletionEntry {
                        at,
                        id: top.id,
                        epoch: af.epoch,
                    };
                    self.completions[s].pop();
                    self.completions[s].push(Reverse(entry));
                    continue;
                }
                match best {
                    Some(b) if b <= (top.at, top.id) => {}
                    _ => best = Some((top.at, top.id)),
                }
                break;
            }
        }
        best.map(|(at, _)| at)
    }

    /// Advances the clock to `deadline`, completing flows as they finish.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` precedes the current time.
    pub fn advance_to(&mut self, deadline: SimTime) {
        assert!(deadline >= self.now, "cannot advance backwards");
        while let Some(next) = self.next_completion_time() {
            if next > deadline {
                break;
            }
            let finished = self.advance_clock(next);
            let seeds = self.harvest_completions(finished);
            if !seeds.is_empty() {
                self.recompute_rates(&seeds);
            }
        }
        let finished = self.advance_clock(deadline);
        if !finished.is_empty() {
            // A float dip can drain a flow a hair before its predicted
            // (ns-rounded-up) completion instant; retire it now rather
            // than leaving a zero-remaining flow active.
            let seeds = self.harvest_completions(finished);
            self.recompute_rates(&seeds);
        }
    }

    /// Runs until every active flow has completed, returning the finish
    /// time. Flows that are rate-starved (zero-capacity path) are reported
    /// via panic — they indicate a topology configuration error.
    ///
    /// # Panics
    ///
    /// Panics if active flows exist but none can make progress.
    pub fn run_to_completion(&mut self) -> SimTime {
        while !self.active.is_empty() {
            let next = self
                .next_completion_time()
                // lint: allow(P1) reason=documented panic — rate-starved flows indicate a topology configuration error (see # Panics)
                .expect("active flows exist but none has positive rate");
            let finished = self.advance_clock(next);
            let seeds = self.harvest_completions(finished);
            if !seeds.is_empty() {
                self.recompute_rates(&seeds);
            }
        }
        self.now
    }

    /// Instantaneous utilisation of `link` in `[0, 1]` — the busier of its
    /// two directions.
    pub fn link_utilisation(&self, link: LinkId) -> f64 {
        let a = self.direction_utilisation(link, true);
        let b = self.direction_utilisation(link, false);
        a.max(b)
    }

    /// Instantaneous utilisation of one direction of `link`. O(1) — read
    /// from the maintained per-resource rate sums.
    pub fn direction_utilisation(&self, link: LinkId, forward: bool) -> f64 {
        let r = link.index() * 2 + usize::from(!forward);
        let cap = self.resource_capacity[r];
        if cap <= 0.0 {
            return 0.0;
        }
        (self.resource_used[r] / cap).clamp(0.0, 1.0)
    }

    /// Time-weighted mean utilisation of `link` since simulation start
    /// (mean of the two directions).
    pub fn mean_link_utilisation(&self, link: LinkId) -> f64 {
        let a = self.resource_util[link.index() * 2].mean(self.now);
        let b = self.resource_util[link.index() * 2 + 1].mean(self.now);
        (a + b) / 2.0
    }

    /// Total bytes carried over `link` (both directions).
    pub fn link_bytes_carried(&self, link: LinkId) -> f64 {
        (self.resource_bits[link.index() * 2] + self.resource_bits[link.index() * 2 + 1]) / 8.0
    }

    /// Active flows currently routed over `link` (either direction) — the
    /// fluid model's stand-in for queue depth. Answered from the inverted
    /// index in O(flows on the link), not O(all active flows).
    pub fn link_active_flows(&self, link: LinkId) -> usize {
        let fwd = &self.flows_on[link.index() * 2];
        let rev = &self.flows_on[link.index() * 2 + 1];
        fwd.union(rev).count()
    }

    /// Records the fabric's telemetry into `reg` at the simulator's
    /// current instant: per-link gauges
    /// `network_link_utilisation{link}` (instantaneous, busier
    /// direction), `network_link_mean_utilisation{link}` (time-weighted
    /// since start), `network_link_bytes_carried{link}` and
    /// `network_link_active_flows{link}` (queue-depth proxy), plus the
    /// cluster-wide `network_active_flows` gauge and
    /// `network_completed_flows_total` counter. The partitioned solver
    /// adds the `network_partitions` gauge (local partition count) and
    /// the `network_partition_solves_total{partition}` counter — one
    /// series per pod/rack bucket plus `partition="shared"` for
    /// spine-crossing regions.
    pub fn record_telemetry(&self, reg: &mut MetricsRegistry) {
        let now = self.now;
        for l in self.topo.links() {
            let id = l.id.0.to_string();
            let labels = [("link", id.as_str())];
            reg.gauge("network_link_utilisation", &labels)
                .set(now, self.link_utilisation(l.id));
            reg.gauge("network_link_mean_utilisation", &labels)
                .set(now, self.mean_link_utilisation(l.id));
            reg.gauge("network_link_bytes_carried", &labels)
                .set(now, self.link_bytes_carried(l.id));
            reg.gauge("network_link_active_flows", &labels)
                .set(now, self.link_active_flows(l.id) as f64);
        }
        reg.gauge("network_active_flows", &[])
            .set(now, self.active_count() as f64);
        // The counter tracks the monotonic completion total, not the
        // drainable `completed` buffer: `completed().len()` shrinks on
        // `drain_completed()`, and subtracting it from the counter would
        // underflow.
        let done = reg.counter("network_completed_flows_total", &[]);
        done.add(self.completed_total.saturating_sub(done.value()));
        reg.gauge("network_partitions", &[])
            .set(now, self.partitions.partition_count() as f64);
        for (b, &solves) in self.partition_solves.iter().enumerate() {
            let label = self.partitions.bucket_label(b as u32);
            let labels = [("partition", label.as_str())];
            let c = reg.counter("network_partition_solves_total", &labels);
            c.add(solves.saturating_sub(c.value()));
        }
    }

    /// The `n` links with the highest time-weighted mean utilisation,
    /// descending — the congestion hot-spot report.
    pub fn busiest_links(&self, n: usize) -> Vec<(LinkId, f64)> {
        let mut v: Vec<(LinkId, f64)> = self
            .topo
            .links()
            .iter()
            .map(|l| (l.id, self.mean_link_utilisation(l.id)))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    // ------------------------------------------------------------------

    fn path_resources(&self, src: crate::topology::DeviceId, path: &[LinkId]) -> Vec<ResourceId> {
        let mut cur = src;
        let mut out = Vec::with_capacity(path.len());
        for &lid in path {
            let link = self.topo.link(lid);
            let forward = cur == link.a;
            out.push(ResourceId(lid.index() * 2 + usize::from(!forward)));
            cur = link.other_end(cur);
        }
        out
    }

    /// The completion-heap shard for a flow crossing `resources`: its
    /// partition if every resource agrees, the shared-spine bucket
    /// otherwise (cross-pod paths, or paths touching a spine link).
    fn flow_bucket(&self, resources: &[ResourceId]) -> u32 {
        let shared = self.partitions.shared_id();
        let mut owner: Option<u32> = None;
        for r in resources {
            let b = self.partitions.resource_bucket(r.0);
            match owner {
                None => owner = Some(b),
                Some(o) if o == b => {}
                Some(_) => return shared,
            }
        }
        owner.unwrap_or(shared)
    }

    /// Hooks a flow into the inverted index and the resource-sharing
    /// adjacency. `resources` is a simple path, so every entry is unique.
    fn index_add(&mut self, id: FlowId, resources: &[ResourceId]) {
        for r in resources {
            self.flows_on[r.0].insert(id);
        }
        for a in resources {
            let row = &mut self.res_adj[a.0];
            for b in resources {
                *row.entry(b.0 as u32).or_insert(0) += 1;
            }
        }
    }

    /// Unhooks a flow from the inverted index and the adjacency counts,
    /// dropping rows' entries that reach zero so the sparse adjacency
    /// never outgrows the live sharing structure.
    fn index_remove(&mut self, id: FlowId, resources: &[ResourceId]) {
        for r in resources {
            self.flows_on[r.0].remove(&id);
        }
        for a in resources {
            let row = &mut self.res_adj[a.0];
            for b in resources {
                let k = b.0 as u32;
                if let Some(count) = row.get_mut(&k) {
                    *count -= 1;
                    if *count == 0 {
                        row.remove(&k);
                    }
                }
            }
        }
    }

    /// Moves the clock forward, draining `remaining_bits` at current
    /// rates and integrating utilisation gauges. Returns the flows that
    /// drained dry during this step (with their owning shard), in
    /// ascending id order — the same set and order a post-hoc scan would
    /// find, without a second walk. The merged shard walk preserves the
    /// global ascending-id order, so the per-resource bit accumulation
    /// stays bit-identical to a single-map iteration.
    fn advance_clock(&mut self, to: SimTime) -> Vec<(FlowId, u32)> {
        if to == self.now {
            return Vec::new();
        }
        let dt = to.duration_since(self.now).as_secs_f64();
        let mut finished = Vec::new();
        let resource_bits = &mut self.resource_bits;
        for_each_merged_mut(&mut self.active.shards, |id, af| {
            let moved = af.flow.rate_bps * dt;
            af.flow.remaining_bits = (af.flow.remaining_bits - moved).max(0.0);
            if af.flow.remaining_bits <= EPSILON_BITS {
                finished.push((id, af.bucket));
            }
            for r in &af.resources {
                resource_bits[r.0] += moved;
            }
        });
        self.now = to;
        finished
    }

    /// Retires the drained flows, unhooks them from the inverted index
    /// and returns their resources as the dirty seed for the next
    /// recompute. Active flows always carry `remaining_bits` above the
    /// epsilon outside [`FlowSimulator::advance_clock`], so the drain
    /// walk's harvest list is exhaustive.
    fn harvest_completions(&mut self, finished: Vec<(FlowId, u32)>) -> Vec<ResourceId> {
        let mut seeds = Vec::new();
        for (id, bucket) in finished {
            let Some(af) = self.active.remove_in(bucket, &id) else {
                continue; // id came from self.active moments ago
            };
            self.index_remove(id, &af.resources);
            seeds.extend(af.resources.iter().copied());
            self.completed.push(CompletedFlow {
                id,
                spec: af.flow.spec,
                started: af.flow.started,
                finished: self.now.saturating_add(af.prop_latency),
            });
            self.completed_total += 1;
        }
        seeds
    }

    /// The regions a change seeded at `seeds` can influence, one per
    /// connected component of the sharing graph: in
    /// [`RecomputeMode::Full`], a single region spanning everything; in
    /// [`RecomputeMode::Incremental`], the transitive closure of flows
    /// and resources reachable from each seed resource through the
    /// flow–resource sharing graph. Every region is bi-closed (every
    /// flow of a region resource is in the region and vice versa) and
    /// regions are mutually disjoint, which is exactly what makes the
    /// restricted solves bit-identical to the full one *and* safe to run
    /// concurrently. Regions are ordered by first seed, resources
    /// ascending within each.
    fn dirty_regions(&self, seeds: &[ResourceId]) -> Vec<Vec<usize>> {
        let n_res = self.resource_capacity.len();
        match self.mode {
            RecomputeMode::Full => vec![(0..n_res).collect()],
            RecomputeMode::Incremental => {
                // Walk the resource-sharing adjacency — no per-flow set
                // chasing; a resource joins a region iff some flow
                // crosses both it and a resource already inside. Seeds
                // landing in an already-built region are skipped, so a
                // burst spanning several components yields one region
                // per component.
                let mut res_in = vec![false; n_res];
                let mut regions: Vec<Vec<usize>> = Vec::new();
                let mut frontier: Vec<usize> = Vec::new();
                for seed in seeds {
                    if res_in[seed.0] {
                        continue;
                    }
                    res_in[seed.0] = true;
                    frontier.push(seed.0);
                    let mut res_list: Vec<usize> = Vec::new();
                    while let Some(r) = frontier.pop() {
                        res_list.push(r);
                        for (&r2, &shared) in &self.res_adj[r] {
                            if shared > 0 && !res_in[r2 as usize] {
                                res_in[r2 as usize] = true;
                                frontier.push(r2 as usize);
                            }
                        }
                    }
                    res_list.sort_unstable();
                    regions.push(res_list);
                }
                regions
            }
        }
    }

    /// The region's flow table in one pass: ids (ascending), weights and
    /// path slices, index-aligned. A region spanning every resource is
    /// gathered by a merged ordered walk of the active shards; a partial
    /// region unions the inverted-index rows. (The two differ only by
    /// flows traversing no resources, which the solvers rate 0.0 without
    /// side effects either way.)
    ///
    /// `bucket` is the region's partition bucket: a local region's flows
    /// all live in that one shard (a flow of any other bucket on a region
    /// resource would have dragged the closure across the spine), so the
    /// lookups never touch maps owned by other partitions.
    #[allow(clippy::type_complexity)]
    fn region_flow_table(
        &self,
        res_list: &[usize],
        bucket: u32,
    ) -> (Vec<FlowId>, Vec<f64>, Vec<&[ResourceId]>) {
        let n_res = self.resource_capacity.len();
        if res_list.len() == n_res {
            let mut flows = Vec::with_capacity(self.active.len());
            let mut weight = Vec::with_capacity(self.active.len());
            let mut paths = Vec::with_capacity(self.active.len());
            for (id, af) in self.active.iter_merged() {
                flows.push(id);
                weight.push(af.flow.spec.weight);
                paths.push(af.resources.as_slice());
            }
            return (flows, weight, paths);
        }
        // The region is bi-closed: a flow with *any* resource inside has
        // *all* of them inside, so its flow set is both the union of the
        // inverted-index rows and — equivalently — the flows whose first
        // path hop lands in the region. `rows` (the summed index-row
        // lengths, ≈ flows × path length) tells which gather is cheaper
        // before building either: a dense region is read with one
        // ordered walk of the owning shard(s) filtered by a region
        // bitmap (no union, no sort — shard order *is* ascending id
        // order), a sparse one unions the rows and probes per id.
        let rows: usize = res_list.iter().map(|&r| self.flows_on[r].len()).sum();
        let local = (bucket as usize) < self.active.shards.len().saturating_sub(1);
        let mut flows: Vec<FlowId> = Vec::new();
        let mut weight: Vec<f64> = Vec::new();
        let mut paths: Vec<&[ResourceId]> = Vec::new();
        let dense = if local {
            rows >= self.active.shards[bucket as usize].len()
        } else {
            rows >= self.active.len()
        };
        if dense {
            let mut in_region = vec![false; n_res];
            for &r in res_list {
                in_region[r] = true;
            }
            // A plain fn, not a closure: the pushed path slice must
            // carry `self`'s lifetime, which closure inference would
            // shorten.
            #[allow(clippy::too_many_arguments)]
            fn take<'a>(
                flows: &mut Vec<FlowId>,
                weight: &mut Vec<f64>,
                paths: &mut Vec<&'a [ResourceId]>,
                in_region: &[bool],
                id: FlowId,
                af: &'a ActiveFlow,
            ) {
                if af.resources.first().is_some_and(|r| in_region[r.0]) {
                    flows.push(id);
                    weight.push(af.flow.spec.weight);
                    paths.push(af.resources.as_slice());
                }
            }
            if local {
                for (&id, af) in &self.active.shards[bucket as usize] {
                    take(&mut flows, &mut weight, &mut paths, &in_region, id, af);
                }
            } else {
                for (id, af) in self.active.iter_merged() {
                    take(&mut flows, &mut weight, &mut paths, &in_region, id, af);
                }
            }
            return (flows, weight, paths);
        }
        flows = res_list
            .iter()
            .flat_map(|&r| self.flows_on[r].iter().copied())
            .collect();
        flows.sort_unstable();
        flows.dedup();
        weight.reserve(flows.len());
        paths.reserve(flows.len());
        if local {
            // Local region: every flow lives in this partition's shard.
            let shard = &self.active.shards[bucket as usize];
            for id in &flows {
                // lint: allow(P1) reason=flows_on rows only hold active ids, and bucket purity pins a local region's flows to this shard
                let af = shard.get(id).expect("inverted-index ids are active");
                weight.push(af.flow.spec.weight);
                paths.push(af.resources.as_slice());
            }
        } else {
            // Spine-crossing region: probe the shards per id (at most
            // one answers — shard key-sets are disjoint).
            for id in &flows {
                let af = self
                    .active
                    .shards
                    .iter()
                    .find_map(|s| s.get(id))
                    // lint: allow(P1) reason=flows_on rows only hold active ids; every active flow lives in exactly one shard
                    .expect("inverted-index ids are active");
                weight.push(af.flow.spec.weight);
                paths.push(af.resources.as_slice());
            }
        }
        (flows, weight, paths)
    }

    /// Recomputes rates for the regions dirtied by a change at `seeds`
    /// and updates the per-resource rate sums and utilisation gauges —
    /// applying only the *differences*, so both recompute modes leave
    /// identical state behind.
    ///
    /// Disjoint regions are solved independently — concurrently on the
    /// worker pool when there is more than one and enough flows to pay
    /// for the threads — then merged in ascending flow-id order. Each
    /// region's arithmetic is identical whether it is solved jointly
    /// with the others, alone, or on another thread, so the merged
    /// result is bit-for-bit independent of both the region split and
    /// the worker count.
    fn recompute_rates(&mut self, seeds: &[ResourceId]) {
        let regions = self.dirty_regions(seeds);
        let buckets: Vec<u32> = regions
            .iter()
            .map(|r| self.partitions.region_bucket(r))
            .collect();
        for &bucket in &buckets {
            self.partition_solves[bucket as usize] += 1;
        }
        let (solved_regions, res_union) = {
            let n_res_total = self.resource_capacity.len();
            let jobs: Vec<SolveJob> = regions
                .into_iter()
                .zip(&buckets)
                .map(|(res_list, &bucket)| {
                    let (flows, weight, paths) = self.region_flow_table(&res_list, bucket);
                    // Flatten the borrowed path slices into CSR form so
                    // the job owns every byte it needs: the persistent
                    // pool's workers cannot borrow `self`.
                    let mut path_start = Vec::with_capacity(flows.len() + 1);
                    path_start.push(0u32);
                    let mut path_res: Vec<ResourceId> = Vec::new();
                    for p in &paths {
                        path_res.extend_from_slice(p);
                        path_start.push(path_res.len() as u32);
                    }
                    let capacity = res_list
                        .iter()
                        .map(|&r| self.resource_capacity[r])
                        .collect();
                    let flow_count = res_list
                        .iter()
                        .map(|&r| self.flows_on[r].len() as u32)
                        .collect();
                    SolveJob {
                        n_res: n_res_total,
                        res_list,
                        bucket,
                        flows,
                        weight,
                        path_start,
                        path_res,
                        capacity,
                        flow_count,
                    }
                })
                .collect();
            let total_flows: usize = jobs.iter().map(|j| j.flows.len()).sum();
            let parallel = jobs.len() > 1 && total_flows >= PARALLEL_FLOWS_MIN;
            let allocator = self.allocator;
            let solved: Vec<(SolveJob, Vec<f64>)> = match &self.pool {
                Some(pool) if parallel => pool.run_ordered(jobs, move |_, job: SolveJob| {
                    let rates = job.solve(allocator);
                    (job, rates)
                }),
                _ => jobs
                    .into_iter()
                    .map(|job| {
                        let rates = job.solve(allocator);
                        (job, rates)
                    })
                    .collect(),
            };
            // Fixed-order merge: regions stay in dirty-region order
            // (first-seed order), flows ascending by id within each —
            // independent of which worker solved what.
            let mut solved_regions: Vec<(u32, Vec<FlowId>, Vec<f64>)> =
                Vec::with_capacity(solved.len());
            let mut res_union: Vec<usize> = Vec::new();
            for (job, rates) in solved {
                solved_regions.push((job.bucket, job.flows, rates));
                res_union.extend(job.res_list);
            }
            (solved_regions, res_union)
        };
        // Apply the solution region by region, flows ascending within
        // each, accumulating the per-resource rate sums in the same
        // pass. Regions are resource-disjoint, so every resource
        // receives its sharers' contributions in ascending id order —
        // exactly the `flows_on` iteration order — and the sums stay
        // bit-identical whether the regions were solved jointly (the
        // full oracle), one by one, or concurrently. Dense regions walk
        // their owning shard once instead of descending the tree per
        // flow.
        let now = self.now;
        let n_res = self.resource_capacity.len();
        let n_local = self.active.shards.len().saturating_sub(1);
        let mut used_new = vec![0.0f64; n_res];
        let completions = &mut self.completions;
        let mut apply = |af: &mut ActiveFlow, id: FlowId, rate: f64, used_new: &mut [f64]| {
            if af.flow.rate_bps.to_bits() != rate.to_bits() {
                af.flow.rate_bps = rate;
                af.epoch += 1;
                if rate > 0.0 {
                    let at = completion_at(now, af.flow.remaining_bits, rate);
                    completions[af.bucket as usize].push(Reverse(CompletionEntry {
                        at,
                        id,
                        epoch: af.epoch,
                    }));
                }
            }
            for r in &af.resources {
                used_new[r.0] += af.flow.rate_bps;
            }
        };
        for (bucket, flows, rates) in &solved_regions {
            if (*bucket as usize) < n_local {
                // Local region: all flows live in this one shard.
                let shard = &mut self.active.shards[*bucket as usize];
                if flows.len() * 4 >= shard.len() {
                    let mut k = 0usize;
                    for (&id, af) in shard.iter_mut() {
                        while k < flows.len() && flows[k] < id {
                            k += 1;
                        }
                        if k < flows.len() && flows[k] == id {
                            apply(af, id, rates[k], &mut used_new);
                        }
                    }
                } else {
                    for (i, id) in flows.iter().enumerate() {
                        if let Some(af) = shard.get_mut(id) {
                            apply(af, *id, rates[i], &mut used_new);
                        }
                    }
                }
            } else if flows.len() * 4 >= self.active.len() {
                // Dense spine-crossing region: merged ordered walk.
                let mut k = 0usize;
                for_each_merged_mut(&mut self.active.shards, |id, af| {
                    while k < flows.len() && flows[k] < id {
                        k += 1;
                    }
                    if k < flows.len() && flows[k] == id {
                        apply(af, id, rates[k], &mut used_new);
                    }
                });
            } else {
                // Sparse spine-crossing region: probe the shards per id.
                for (i, id) in flows.iter().enumerate() {
                    if let Some(af) = self.active.get_mut_any(id) {
                        apply(af, *id, rates[i], &mut used_new);
                    }
                }
            }
        }
        for &r in &res_union {
            let used = used_new[r];
            if used.to_bits() != self.resource_used[r].to_bits() {
                self.resource_used[r] = used;
                let cap = self.resource_capacity[r];
                let u = if cap > 0.0 {
                    (used / cap).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                self.resource_util[r].set(self.now, u);
            }
        }
        self.maybe_compact_completions();
    }

    /// Drops stale heap entries once they outnumber the live flows
    /// across all shards — the same lazy-compaction rule the event
    /// engine applies to its cancelled set.
    fn maybe_compact_completions(&mut self) {
        let total: usize = self.completions.iter().map(BinaryHeap::len).sum();
        if total <= 2 * self.active.len() + 64 {
            return;
        }
        for s in 0..self.completions.len() {
            let live: Vec<Reverse<CompletionEntry>> = self.completions[s]
                .drain()
                .filter(|Reverse(e)| {
                    self.active
                        .get_in(s as u32, &e.id)
                        .is_some_and(|af| af.epoch == e.epoch)
                })
                .collect();
            self.completions[s] = BinaryHeap::from(live);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::DeviceId;
    use picloud_simcore::units::{Bandwidth, Bytes};

    fn two_hosts() -> (Topology, DeviceId, DeviceId) {
        let topo = Topology::multi_root_tree(2, 1, 1);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        (topo, hosts[0], hosts[1])
    }

    fn sim(topo: Topology) -> FlowSimulator {
        FlowSimulator::new(topo, RoutingPolicy::SingleShortest, RateAllocator::MaxMin)
    }

    #[test]
    fn single_flow_gets_access_rate() {
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        s.inject(FlowSpec::new(a, b, Bytes::mib(1)), SimTime::ZERO)
            .unwrap();
        let end = s.run_to_completion();
        // Bottleneck is the 100 Mbit access link: 8 Mbit / 100 Mbit/s ≈ 84 ms.
        let expect = 8.0 * 1024.0 * 1024.0 / 100e6;
        assert!(
            (end.as_secs_f64() - expect).abs() < 0.001,
            "end {end} vs {expect}"
        );
        assert_eq!(s.completed().len(), 1);
    }

    #[test]
    fn two_flows_share_common_bottleneck() {
        // Both flows leave the same host: they share its 100 Mbit uplink.
        let topo = Topology::multi_root_tree(2, 2, 1);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        let mut s = sim(topo);
        s.inject(
            FlowSpec::new(hosts[0], hosts[2], Bytes::mib(1)),
            SimTime::ZERO,
        )
        .unwrap();
        s.inject(
            FlowSpec::new(hosts[0], hosts[3], Bytes::mib(1)),
            SimTime::ZERO,
        )
        .unwrap();
        let end = s.run_to_completion();
        let expect = 2.0 * 8.0 * 1024.0 * 1024.0 / 100e6; // serialised by sharing
        assert!(
            (end.as_secs_f64() - expect).abs() < 0.002,
            "end {end} vs {expect}"
        );
    }

    #[test]
    fn disjoint_flows_do_not_contend() {
        let topo = Topology::multi_root_tree(2, 2, 1);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        let mut s = sim(topo);
        // hosts[0] -> hosts[1] within rack 0; hosts[2] -> hosts[3] within rack 1.
        s.inject(
            FlowSpec::new(hosts[0], hosts[1], Bytes::mib(1)),
            SimTime::ZERO,
        )
        .unwrap();
        s.inject(
            FlowSpec::new(hosts[2], hosts[3], Bytes::mib(1)),
            SimTime::ZERO,
        )
        .unwrap();
        let end = s.run_to_completion();
        let expect = 8.0 * 1024.0 * 1024.0 / 100e6;
        assert!((end.as_secs_f64() - expect).abs() < 0.001);
    }

    #[test]
    fn opposite_directions_are_independent() {
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        s.inject(FlowSpec::new(a, b, Bytes::mib(1)), SimTime::ZERO)
            .unwrap();
        s.inject(FlowSpec::new(b, a, Bytes::mib(1)), SimTime::ZERO)
            .unwrap();
        let end = s.run_to_completion();
        // Full duplex: both finish as if alone.
        let expect = 8.0 * 1024.0 * 1024.0 / 100e6;
        assert!((end.as_secs_f64() - expect).abs() < 0.001, "end {end}");
    }

    #[test]
    fn max_min_redistributes_surplus_but_equal_share_does_not() {
        // Rack with 2 hosts; gig uplink shared by a cross-rack flow and an
        // in-rack flow. Equal-share under-uses; compare FCTs.
        let topo = Topology::multi_root_tree(2, 2, 1);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        let run = |alloc: RateAllocator| {
            let mut s = FlowSimulator::new(
                Topology::multi_root_tree(2, 2, 1),
                RoutingPolicy::SingleShortest,
                alloc,
            );
            // Three flows from the same source share its access link;
            // max-min and equal-share agree on symmetric demand, so build an
            // asymmetric case: two flows share a link that one of them
            // leaves early.
            s.inject(
                FlowSpec::new(hosts[0], hosts[2], Bytes::mib(8)),
                SimTime::ZERO,
            )
            .unwrap();
            s.inject(
                FlowSpec::new(hosts[1], hosts[2], Bytes::mib(8)),
                SimTime::ZERO,
            )
            .unwrap();
            s.run_to_completion().as_secs_f64()
        };
        let _ = topo;
        let mm = run(RateAllocator::MaxMin);
        let eq = run(RateAllocator::EqualShare);
        // Receiver access link (100 Mbit) is the shared bottleneck: 50 Mbit
        // each under both schemes here, but max-min must never be slower.
        assert!(mm <= eq + 1e-9, "max-min {mm} vs equal {eq}");
    }

    #[test]
    fn weighted_flows_share_proportionally() {
        // A weight-2 flow gets twice a weight-1 flow's share of the
        // contended access link: same size, so it finishes first, at the
        // 2/3-of-link rate exactly.
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        let heavy = s
            .inject(
                FlowSpec::new(a, b, Bytes::mib(8)).with_weight(2.0),
                SimTime::ZERO,
            )
            .unwrap();
        let light = s
            .inject(
                FlowSpec::new(a, b, Bytes::mib(8)).with_weight(1.0),
                SimTime::ZERO,
            )
            .unwrap();
        s.run_to_completion();
        let finish = |id| {
            s.completed()
                .iter()
                .find(|c| c.id == id)
                .expect("completed")
                .finished
        };
        assert!(finish(heavy) < finish(light));
        let t_heavy = finish(heavy).as_secs_f64();
        let expect = 8.0 * 8.0 * 1024.0 * 1024.0 / (100e6 * 2.0 / 3.0);
        assert!((t_heavy - expect).abs() < 0.01, "{t_heavy} vs {expect}");
    }

    #[test]
    fn deprioritised_migration_protects_the_tenant() {
        // The §III knob: the same migration at weight 0.25 slows the
        // tenant flow far less.
        let run = |migration_weight: f64| {
            let topo = Topology::multi_root_tree(2, 1, 1);
            let hosts: Vec<_> = topo.hosts().map(|h| h.id).collect();
            let (a, b) = (hosts[0], hosts[1]);
            let mut s =
                FlowSimulator::new(topo, RoutingPolicy::SingleShortest, RateAllocator::MaxMin);
            s.inject(
                FlowSpec::new(a, b, Bytes::mib(64))
                    .with_tag("migration")
                    .with_weight(migration_weight),
                SimTime::ZERO,
            )
            .unwrap();
            s.inject(
                FlowSpec::new(a, b, Bytes::mib(4)).with_tag("tenant"),
                SimTime::ZERO,
            )
            .unwrap();
            s.run_to_completion();
            s.completed()
                .iter()
                .find(|c| c.spec.tag == "tenant")
                .expect("tenant finished")
                .fct()
                .as_secs_f64()
        };
        let fair = run(1.0);
        let polite = run(0.25);
        assert!(
            polite < fair * 0.7,
            "deprioritised migration: tenant {polite:.3}s vs {fair:.3}s"
        );
    }

    #[test]
    fn zero_size_flow_completes_immediately() {
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        s.inject(FlowSpec::new(a, b, Bytes::ZERO), SimTime::from_secs(1))
            .unwrap();
        assert_eq!(s.completed().len(), 1);
        assert_eq!(s.active_count(), 0);
        assert!(s.completed()[0].finished >= SimTime::from_secs(1));
    }

    #[test]
    fn cancel_removes_flow_and_recomputes() {
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        let f1 = s
            .inject(FlowSpec::new(a, b, Bytes::mib(100)), SimTime::ZERO)
            .unwrap();
        let _f2 = s
            .inject(FlowSpec::new(a, b, Bytes::mib(1)), SimTime::ZERO)
            .unwrap();
        let cancelled = s.cancel(f1).expect("flow was active");
        assert!(cancelled.remaining_bits > 0.0);
        let end = s.run_to_completion();
        // f2 now runs alone at full access rate.
        let expect = 8.0 * 1024.0 * 1024.0 / 100e6;
        assert!((end.as_secs_f64() - expect).abs() < 0.001);
        assert_eq!(s.completed().len(), 1);
        assert!(s.cancel(f1).is_none(), "double cancel is None");
    }

    #[test]
    fn no_route_is_reported() {
        let mut topo = Topology::new("disc");
        let a = topo.add_device(crate::topology::DeviceKind::Host { rack: 0 }, "a");
        let b = topo.add_device(crate::topology::DeviceKind::Host { rack: 1 }, "b");
        let mut s = sim(topo);
        let err = s
            .inject(FlowSpec::new(a, b, Bytes::mib(1)), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, InjectError::NoRoute { .. }));
        assert!(err.to_string().contains("no route"));
    }

    #[test]
    fn utilisation_accounting() {
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        s.inject(FlowSpec::new(a, b, Bytes::mib(10)), SimTime::ZERO)
            .unwrap();
        // Mid-transfer, the access link is saturated.
        let access_link = s
            .topology()
            .links()
            .iter()
            .find(|l| l.capacity.as_bps() == 100_000_000)
            .unwrap()
            .id;
        assert!(s.link_utilisation(access_link) > 0.99);
        s.run_to_completion();
        let carried = s.link_bytes_carried(access_link);
        assert!(
            (carried - 10.0 * 1024.0 * 1024.0).abs() < 1024.0,
            "carried {carried}"
        );
        let busiest = s.busiest_links(3);
        assert_eq!(busiest.len(), 3);
        assert!(busiest[0].1 >= busiest[1].1);
    }

    #[test]
    fn staggered_arrivals_are_exact() {
        // Flow A alone for 0.5 s, then shares with B.
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        // 100 Mbit/s => 12.5 MB/s. A = 12.5 MB: alone it would take 1 s.
        let mb = Bytes::new(12_500_000 / 2); // 6.25 MB = 0.5s alone
        s.inject(FlowSpec::new(a, b, Bytes::new(12_500_000)), SimTime::ZERO)
            .unwrap();
        s.inject(FlowSpec::new(a, b, mb), secs(0.5)).unwrap();
        let end = s.run_to_completion();
        // A: 0.5s alone (6.25MB done), then shares 50/50. A has 6.25MB left
        // at 6.25MB/s => 1s more. B: 6.25MB at 6.25MB/s => also 1s. Both end
        // at t=1.5.
        assert!((end.as_secs_f64() - 1.5).abs() < 0.01, "end {end}");
        assert_eq!(s.completed().len(), 2);
    }

    #[test]
    fn batch_injection_equals_sequential() {
        // A same-instant burst through inject_batch must leave the exact
        // same state as one-by-one injection: ids, rates, utilisation and
        // final completions, bit for bit.
        let topo = Topology::multi_root_tree(2, 4, 2);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        let specs: Vec<FlowSpec> = (0..6)
            .map(|i| {
                FlowSpec::new(
                    hosts[i],
                    hosts[(i + 3) % hosts.len()],
                    Bytes::mib(1 + i as u64),
                )
            })
            .collect();
        let mut one = sim(Topology::multi_root_tree(2, 4, 2));
        for spec in specs.clone() {
            one.inject(spec, secs(0.25)).unwrap();
        }
        let mut batched = sim(Topology::multi_root_tree(2, 4, 2));
        let ids = batched.inject_batch(specs, secs(0.25)).unwrap();
        assert_eq!(ids.len(), 6);
        assert_eq!(one.active_rates(), batched.active_rates());
        for l in topo.links() {
            assert_eq!(
                one.direction_utilisation(l.id, true).to_bits(),
                batched.direction_utilisation(l.id, true).to_bits()
            );
        }
        one.run_to_completion();
        batched.run_to_completion();
        assert_eq!(one.completed(), batched.completed());
    }

    #[test]
    fn batch_is_atomic_on_routing_failure() {
        let mut topo = Topology::multi_root_tree(2, 1, 1);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        let island = topo.add_device(crate::topology::DeviceKind::Host { rack: 9 }, "island");
        let mut s = sim(topo);
        let specs = vec![
            FlowSpec::new(hosts[0], hosts[1], Bytes::mib(1)),
            FlowSpec::new(hosts[0], island, Bytes::mib(1)),
        ];
        let err = s.inject_batch(specs, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, InjectError::NoRoute { .. }));
        assert_eq!(s.active_count(), 0, "failed batch must inject nothing");
        // The next successful inject still gets id 0: no ids were burned.
        let id = s
            .inject(
                FlowSpec::new(hosts[0], hosts[1], Bytes::mib(1)),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(id, FlowId(0));
    }

    #[test]
    fn cancel_between_partial_advances_is_exact() {
        // Cancel midway through a shared transfer: the survivor speeds up
        // from the cancellation instant exactly.
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        // 100 Mbit/s = 12.5 MB/s. Each flow 12.5 MB: shared => 6.25 MB/s.
        let f1 = s
            .inject(FlowSpec::new(a, b, Bytes::new(12_500_000)), SimTime::ZERO)
            .unwrap();
        let _f2 = s
            .inject(FlowSpec::new(a, b, Bytes::new(12_500_000)), SimTime::ZERO)
            .unwrap();
        s.advance_to(secs(1.0));
        let gone = s.cancel(f1).expect("still active");
        // One second at half rate: 6.25 MB of 12.5 MB remain.
        assert!((gone.remaining_bits - 6.25e6 * 8.0).abs() < 1.0);
        let end = s.run_to_completion();
        // Survivor has 6.25 MB left and now runs alone at 12.5 MB/s: +0.5 s.
        assert!((end.as_secs_f64() - 1.5).abs() < 0.001, "end {end}");
        assert_eq!(s.completed().len(), 1);
    }

    #[test]
    fn reinjection_after_total_drain() {
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        s.inject(FlowSpec::new(a, b, Bytes::mib(1)), SimTime::ZERO)
            .unwrap();
        s.run_to_completion();
        let drained = s.drain_completed();
        assert_eq!(drained.len(), 1);
        assert_eq!(s.completed().len(), 0);
        assert_eq!(s.completed_total(), 1);
        // The fabric is idle and drained; a second generation of flows
        // must behave exactly like the first (index fully unhooked).
        let start = s.now();
        let id = s.inject(FlowSpec::new(a, b, Bytes::mib(1)), start).unwrap();
        assert_eq!(id, FlowId(1));
        let end = s.run_to_completion();
        let expect = 8.0 * 1024.0 * 1024.0 / 100e6;
        assert!(
            (end.duration_since(start).as_secs_f64() - expect).abs() < 0.001,
            "second generation FCT"
        );
        assert_eq!(s.completed().len(), 1);
        assert_eq!(s.completed_total(), 2);
    }

    #[test]
    fn weighted_flows_on_zero_capacity_link_are_starved() {
        let mut topo = Topology::new("dead-link");
        let a = topo.add_device(crate::topology::DeviceKind::Host { rack: 0 }, "a");
        let b = topo.add_device(crate::topology::DeviceKind::Host { rack: 0 }, "b");
        topo.add_link(a, b, Bandwidth::ZERO, SimDuration::from_nanos(100));
        let mut s = sim(topo);
        s.inject(
            FlowSpec::new(a, b, Bytes::mib(1)).with_weight(2.0),
            SimTime::ZERO,
        )
        .unwrap();
        s.inject(
            FlowSpec::new(a, b, Bytes::mib(1)).with_weight(0.5),
            SimTime::ZERO,
        )
        .unwrap();
        // Both flows are routed but starved: no completion instant exists,
        // time passes without progress, and cancel still unwinds cleanly.
        assert_eq!(s.next_completion_time(), None);
        s.advance_to(secs(5.0));
        assert_eq!(s.active_count(), 2);
        for (_, rate) in s.active_rates() {
            assert_eq!(rate, 0.0);
        }
        let gone = s.cancel(FlowId(0)).expect("still active");
        assert_eq!(gone.remaining_bits, 1024.0 * 1024.0 * 8.0);
        assert_eq!(s.active_count(), 1);
    }

    #[test]
    fn cross_allocator_runs_are_byte_identical() {
        // The same schedule replayed twice under each allocator must
        // produce identical state — rates, completions and utilisation —
        // down to the last bit (the determinism doctrine).
        let run = |alloc: RateAllocator| {
            let topo = Topology::multi_root_tree(2, 4, 2);
            let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
            let mut s = FlowSimulator::new(topo, RoutingPolicy::Ecmp { max_paths: 4 }, alloc);
            for i in 0..8u64 {
                let src = hosts[(i as usize) % hosts.len()];
                let dst = hosts[(i as usize * 5 + 2) % hosts.len()];
                if src != dst {
                    s.inject(
                        FlowSpec::new(src, dst, Bytes::kib(64 + 17 * i)),
                        secs(0.01 * i as f64),
                    )
                    .unwrap();
                }
            }
            s.cancel(FlowId(2));
            s.run_to_completion();
            format!("{:?} {:?}", s.completed(), s.active_rates())
        };
        assert_eq!(run(RateAllocator::MaxMin), run(RateAllocator::MaxMin));
        assert_eq!(
            run(RateAllocator::EqualShare),
            run(RateAllocator::EqualShare)
        );
    }

    #[test]
    fn incremental_matches_full_oracle_on_disjoint_components() {
        // Two rack-local flows never share a resource with a cross-rack
        // pair; the incremental solver must still agree with the oracle
        // at every step.
        let build = |mode: RecomputeMode| {
            let topo = Topology::multi_root_tree(2, 4, 2);
            let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
            let mut s = sim(topo);
            s.set_recompute_mode(mode);
            s.inject(
                FlowSpec::new(hosts[0], hosts[1], Bytes::mib(3)),
                SimTime::ZERO,
            )
            .unwrap();
            s.inject(
                FlowSpec::new(hosts[4], hosts[5], Bytes::mib(2)),
                SimTime::ZERO,
            )
            .unwrap();
            s.inject(FlowSpec::new(hosts[1], hosts[6], Bytes::mib(5)), secs(0.05))
                .unwrap();
            s.advance_to(secs(0.1));
            let mid = s.active_rates();
            s.run_to_completion();
            (mid, format!("{:?}", s.completed()))
        };
        let (inc_mid, inc_done) = build(RecomputeMode::Incremental);
        let (full_mid, full_done) = build(RecomputeMode::Full);
        assert_eq!(inc_mid, full_mid);
        assert_eq!(inc_done, full_done);
    }

    #[test]
    fn telemetry_counter_survives_drain() {
        // Regression: the completed-flows counter used to subtract the
        // drainable buffer length and underflowed after drain_completed().
        use picloud_simcore::telemetry::MetricsRegistry;
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        s.inject(FlowSpec::new(a, b, Bytes::ZERO), SimTime::ZERO)
            .unwrap();
        s.record_telemetry(&mut reg);
        s.drain_completed();
        s.inject(FlowSpec::new(a, b, Bytes::ZERO), SimTime::ZERO)
            .unwrap();
        s.record_telemetry(&mut reg);
        assert_eq!(reg.counter("network_completed_flows_total", &[]).value(), 2);
    }

    #[test]
    fn completion_heap_compacts_stale_entries() {
        // Repeated cancels re-rate the survivor over and over; the heap
        // must not grow without bound.
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        s.inject(FlowSpec::new(a, b, Bytes::mib(100)), SimTime::ZERO)
            .unwrap();
        for _ in 0..400 {
            let id = s
                .inject(FlowSpec::new(a, b, Bytes::mib(1)), s.now())
                .unwrap();
            s.cancel(id);
        }
        let heap_total: usize = s.completions.iter().map(BinaryHeap::len).sum();
        assert!(
            heap_total <= 2 * s.active.len() + 64,
            "heap grew to {heap_total} entries"
        );
        s.run_to_completion();
        assert_eq!(s.completed().len(), 1);
    }

    #[test]
    fn boundary_completions_are_harvested_exactly_once() {
        // Two equal-sized rack-local flows live in *different* partition
        // shards and complete at exactly the same instant — the partition
        // boundary epoch. Advancing precisely to that instant (and then
        // again to the same instant) must record each completion exactly
        // once: the harvest removes a flow from the active set before its
        // record is pushed, and advance_clock is a no-op on a zero-width
        // step, so a double count cannot happen.
        let topo = Topology::multi_root_tree(2, 2, 1);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        let mut s = sim(topo);
        assert_eq!(s.partition_map().partition_count(), 2);
        s.inject(
            FlowSpec::new(hosts[0], hosts[1], Bytes::mib(1)),
            SimTime::ZERO,
        )
        .unwrap();
        s.inject(
            FlowSpec::new(hosts[2], hosts[3], Bytes::mib(1)),
            SimTime::ZERO,
        )
        .unwrap();
        let boundary = s.next_completion_time().expect("two live flows");
        s.advance_to(boundary);
        assert_eq!(s.active_count(), 0);
        assert_eq!(s.completed().len(), 2);
        assert_eq!(s.completed_total(), 2);
        // Re-advancing to the very same boundary must change nothing.
        s.advance_to(boundary);
        assert_eq!(s.completed().len(), 2);
        assert_eq!(s.completed_total(), 2);
        let mut ids: Vec<FlowId> = s.completed().iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 2, "each flow completed exactly once");
    }

    #[test]
    fn stepping_exactly_on_every_completion_boundary_counts_each_flow_once() {
        // Walk the clock completion-by-completion, always stopping dead
        // on the predicted boundary instant (the worst case for a
        // harvest double count), across partitions and shared resources.
        let topo = Topology::multi_root_tree(2, 4, 2);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        let mut s = sim(topo);
        let n = 6u64;
        for i in 0..n {
            s.inject(
                FlowSpec::new(
                    hosts[(i as usize) % hosts.len()],
                    hosts[(i as usize * 3 + 1) % hosts.len()],
                    Bytes::kib(256 + 64 * i),
                ),
                SimTime::ZERO,
            )
            .unwrap();
        }
        while let Some(at) = s.next_completion_time() {
            let before = s.completed_total();
            s.advance_to(at);
            assert!(s.completed_total() > before, "boundary step made progress");
            s.advance_to(at); // zero-width re-advance at the boundary
        }
        assert_eq!(s.active_count(), 0);
        assert_eq!(s.completed_total(), n);
        let mut ids: Vec<FlowId> = s.completed().iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n as usize, "no flow was harvested twice");
    }

    #[test]
    fn worker_count_does_not_change_results() {
        // The same workload at 1, 2 and 8 workers must be bit-identical
        // (the pool only reorders scheduling, never arithmetic).
        let run = |workers: usize| {
            let topo = Topology::fat_tree(4);
            let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
            let mut s = FlowSimulator::new(
                topo,
                RoutingPolicy::Ecmp { max_paths: 4 },
                RateAllocator::MaxMin,
            )
            .with_workers(workers);
            // A burst big enough to clear PARALLEL_FLOWS_MIN, spread over
            // several pods so multiple regions solve concurrently.
            let specs: Vec<FlowSpec> = (0..96u64)
                .map(|i| {
                    let pod = (i % 4) as usize;
                    let base = pod * 4; // k=4: 4 hosts per pod
                    let src = hosts[base + (i as usize / 4) % 4];
                    let dst = hosts[base + (i as usize / 4 + 1 + (i as usize % 3)) % 4];
                    FlowSpec::new(src, dst, Bytes::kib(128 + 32 * (i % 7)))
                })
                .filter(|spec| spec.src != spec.dst)
                .collect();
            s.inject_batch(specs, SimTime::ZERO).unwrap();
            s.run_to_completion();
            format!("{:?} {:?}", s.completed(), s.partition_solves())
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn partition_solves_attribute_local_and_shared_regions() {
        let topo = Topology::fat_tree(4);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        let mut s = sim(topo);
        // Pod-local flow: solved in its pod's bucket.
        s.inject(
            FlowSpec::new(hosts[0], hosts[1], Bytes::mib(1)),
            SimTime::ZERO,
        )
        .unwrap();
        let shared = s.partition_map().shared_id() as usize;
        assert!(s.partition_solves()[0] > 0, "pod-0 region solved");
        assert_eq!(s.partition_solves()[shared], 0);
        // Cross-pod flow: its region crosses the spine → shared bucket.
        s.inject(
            FlowSpec::new(hosts[0], hosts[15], Bytes::mib(1)),
            SimTime::ZERO,
        )
        .unwrap();
        assert!(s.partition_solves()[shared] > 0, "spine region solved");
    }

    fn secs(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }
}
