//! Deterministic flow-level network simulation.
//!
//! [`FlowSimulator`] carries flows across a [`Topology`], allocating each
//! flow a rate from the capacities of the links it traverses. Links are
//! full-duplex: each direction of each link is an independent resource, as
//! on the real Ethernet fabric.
//!
//! Two allocators are provided (the ablation called out in DESIGN.md §4):
//!
//! * [`RateAllocator::MaxMin`] — progressive-filling water-fill, the
//!   standard fluid model of long-lived TCP sharing.
//! * [`RateAllocator::EqualShare`] — each resource is split evenly among
//!   its flows and a flow runs at the minimum share along its path. Not
//!   work-conserving; shows how much max–min's surplus redistribution
//!   matters.
//!
//! Time only advances through [`FlowSimulator::advance_to`] /
//! [`FlowSimulator::run_to_completion`]; between recomputation points every
//! rate is constant, so completions are computed exactly, not stepped.

use crate::flow::{CompletedFlow, Flow, FlowId, FlowSpec};
use crate::routing::{Router, RoutingPolicy};
use crate::topology::{LinkId, Topology};
use picloud_simcore::telemetry::MetricsRegistry;
use picloud_simcore::{SimDuration, SimTime, TimeWeightedGauge};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Bits below which a flow is considered finished (guards float error).
const EPSILON_BITS: f64 = 1e-6;

/// How link capacity is divided among contending flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RateAllocator {
    /// Weighted water-filling max–min fairness (work-conserving).
    #[default]
    MaxMin,
    /// Naive equal split per resource, minimum along the path (not
    /// work-conserving) — the ablation baseline.
    EqualShare,
}

/// Error returned when a flow cannot be injected.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectError {
    /// No path exists between the endpoints.
    NoRoute {
        /// The failed spec, returned to the caller.
        spec: FlowSpec,
    },
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::NoRoute { spec } => {
                write!(f, "no route from {} to {}", spec.src, spec.dst)
            }
        }
    }
}

impl std::error::Error for InjectError {}

/// One direction of one link — the simulator's unit of contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct ResourceId(usize);

/// A deterministic flow-level simulator over a topology.
///
/// # Example
///
/// ```
/// use picloud_network::flowsim::FlowSimulator;
/// use picloud_network::flow::FlowSpec;
/// use picloud_network::topology::Topology;
/// use picloud_simcore::units::Bytes;
/// use picloud_simcore::SimTime;
///
/// let topo = Topology::multi_root_tree(2, 2, 2);
/// let hosts: Vec<_> = topo.hosts().map(|h| h.id).collect();
/// let mut sim = FlowSimulator::new(topo, Default::default(), Default::default());
/// sim.inject(FlowSpec::new(hosts[0], hosts[2], Bytes::mib(10)), SimTime::ZERO)?;
/// let end = sim.run_to_completion();
/// assert_eq!(sim.completed().len(), 1);
/// assert!(end > SimTime::ZERO);
/// # Ok::<(), picloud_network::flowsim::InjectError>(())
/// ```
#[derive(Debug)]
pub struct FlowSimulator {
    topo: Topology,
    router: Router,
    allocator: RateAllocator,
    now: SimTime,
    active: BTreeMap<FlowId, ActiveFlow>,
    next_id: u64,
    completed: Vec<CompletedFlow>,
    /// Capacity per resource (2 per link: even = a→b, odd = b→a), bits/s.
    resource_capacity: Vec<f64>,
    /// Utilisation gauge per resource.
    resource_util: Vec<TimeWeightedGauge>,
    /// Total bits carried per resource.
    resource_bits: Vec<f64>,
}

#[derive(Debug, Clone)]
struct ActiveFlow {
    flow: Flow,
    resources: Vec<ResourceId>,
    prop_latency: SimDuration,
}

impl FlowSimulator {
    /// Creates a simulator over `topo` with the given routing policy and
    /// rate allocator.
    pub fn new(topo: Topology, policy: RoutingPolicy, allocator: RateAllocator) -> Self {
        let n_res = topo.links().len() * 2;
        let resource_capacity = topo
            .links()
            .iter()
            .flat_map(|l| {
                let c = l.capacity.as_bps() as f64;
                [c, c]
            })
            .collect();
        FlowSimulator {
            router: Router::new(policy),
            allocator,
            now: SimTime::ZERO,
            active: BTreeMap::new(),
            next_id: 0,
            completed: Vec::new(),
            resource_capacity,
            resource_util: (0..n_res)
                .map(|_| TimeWeightedGauge::new(SimTime::ZERO, 0.0))
                .collect(),
            resource_bits: vec![0.0; n_res],
            topo,
        }
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of in-flight flows.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Completed flows, in completion order.
    pub fn completed(&self) -> &[CompletedFlow] {
        &self.completed
    }

    /// Removes and returns the completed-flow records accumulated so far.
    pub fn drain_completed(&mut self) -> Vec<CompletedFlow> {
        std::mem::take(&mut self.completed)
    }

    /// Injects a flow at time `at` (must not precede the current time).
    ///
    /// Zero-sized flows complete immediately (after path latency).
    ///
    /// # Errors
    ///
    /// [`InjectError::NoRoute`] if the endpoints are disconnected.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn inject(&mut self, spec: FlowSpec, at: SimTime) -> Result<FlowId, InjectError> {
        assert!(
            at >= self.now,
            "flow injected in the past ({at} < {})",
            self.now
        );
        self.advance_to(at);
        let id = FlowId(self.next_id);
        let path = self
            .router
            .route(&self.topo, spec.src, spec.dst, id)
            .ok_or_else(|| InjectError::NoRoute { spec: spec.clone() })?;
        self.next_id += 1;
        let resources = self.path_resources(spec.src, &path);
        let prop_latency = path
            .iter()
            .map(|l| self.topo.link(*l).latency)
            .fold(SimDuration::ZERO, SimDuration::saturating_add);
        let size_bits = spec.size.as_u64() as f64 * 8.0;
        if size_bits <= EPSILON_BITS {
            self.completed.push(CompletedFlow {
                id,
                spec,
                started: at,
                finished: at.saturating_add(prop_latency),
            });
            return Ok(id);
        }
        let flow = Flow {
            id,
            spec,
            path,
            started: at,
            remaining_bits: size_bits,
            rate_bps: 0.0,
        };
        self.active.insert(
            id,
            ActiveFlow {
                flow,
                resources,
                prop_latency,
            },
        );
        self.recompute_rates();
        Ok(id)
    }

    /// Cancels an in-flight flow (a failed request, an aborted migration).
    /// Returns the partially-transferred flow if it was active.
    pub fn cancel(&mut self, id: FlowId) -> Option<Flow> {
        let removed = self.active.remove(&id).map(|af| af.flow);
        if removed.is_some() {
            self.recompute_rates();
        }
        removed
    }

    /// Earliest instant at which an active flow completes its transfer, or
    /// `None` if nothing is active (or everything is rate-starved).
    ///
    /// Completion delays are rounded *up* to the next nanosecond: rounding
    /// down could produce a zero-length step on a sub-nanosecond residual
    /// and stall the clock.
    pub fn next_completion_time(&self) -> Option<SimTime> {
        self.active
            .values()
            .filter(|af| af.flow.rate_bps > 0.0)
            .map(|af| {
                let secs = af.flow.remaining_bits / af.flow.rate_bps;
                let nanos = (secs * 1e9).ceil().max(1.0);
                self.now + SimDuration::from_nanos(nanos as u64)
            })
            .min()
    }

    /// Advances the clock to `deadline`, completing flows as they finish.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` precedes the current time.
    pub fn advance_to(&mut self, deadline: SimTime) {
        assert!(deadline >= self.now, "cannot advance backwards");
        while let Some(next) = self.next_completion_time() {
            if next > deadline {
                break;
            }
            self.advance_clock(next);
            self.harvest_completions();
            self.recompute_rates();
        }
        self.advance_clock(deadline);
    }

    /// Runs until every active flow has completed, returning the finish
    /// time. Flows that are rate-starved (zero-capacity path) are reported
    /// via panic — they indicate a topology configuration error.
    ///
    /// # Panics
    ///
    /// Panics if active flows exist but none can make progress.
    pub fn run_to_completion(&mut self) -> SimTime {
        while !self.active.is_empty() {
            let next = self
                .next_completion_time()
                // lint: allow(P1) reason=documented panic — rate-starved flows indicate a topology configuration error (see # Panics)
                .expect("active flows exist but none has positive rate");
            self.advance_clock(next);
            self.harvest_completions();
            self.recompute_rates();
        }
        self.now
    }

    /// Instantaneous utilisation of `link` in `[0, 1]` — the busier of its
    /// two directions.
    pub fn link_utilisation(&self, link: LinkId) -> f64 {
        let a = self.direction_utilisation(link, true);
        let b = self.direction_utilisation(link, false);
        a.max(b)
    }

    /// Instantaneous utilisation of one direction of `link`.
    pub fn direction_utilisation(&self, link: LinkId, forward: bool) -> f64 {
        let r = link.index() * 2 + usize::from(!forward);
        let cap = self.resource_capacity[r];
        if cap <= 0.0 {
            return 0.0;
        }
        let used: f64 = self
            .active
            .values()
            .filter(|af| af.resources.contains(&ResourceId(r)))
            .map(|af| af.flow.rate_bps)
            .sum();
        (used / cap).clamp(0.0, 1.0)
    }

    /// Time-weighted mean utilisation of `link` since simulation start
    /// (mean of the two directions).
    pub fn mean_link_utilisation(&self, link: LinkId) -> f64 {
        let a = self.resource_util[link.index() * 2].mean(self.now);
        let b = self.resource_util[link.index() * 2 + 1].mean(self.now);
        (a + b) / 2.0
    }

    /// Total bytes carried over `link` (both directions).
    pub fn link_bytes_carried(&self, link: LinkId) -> f64 {
        (self.resource_bits[link.index() * 2] + self.resource_bits[link.index() * 2 + 1]) / 8.0
    }

    /// Active flows currently routed over `link` (either direction) — the
    /// fluid model's stand-in for queue depth.
    pub fn link_active_flows(&self, link: LinkId) -> usize {
        let fwd = ResourceId(link.index() * 2);
        let rev = ResourceId(link.index() * 2 + 1);
        self.active
            .values()
            .filter(|af| af.resources.contains(&fwd) || af.resources.contains(&rev))
            .count()
    }

    /// Records the fabric's telemetry into `reg` at the simulator's
    /// current instant: per-link gauges
    /// `network_link_utilisation{link}` (instantaneous, busier
    /// direction), `network_link_mean_utilisation{link}` (time-weighted
    /// since start), `network_link_bytes_carried{link}` and
    /// `network_link_active_flows{link}` (queue-depth proxy), plus the
    /// cluster-wide `network_active_flows` gauge and
    /// `network_completed_flows_total` counter.
    pub fn record_telemetry(&self, reg: &mut MetricsRegistry) {
        let now = self.now;
        for l in self.topo.links() {
            let id = l.id.0.to_string();
            let labels = [("link", id.as_str())];
            reg.gauge("network_link_utilisation", &labels)
                .set(now, self.link_utilisation(l.id));
            reg.gauge("network_link_mean_utilisation", &labels)
                .set(now, self.mean_link_utilisation(l.id));
            reg.gauge("network_link_bytes_carried", &labels)
                .set(now, self.link_bytes_carried(l.id));
            reg.gauge("network_link_active_flows", &labels)
                .set(now, self.link_active_flows(l.id) as f64);
        }
        reg.gauge("network_active_flows", &[])
            .set(now, self.active_count() as f64);
        let done = reg.counter("network_completed_flows_total", &[]);
        done.add(self.completed().len() as u64 - done.value());
    }

    /// The `n` links with the highest time-weighted mean utilisation,
    /// descending — the congestion hot-spot report.
    pub fn busiest_links(&self, n: usize) -> Vec<(LinkId, f64)> {
        let mut v: Vec<(LinkId, f64)> = self
            .topo
            .links()
            .iter()
            .map(|l| (l.id, self.mean_link_utilisation(l.id)))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    // ------------------------------------------------------------------

    fn path_resources(&self, src: crate::topology::DeviceId, path: &[LinkId]) -> Vec<ResourceId> {
        let mut cur = src;
        let mut out = Vec::with_capacity(path.len());
        for &lid in path {
            let link = self.topo.link(lid);
            let forward = cur == link.a;
            out.push(ResourceId(lid.index() * 2 + usize::from(!forward)));
            cur = link.other_end(cur);
        }
        out
    }

    /// Moves the clock forward, draining `remaining_bits` at current rates
    /// and integrating utilisation gauges.
    fn advance_clock(&mut self, to: SimTime) {
        if to == self.now {
            return;
        }
        let dt = to.duration_since(self.now).as_secs_f64();
        for af in self.active.values_mut() {
            let moved = af.flow.rate_bps * dt;
            af.flow.remaining_bits = (af.flow.remaining_bits - moved).max(0.0);
            for r in &af.resources {
                self.resource_bits[r.0] += moved;
            }
        }
        self.now = to;
    }

    fn harvest_completions(&mut self) {
        let finished: Vec<FlowId> = self
            .active
            .iter()
            .filter(|(_, af)| af.flow.remaining_bits <= EPSILON_BITS)
            .map(|(id, _)| *id)
            .collect();
        for id in finished {
            let Some(af) = self.active.remove(&id) else {
                continue; // id came from self.active moments ago
            };
            self.completed.push(CompletedFlow {
                id,
                spec: af.flow.spec,
                started: af.flow.started,
                finished: self.now.saturating_add(af.prop_latency),
            });
        }
    }

    /// Recomputes every active flow's rate and updates utilisation gauges.
    fn recompute_rates(&mut self) {
        match self.allocator {
            RateAllocator::MaxMin => self.recompute_max_min(),
            RateAllocator::EqualShare => self.recompute_equal_share(),
        }
        // Refresh gauges with the new instantaneous utilisation.
        let mut used = vec![0.0f64; self.resource_capacity.len()];
        for af in self.active.values() {
            for r in &af.resources {
                used[r.0] += af.flow.rate_bps;
            }
        }
        for (r, gauge) in self.resource_util.iter_mut().enumerate() {
            let cap = self.resource_capacity[r];
            let u = if cap > 0.0 {
                (used[r] / cap).clamp(0.0, 1.0)
            } else {
                0.0
            };
            gauge.set(self.now, u);
        }
    }

    fn recompute_max_min(&mut self) {
        let n_res = self.resource_capacity.len();
        let mut cap_left = self.resource_capacity.clone();
        // Weighted max-min: each resource tracks the total weight of the
        // unfrozen flows crossing it; the fair share is per unit weight.
        let mut weight_on: Vec<f64> = vec![0.0; n_res];
        let ids: Vec<FlowId> = self.active.keys().copied().collect();
        for id in &ids {
            let w = self.active[id].flow.spec.weight;
            for r in &self.active[id].resources {
                weight_on[r.0] += w;
            }
        }
        let mut frozen: BTreeMap<FlowId, f64> = BTreeMap::new();
        let mut unfrozen: Vec<FlowId> = ids.clone();
        while !unfrozen.is_empty() {
            // Find the tightest resource: min cap_left / weight_on.
            let mut bottleneck: Option<(usize, f64)> = None;
            for r in 0..n_res {
                if weight_on[r] <= 0.0 {
                    continue;
                }
                let fair = cap_left[r] / weight_on[r];
                match bottleneck {
                    Some((_, best)) if best <= fair => {}
                    _ => bottleneck = Some((r, fair)),
                }
            }
            let Some((bott, fair)) = bottleneck else {
                // Remaining flows traverse no resources (can't happen for
                // non-empty paths) — give them infinite rate guard of 0.
                for id in unfrozen.drain(..) {
                    frozen.insert(id, 0.0);
                }
                break;
            };
            // Freeze every unfrozen flow crossing the bottleneck at its
            // weighted share of the bottleneck's fair rate.
            let mut still = Vec::with_capacity(unfrozen.len());
            for id in unfrozen.drain(..) {
                let crosses = self.active[&id].resources.iter().any(|r| r.0 == bott);
                if crosses {
                    let w = self.active[&id].flow.spec.weight;
                    let rate = fair * w;
                    frozen.insert(id, rate);
                    for r in &self.active[&id].resources {
                        cap_left[r.0] = (cap_left[r.0] - rate).max(0.0);
                        weight_on[r.0] -= w;
                    }
                } else {
                    still.push(id);
                }
            }
            unfrozen = still;
        }
        for (id, rate) in frozen {
            if let Some(af) = self.active.get_mut(&id) {
                af.flow.rate_bps = rate;
            }
        }
    }

    fn recompute_equal_share(&mut self) {
        let n_res = self.resource_capacity.len();
        let mut flows_on: Vec<u32> = vec![0; n_res];
        for af in self.active.values() {
            for r in &af.resources {
                flows_on[r.0] += 1;
            }
        }
        let shares: Vec<f64> = (0..n_res)
            .map(|r| {
                if flows_on[r] == 0 {
                    f64::INFINITY
                } else {
                    self.resource_capacity[r] / f64::from(flows_on[r])
                }
            })
            .collect();
        for af in self.active.values_mut() {
            af.flow.rate_bps = af
                .resources
                .iter()
                .map(|r| shares[r.0])
                .fold(f64::INFINITY, f64::min);
            if !af.flow.rate_bps.is_finite() {
                af.flow.rate_bps = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::DeviceId;
    use picloud_simcore::units::Bytes;

    fn two_hosts() -> (Topology, DeviceId, DeviceId) {
        let topo = Topology::multi_root_tree(2, 1, 1);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        (topo, hosts[0], hosts[1])
    }

    fn sim(topo: Topology) -> FlowSimulator {
        FlowSimulator::new(topo, RoutingPolicy::SingleShortest, RateAllocator::MaxMin)
    }

    #[test]
    fn single_flow_gets_access_rate() {
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        s.inject(FlowSpec::new(a, b, Bytes::mib(1)), SimTime::ZERO)
            .unwrap();
        let end = s.run_to_completion();
        // Bottleneck is the 100 Mbit access link: 8 Mbit / 100 Mbit/s ≈ 84 ms.
        let expect = 8.0 * 1024.0 * 1024.0 / 100e6;
        assert!(
            (end.as_secs_f64() - expect).abs() < 0.001,
            "end {end} vs {expect}"
        );
        assert_eq!(s.completed().len(), 1);
    }

    #[test]
    fn two_flows_share_common_bottleneck() {
        // Both flows leave the same host: they share its 100 Mbit uplink.
        let topo = Topology::multi_root_tree(2, 2, 1);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        let mut s = sim(topo);
        s.inject(
            FlowSpec::new(hosts[0], hosts[2], Bytes::mib(1)),
            SimTime::ZERO,
        )
        .unwrap();
        s.inject(
            FlowSpec::new(hosts[0], hosts[3], Bytes::mib(1)),
            SimTime::ZERO,
        )
        .unwrap();
        let end = s.run_to_completion();
        let expect = 2.0 * 8.0 * 1024.0 * 1024.0 / 100e6; // serialised by sharing
        assert!(
            (end.as_secs_f64() - expect).abs() < 0.002,
            "end {end} vs {expect}"
        );
    }

    #[test]
    fn disjoint_flows_do_not_contend() {
        let topo = Topology::multi_root_tree(2, 2, 1);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        let mut s = sim(topo);
        // hosts[0] -> hosts[1] within rack 0; hosts[2] -> hosts[3] within rack 1.
        s.inject(
            FlowSpec::new(hosts[0], hosts[1], Bytes::mib(1)),
            SimTime::ZERO,
        )
        .unwrap();
        s.inject(
            FlowSpec::new(hosts[2], hosts[3], Bytes::mib(1)),
            SimTime::ZERO,
        )
        .unwrap();
        let end = s.run_to_completion();
        let expect = 8.0 * 1024.0 * 1024.0 / 100e6;
        assert!((end.as_secs_f64() - expect).abs() < 0.001);
    }

    #[test]
    fn opposite_directions_are_independent() {
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        s.inject(FlowSpec::new(a, b, Bytes::mib(1)), SimTime::ZERO)
            .unwrap();
        s.inject(FlowSpec::new(b, a, Bytes::mib(1)), SimTime::ZERO)
            .unwrap();
        let end = s.run_to_completion();
        // Full duplex: both finish as if alone.
        let expect = 8.0 * 1024.0 * 1024.0 / 100e6;
        assert!((end.as_secs_f64() - expect).abs() < 0.001, "end {end}");
    }

    #[test]
    fn max_min_redistributes_surplus_but_equal_share_does_not() {
        // Rack with 2 hosts; gig uplink shared by a cross-rack flow and an
        // in-rack flow. Equal-share under-uses; compare FCTs.
        let topo = Topology::multi_root_tree(2, 2, 1);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        let run = |alloc: RateAllocator| {
            let mut s = FlowSimulator::new(
                Topology::multi_root_tree(2, 2, 1),
                RoutingPolicy::SingleShortest,
                alloc,
            );
            // Three flows from the same source share its access link;
            // max-min and equal-share agree on symmetric demand, so build an
            // asymmetric case: two flows share a link that one of them
            // leaves early.
            s.inject(
                FlowSpec::new(hosts[0], hosts[2], Bytes::mib(8)),
                SimTime::ZERO,
            )
            .unwrap();
            s.inject(
                FlowSpec::new(hosts[1], hosts[2], Bytes::mib(8)),
                SimTime::ZERO,
            )
            .unwrap();
            s.run_to_completion().as_secs_f64()
        };
        let _ = topo;
        let mm = run(RateAllocator::MaxMin);
        let eq = run(RateAllocator::EqualShare);
        // Receiver access link (100 Mbit) is the shared bottleneck: 50 Mbit
        // each under both schemes here, but max-min must never be slower.
        assert!(mm <= eq + 1e-9, "max-min {mm} vs equal {eq}");
    }

    #[test]
    fn weighted_flows_share_proportionally() {
        // A weight-2 flow gets twice a weight-1 flow's share of the
        // contended access link: same size, so it finishes first, at the
        // 2/3-of-link rate exactly.
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        let heavy = s
            .inject(
                FlowSpec::new(a, b, Bytes::mib(8)).with_weight(2.0),
                SimTime::ZERO,
            )
            .unwrap();
        let light = s
            .inject(
                FlowSpec::new(a, b, Bytes::mib(8)).with_weight(1.0),
                SimTime::ZERO,
            )
            .unwrap();
        s.run_to_completion();
        let finish = |id| {
            s.completed()
                .iter()
                .find(|c| c.id == id)
                .expect("completed")
                .finished
        };
        assert!(finish(heavy) < finish(light));
        let t_heavy = finish(heavy).as_secs_f64();
        let expect = 8.0 * 8.0 * 1024.0 * 1024.0 / (100e6 * 2.0 / 3.0);
        assert!((t_heavy - expect).abs() < 0.01, "{t_heavy} vs {expect}");
    }

    #[test]
    fn deprioritised_migration_protects_the_tenant() {
        // The §III knob: the same migration at weight 0.25 slows the
        // tenant flow far less.
        let run = |migration_weight: f64| {
            let topo = Topology::multi_root_tree(2, 1, 1);
            let hosts: Vec<_> = topo.hosts().map(|h| h.id).collect();
            let (a, b) = (hosts[0], hosts[1]);
            let mut s =
                FlowSimulator::new(topo, RoutingPolicy::SingleShortest, RateAllocator::MaxMin);
            s.inject(
                FlowSpec::new(a, b, Bytes::mib(64))
                    .with_tag("migration")
                    .with_weight(migration_weight),
                SimTime::ZERO,
            )
            .unwrap();
            s.inject(
                FlowSpec::new(a, b, Bytes::mib(4)).with_tag("tenant"),
                SimTime::ZERO,
            )
            .unwrap();
            s.run_to_completion();
            s.completed()
                .iter()
                .find(|c| c.spec.tag == "tenant")
                .expect("tenant finished")
                .fct()
                .as_secs_f64()
        };
        let fair = run(1.0);
        let polite = run(0.25);
        assert!(
            polite < fair * 0.7,
            "deprioritised migration: tenant {polite:.3}s vs {fair:.3}s"
        );
    }

    #[test]
    fn zero_size_flow_completes_immediately() {
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        s.inject(FlowSpec::new(a, b, Bytes::ZERO), SimTime::from_secs(1))
            .unwrap();
        assert_eq!(s.completed().len(), 1);
        assert_eq!(s.active_count(), 0);
        assert!(s.completed()[0].finished >= SimTime::from_secs(1));
    }

    #[test]
    fn cancel_removes_flow_and_recomputes() {
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        let f1 = s
            .inject(FlowSpec::new(a, b, Bytes::mib(100)), SimTime::ZERO)
            .unwrap();
        let _f2 = s
            .inject(FlowSpec::new(a, b, Bytes::mib(1)), SimTime::ZERO)
            .unwrap();
        let cancelled = s.cancel(f1).expect("flow was active");
        assert!(cancelled.remaining_bits > 0.0);
        let end = s.run_to_completion();
        // f2 now runs alone at full access rate.
        let expect = 8.0 * 1024.0 * 1024.0 / 100e6;
        assert!((end.as_secs_f64() - expect).abs() < 0.001);
        assert_eq!(s.completed().len(), 1);
        assert!(s.cancel(f1).is_none(), "double cancel is None");
    }

    #[test]
    fn no_route_is_reported() {
        let mut topo = Topology::new("disc");
        let a = topo.add_device(crate::topology::DeviceKind::Host { rack: 0 }, "a");
        let b = topo.add_device(crate::topology::DeviceKind::Host { rack: 1 }, "b");
        let mut s = sim(topo);
        let err = s
            .inject(FlowSpec::new(a, b, Bytes::mib(1)), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, InjectError::NoRoute { .. }));
        assert!(err.to_string().contains("no route"));
    }

    #[test]
    fn utilisation_accounting() {
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        s.inject(FlowSpec::new(a, b, Bytes::mib(10)), SimTime::ZERO)
            .unwrap();
        // Mid-transfer, the access link is saturated.
        let access_link = s
            .topology()
            .links()
            .iter()
            .find(|l| l.capacity.as_bps() == 100_000_000)
            .unwrap()
            .id;
        assert!(s.link_utilisation(access_link) > 0.99);
        s.run_to_completion();
        let carried = s.link_bytes_carried(access_link);
        assert!(
            (carried - 10.0 * 1024.0 * 1024.0).abs() < 1024.0,
            "carried {carried}"
        );
        let busiest = s.busiest_links(3);
        assert_eq!(busiest.len(), 3);
        assert!(busiest[0].1 >= busiest[1].1);
    }

    #[test]
    fn staggered_arrivals_are_exact() {
        // Flow A alone for 0.5 s, then shares with B.
        let (topo, a, b) = two_hosts();
        let mut s = sim(topo);
        // 100 Mbit/s => 12.5 MB/s. A = 12.5 MB: alone it would take 1 s.
        let mb = Bytes::new(12_500_000 / 2); // 6.25 MB = 0.5s alone
        s.inject(FlowSpec::new(a, b, Bytes::new(12_500_000)), SimTime::ZERO)
            .unwrap();
        s.inject(FlowSpec::new(a, b, mb), secs(0.5)).unwrap();
        let end = s.run_to_completion();
        // A: 0.5s alone (6.25MB done), then shares 50/50. A has 6.25MB left
        // at 6.25MB/s => 1s more. B: 6.25MB at 6.25MB/s => also 1s. Both end
        // at t=1.5.
        assert!((end.as_secs_f64() - 1.5).abs() < 0.01, "end {end}");
        assert_eq!(s.completed().len(), 2);
    }

    fn secs(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }
}
