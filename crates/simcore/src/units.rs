//! Physical and economic quantities shared by the hardware and network
//! models.
//!
//! Newtypes keep megabytes from being added to megabits and dollars from
//! being added to watts — exactly the class of bug a cost/power comparison
//! like the paper's Table I invites.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A quantity of data in bytes.
///
/// # Example
///
/// ```
/// use picloud_simcore::units::Bytes;
///
/// let sd_card = Bytes::gib(16);
/// assert_eq!(sd_card.as_u64(), 16 * 1024 * 1024 * 1024);
/// assert_eq!(Bytes::mib(256) - Bytes::mib(90), Bytes::mib(166));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a quantity from raw bytes.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// `n` kibibytes.
    pub const fn kib(n: u64) -> Self {
        Bytes(n * 1024)
    }

    /// `n` mebibytes.
    pub const fn mib(n: u64) -> Self {
        Bytes(n * 1024 * 1024)
    }

    /// `n` gibibytes.
    pub const fn gib(n: u64) -> Self {
        Bytes(n * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// This quantity in (fractional) mebibytes.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Whether this is zero bytes.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction; `None` if `rhs` exceeds `self`.
    pub fn checked_sub(self, rhs: Bytes) -> Option<Bytes> {
        self.0.checked_sub(rhs.0).map(Bytes)
    }

    /// Scales by a float factor (clamping negatives to zero); useful for
    /// proportional shares.
    pub fn mul_f64(self, factor: f64) -> Bytes {
        if factor <= 0.0 || !factor.is_finite() {
            return Bytes::ZERO;
        }
        Bytes((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const GIB: u64 = 1024 * 1024 * 1024;
        const MIB: u64 = 1024 * 1024;
        const KIB: u64 = 1024;
        if self.0 >= GIB {
            write!(f, "{:.2}GiB", self.0 as f64 / GIB as f64)
        } else if self.0 >= MIB {
            write!(f, "{:.2}MiB", self.0 as f64 / MIB as f64)
        } else if self.0 >= KIB {
            write!(f, "{:.2}KiB", self.0 as f64 / KIB as f64)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        // lint: allow(P1) reason=checked arithmetic: panic is the documented overflow diagnostic; operator impls cannot return Result
        Bytes(self.0.checked_add(rhs.0).expect("byte count overflowed"))
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(
            self.0
                .checked_sub(rhs.0)
                // lint: allow(P1) reason=checked arithmetic: panic is the documented overflow diagnostic; operator impls cannot return Result
                .expect("byte count underflowed below zero"),
        )
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        // lint: allow(P1) reason=checked arithmetic: panic is the documented overflow diagnostic; operator impls cannot return Result
        Bytes(self.0.checked_mul(rhs).expect("byte count overflowed"))
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

/// Link or NIC bandwidth in bits per second.
///
/// # Example
///
/// ```
/// use picloud_simcore::units::{Bandwidth, Bytes};
///
/// let fast_ethernet = Bandwidth::mbps(100);
/// let t = fast_ethernet.transfer_time(Bytes::mib(1));
/// // 8 Mbit over 100 Mbit/s ≈ 83.9 ms
/// assert!((t.as_secs_f64() - 0.0839).abs() < 0.001);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Creates a bandwidth from raw bits per second.
    pub const fn bps(bits_per_sec: u64) -> Self {
        Bandwidth(bits_per_sec)
    }

    /// `n` megabits per second (10^6, as link rates are quoted).
    pub const fn mbps(n: u64) -> Self {
        Bandwidth(n * 1_000_000)
    }

    /// `n` gigabits per second.
    pub const fn gbps(n: u64) -> Self {
        Bandwidth(n * 1_000_000_000)
    }

    /// Raw bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// This bandwidth in (fractional) megabits per second.
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Time to move `data` at this rate.
    ///
    /// Returns [`SimDuration::MAX`] for zero bandwidth (the transfer never
    /// completes).
    pub fn transfer_time(self, data: Bytes) -> SimDuration {
        if self.0 == 0 {
            return SimDuration::MAX;
        }
        let bits = data.as_u64() as f64 * 8.0;
        SimDuration::from_secs_f64(bits / self.0 as f64)
    }

    /// Data moved in `elapsed` at this rate.
    pub fn data_in(self, elapsed: SimDuration) -> Bytes {
        Bytes::new((self.0 as f64 * elapsed.as_secs_f64() / 8.0).floor() as u64)
    }

    /// Scales by a float factor, clamping negatives to zero.
    pub fn mul_f64(self, factor: f64) -> Bandwidth {
        if factor <= 0.0 || !factor.is_finite() {
            return Bandwidth::ZERO;
        }
        Bandwidth((self.0 as f64 * factor).round() as u64)
    }

    /// Divides evenly among `n` shares (integer division).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn div_shares(self, n: u64) -> Bandwidth {
        assert!(n > 0, "cannot divide bandwidth among zero shares");
        Bandwidth(self.0 / n)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}Gbit/s", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2}Mbit/s", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}bit/s", self.0)
        }
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        // lint: allow(P1) reason=checked arithmetic: panic is the documented overflow diagnostic; operator impls cannot return Result
        Bandwidth(self.0.checked_add(rhs.0).expect("bandwidth overflowed"))
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        *self = *self + rhs;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(
            self.0
                .checked_sub(rhs.0)
                // lint: allow(P1) reason=checked arithmetic: panic is the documented overflow diagnostic; operator impls cannot return Result
                .expect("bandwidth underflowed below zero"),
        )
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, Add::add)
    }
}

/// Electrical power in watts.
///
/// # Example
///
/// ```
/// use picloud_simcore::units::Power;
/// use picloud_simcore::SimDuration;
///
/// let pi = Power::watts(3.5);
/// let cluster = pi * 56.0;
/// assert!((cluster.as_watts() - 196.0).abs() < 1e-9);
/// let day = cluster.energy_over(SimDuration::from_secs(24 * 3600));
/// assert!((day.as_kwh() - 4.704).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Power(f64);

impl Power {
    /// Zero watts.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from watts.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn watts(w: f64) -> Self {
        assert!(
            w.is_finite() && w >= 0.0,
            "power must be finite and non-negative"
        );
        Power(w)
    }

    /// Raw watts.
    pub fn as_watts(self) -> f64 {
        self.0
    }

    /// Energy dissipated over `elapsed`.
    pub fn energy_over(self, elapsed: SimDuration) -> Energy {
        Energy(self.0 * elapsed.as_secs_f64())
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}W", self.0)
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power::watts(self.0 * rhs)
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, Add::add)
    }
}

/// Energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Zero joules.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from joules.
    pub fn joules(j: f64) -> Self {
        assert!(
            j.is_finite() && j >= 0.0,
            "energy must be finite and non-negative"
        );
        Energy(j)
    }

    /// Raw joules.
    pub fn as_joules(self) -> f64 {
        self.0
    }

    /// This energy in kilowatt-hours.
    pub fn as_kwh(self) -> f64 {
        self.0 / 3_600_000.0
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 3_600_000.0 {
            write!(f, "{:.3}kWh", self.as_kwh())
        } else {
            write!(f, "{:.1}J", self.0)
        }
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

/// Money in US cents, exact.
///
/// # Example
///
/// ```
/// use picloud_simcore::units::Money;
///
/// let pi = Money::dollars(35);
/// let picloud = pi * 56;
/// assert_eq!(picloud, Money::dollars(1_960));
/// assert_eq!(picloud.to_string(), "$1960.00");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Money(i64);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0);

    /// Creates money from whole cents.
    pub const fn cents(cents: i64) -> Self {
        Money(cents)
    }

    /// Creates money from whole dollars.
    pub const fn dollars(d: i64) -> Self {
        Money(d * 100)
    }

    /// Raw cents.
    pub const fn as_cents(self) -> i64 {
        self.0
    }

    /// This amount in (fractional) dollars.
    pub fn as_dollars_f64(self) -> f64 {
        self.0 as f64 / 100.0
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(f, "{sign}${}.{:02}", abs / 100, abs % 100)
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        // lint: allow(P1) reason=checked arithmetic: panic is the documented overflow diagnostic; operator impls cannot return Result
        Money(self.0.checked_add(rhs.0).expect("money overflowed"))
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        *self = *self + rhs;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        // lint: allow(P1) reason=checked arithmetic: panic is the documented overflow diagnostic; operator impls cannot return Result
        Money(self.0.checked_sub(rhs.0).expect("money overflowed"))
    }
}

impl Mul<i64> for Money {
    type Output = Money;
    fn mul(self, rhs: i64) -> Money {
        // lint: allow(P1) reason=checked arithmetic: panic is the documented overflow diagnostic; operator impls cannot return Result
        Money(self.0.checked_mul(rhs).expect("money overflowed"))
    }
}

impl Div<i64> for Money {
    type Output = Money;
    fn div(self, rhs: i64) -> Money {
        Money(self.0 / rhs)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, Add::add)
    }
}

/// CPU clock frequency in hertz.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Frequency(u64);

impl Frequency {
    /// Creates a frequency from raw hertz.
    pub const fn hz(hz: u64) -> Self {
        Frequency(hz)
    }

    /// `n` megahertz.
    pub const fn mhz(n: u64) -> Self {
        Frequency(n * 1_000_000)
    }

    /// `n` gigahertz.
    pub const fn ghz(n: u64) -> Self {
        Frequency(n * 1_000_000_000)
    }

    /// Raw hertz.
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// Time to retire `cycles` at this clock (single-issue model).
    ///
    /// Returns [`SimDuration::MAX`] at zero frequency.
    pub fn time_for(self, cycles: Cycles) -> SimDuration {
        if self.0 == 0 {
            return SimDuration::MAX;
        }
        SimDuration::from_secs_f64(cycles.as_u64() as f64 / self.0 as f64)
    }

    /// Cycles retired in `elapsed` at this clock.
    pub fn cycles_in(self, elapsed: SimDuration) -> Cycles {
        Cycles::new((self.0 as f64 * elapsed.as_secs_f64()).floor() as u64)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}GHz", self.0 as f64 / 1e9)
        } else {
            write!(f, "{:.0}MHz", self.0 as f64 / 1e6)
        }
    }
}

/// An abstract amount of CPU work, measured in clock cycles of the executing
/// core. The same work takes longer on a slower clock — this is the knob the
/// scale model uses to contrast a 700 MHz Pi with a ~3 GHz x86 server.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a work amount from raw cycles.
    pub const fn new(cycles: u64) -> Self {
        Cycles(cycles)
    }

    /// `n` million cycles.
    pub const fn mega(n: u64) -> Self {
        Cycles(n * 1_000_000)
    }

    /// Raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Whether this is zero work.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.1}Mcyc", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}cyc", self.0)
        }
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        // lint: allow(P1) reason=checked arithmetic: panic is the documented overflow diagnostic; operator impls cannot return Result
        Cycles(self.0.checked_add(rhs.0).expect("cycle count overflowed"))
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        *self = *self + rhs;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_constructors_and_display() {
        assert_eq!(Bytes::kib(1).as_u64(), 1024);
        assert_eq!(Bytes::mib(1).as_u64(), 1024 * 1024);
        assert_eq!(Bytes::gib(1).as_u64(), 1024 * 1024 * 1024);
        assert_eq!(Bytes::new(12).to_string(), "12B");
        assert_eq!(Bytes::mib(256).to_string(), "256.00MiB");
    }

    #[test]
    fn bytes_arith_and_saturation() {
        assert_eq!(Bytes::mib(3) - Bytes::mib(1), Bytes::mib(2));
        assert_eq!(Bytes::mib(1).saturating_sub(Bytes::mib(2)), Bytes::ZERO);
        assert_eq!(Bytes::mib(1).checked_sub(Bytes::mib(2)), None);
        assert_eq!(Bytes::mib(2).mul_f64(0.5), Bytes::mib(1));
        assert_eq!(Bytes::mib(2).mul_f64(-1.0), Bytes::ZERO);
        let total: Bytes = [Bytes::kib(1), Bytes::kib(3)].into_iter().sum();
        assert_eq!(total, Bytes::kib(4));
    }

    #[test]
    fn bandwidth_transfer_roundtrip() {
        let bw = Bandwidth::mbps(100);
        let data = Bytes::mib(10);
        let t = bw.transfer_time(data);
        let back = bw.data_in(t);
        // Round-trip loses at most a byte to rounding.
        assert!(data.as_u64().abs_diff(back.as_u64()) <= 1);
    }

    #[test]
    fn zero_bandwidth_never_completes() {
        assert_eq!(
            Bandwidth::ZERO.transfer_time(Bytes::new(1)),
            SimDuration::MAX
        );
    }

    #[test]
    fn bandwidth_shares() {
        assert_eq!(Bandwidth::mbps(100).div_shares(4), Bandwidth::mbps(25));
        assert_eq!(Bandwidth::mbps(100).mul_f64(0.5), Bandwidth::mbps(50));
    }

    #[test]
    fn power_and_energy_model_table1() {
        // Table I nameplate figures.
        let x86 = Power::watts(180.0) * 56.0;
        let pis = Power::watts(3.5) * 56.0;
        assert!((x86.as_watts() - 10_080.0).abs() < 1e-9);
        assert!((pis.as_watts() - 196.0).abs() < 1e-9);
        let hour = pis.energy_over(SimDuration::from_secs(3600));
        assert!((hour.as_kwh() - 0.196).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_rejected() {
        let _ = Power::watts(-1.0);
    }

    #[test]
    fn money_formatting_and_math() {
        assert_eq!(Money::dollars(2000) * 56, Money::dollars(112_000));
        assert_eq!(Money::cents(-150).to_string(), "-$1.50");
        assert_eq!(Money::dollars(7).as_dollars_f64(), 7.0);
        assert_eq!(Money::dollars(10) / 4, Money::cents(250));
    }

    #[test]
    fn frequency_cycle_timing() {
        let pi_clock = Frequency::mhz(700);
        let t = pi_clock.time_for(Cycles::mega(700));
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        assert_eq!(
            pi_clock.cycles_in(SimDuration::from_secs(2)),
            Cycles::mega(1400)
        );
        assert_eq!(Frequency::hz(0).time_for(Cycles::new(1)), SimDuration::MAX);
    }

    #[test]
    fn display_units() {
        assert_eq!(Bandwidth::mbps(100).to_string(), "100.00Mbit/s");
        assert_eq!(Bandwidth::gbps(1).to_string(), "1.00Gbit/s");
        assert_eq!(Frequency::mhz(700).to_string(), "700MHz");
        assert_eq!(Frequency::ghz(3).to_string(), "3.00GHz");
        assert_eq!(Power::watts(3.5).to_string(), "3.5W");
        assert_eq!(Cycles::mega(2).to_string(), "2.0Mcyc");
    }
}
