//! Virtual time for the simulation: [`SimTime`] instants and
//! [`SimDuration`] spans, both with nanosecond resolution.
//!
//! Wall-clock time never appears inside a simulation; everything is driven
//! by the engine's virtual clock, which makes runs reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation's virtual clock, in nanoseconds since the
/// start of the run.
///
/// # Example
///
/// ```
/// use picloud_simcore::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_nanos(), 2_000_000_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (lossy above ~2^53 ns).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulation time never runs
    /// backwards, so this indicates a logic error in the caller.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since called with a later instant: {earlier} > {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The span from `earlier` to `self`, or [`SimDuration::ZERO`] if
    /// `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`] instead of wrapping.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                // lint: allow(P1) reason=checked arithmetic: panic is the documented overflow diagnostic; operator impls cannot return Result
                .expect("simulation time overflowed u64 nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                // lint: allow(P1) reason=checked arithmetic: panic is the documented overflow diagnostic; operator impls cannot return Result
                .expect("simulation time underflowed below zero"),
        )
    }
}

/// A span of virtual time, in nanoseconds.
///
/// # Example
///
/// ```
/// use picloud_simcore::SimDuration;
///
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// assert_eq!(d * 2, SimDuration::from_secs(3));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// nanosecond and clamping negatives to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos.round() as u64)
        }
    }

    /// Raw nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this span is zero-length.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Adds two spans, saturating at [`SimDuration::MAX`].
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Subtracts a span, saturating at [`SimDuration::ZERO`].
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a float factor, clamping negatives to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                // lint: allow(P1) reason=checked arithmetic: panic is the documented overflow diagnostic; operator impls cannot return Result
                .expect("duration overflowed u64 nanoseconds"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                // lint: allow(P1) reason=checked arithmetic: panic is the documented overflow diagnostic; operator impls cannot return Result
                .expect("duration underflowed below zero"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                // lint: allow(P1) reason=checked arithmetic: panic is the documented overflow diagnostic; operator impls cannot return Result
                .expect("duration overflowed u64 nanoseconds"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(3);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).duration_since(t), d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn from_secs_f64_clamps_and_rounds() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn saturating_operations_do_not_wrap() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimDuration::MAX
        );
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_when_reversed() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_secs(1));
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(1));
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
    }
}
