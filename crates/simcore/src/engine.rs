//! The discrete-event engine.
//!
//! [`Engine<W>`] owns a user-supplied world state `W` and a priority queue of
//! events. Each event is a boxed `FnOnce(&mut W, &mut EventContext<W>)`;
//! firing an event may mutate the world and schedule or cancel further
//! events through the [`EventContext`].
//!
//! # Determinism
//!
//! Events fire in strictly increasing `(time, sequence)` order, where the
//! sequence number is assigned at scheduling time. Two events scheduled for
//! the same instant therefore fire in the order they were scheduled,
//! independent of hash-map iteration order or allocator behaviour. This is
//! the property that makes whole-cloud experiments bit-reproducible.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};
use std::fmt;

/// Identifies a scheduled event so it can be cancelled before it fires.
///
/// Ids are unique for the lifetime of an [`Engine`] and are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}", self.0)
    }
}

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut EventContext<W>)>;

struct ScheduledEvent<W> {
    at: SimTime,
    seq: u64,
    action: EventFn<W>,
}

// BinaryHeap is a max-heap; reverse the ordering to pop the earliest event.
impl<W> PartialEq for ScheduledEvent<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for ScheduledEvent<W> {}
impl<W> PartialOrd for ScheduledEvent<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for ScheduledEvent<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Handle passed to every firing event, through which the event can read the
/// clock and schedule or cancel follow-up events.
///
/// Scheduling through the context (rather than the engine) is what allows an
/// event to enqueue work while the engine is mid-dispatch.
pub struct EventContext<W> {
    now: SimTime,
    next_seq: u64,
    pending: Vec<ScheduledEvent<W>>,
    cancelled: Vec<EventId>,
    stop_requested: bool,
}

impl<W> fmt::Debug for EventContext<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventContext")
            .field("now", &self.now)
            .field("pending", &self.pending.len())
            .field("stop_requested", &self.stop_requested)
            .finish()
    }
}

impl<W> EventContext<W> {
    /// The current instant on the virtual clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `action` to fire at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past: the engine never rewinds.
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F) -> EventId
    where
        F: FnOnce(&mut W, &mut EventContext<W>) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past ({at} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(ScheduledEvent {
            at,
            seq,
            action: Box::new(action),
        });
        EventId(seq)
    }

    /// Schedules `action` to fire `delay` after the current instant.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, action: F) -> EventId
    where
        F: FnOnce(&mut W, &mut EventContext<W>) + 'static,
    {
        self.schedule_at(self.now + delay, action)
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.push(id);
    }

    /// Asks the engine to stop after the current event returns, leaving any
    /// remaining events unfired.
    pub fn stop(&mut self) {
        self.stop_requested = true;
    }
}

/// A deterministic discrete-event simulation engine over world state `W`.
///
/// # Example
///
/// ```
/// use picloud_simcore::{Engine, SimDuration};
///
/// let mut engine = Engine::new(0u32);
/// for i in 1..=3u32 {
///     engine.schedule_in(SimDuration::from_secs(i as u64), move |count, _| {
///         *count += i;
///     });
/// }
/// engine.run();
/// assert_eq!(*engine.world(), 6);
/// ```
pub struct Engine<W> {
    now: SimTime,
    world: W,
    queue: BinaryHeap<ScheduledEvent<W>>,
    // BTreeSet, not HashSet: sequence numbers are only probed for
    // membership today, but an ordered set keeps any future iteration
    // (draining, debugging dumps) deterministic by construction (D1).
    cancelled: BTreeSet<u64>,
    next_seq: u64,
    events_fired: u64,
}

impl<W> fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("queued", &self.queue.len())
            .field("events_fired", &self.events_fired)
            .finish()
    }
}

impl<W: Default> Default for Engine<W> {
    fn default() -> Self {
        Engine::new(W::default())
    }
}

impl<W> Engine<W> {
    /// Creates an engine at [`SimTime::ZERO`] owning `world`.
    pub fn new(world: W) -> Self {
        Engine {
            now: SimTime::ZERO,
            world,
            queue: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            next_seq: 0,
            events_fired: 0,
        }
    }

    /// The current instant on the virtual clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the world state.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world state (between events).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine, returning the final world state.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// Number of events still queued (including any already-cancelled ones
    /// that have not yet been skipped).
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of queued events that will actually fire — [`Engine::queued_len`]
    /// minus the cancelled events awaiting lazy removal.
    pub fn queued_live_len(&self) -> usize {
        self.queue
            .iter()
            .filter(|ev| !self.cancelled.contains(&ev.seq))
            .count()
    }

    /// Schedules `action` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`Engine::now`].
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F) -> EventId
    where
        F: FnOnce(&mut W, &mut EventContext<W>) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past ({at} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(ScheduledEvent {
            at,
            seq,
            action: Box::new(action),
        });
        EventId(seq)
    }

    /// Schedules `action` to fire `delay` after the current instant.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, action: F) -> EventId
    where
        F: FnOnce(&mut W, &mut EventContext<W>) + 'static,
    {
        self.schedule_at(self.now + delay, action)
    }

    /// Cancels a scheduled event; a no-op if it already fired or was
    /// cancelled.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
        self.maybe_compact();
    }

    /// Purges cancelled events from the queue once the cancelled set
    /// outgrows the (lower bound on the) live queue. Cancellation is lazy
    /// — normally a cancelled event is dropped when it reaches the head —
    /// but cancel-heavy fault timelines would otherwise hold dead boxed
    /// closures for the whole run. Clearing the cancelled set afterwards
    /// is sound: any id it held that was not in the queue belongs to an
    /// event that already fired and can never be enqueued again.
    fn maybe_compact(&mut self) {
        if 2 * self.cancelled.len() <= self.queue.len() {
            return;
        }
        let queue = std::mem::take(&mut self.queue);
        let live: Vec<ScheduledEvent<W>> = queue
            .into_iter()
            .filter(|ev| !self.cancelled.contains(&ev.seq))
            .collect();
        self.queue = BinaryHeap::from(live);
        self.cancelled.clear();
    }

    /// Fires the single earliest pending event, advancing the clock to it.
    ///
    /// Returns `false` when the queue is empty (nothing was fired).
    pub fn step(&mut self) -> bool {
        loop {
            let Some(event) = self.queue.pop() else {
                return false;
            };
            if self.cancelled.remove(&event.seq) {
                continue; // skip cancelled events without firing
            }
            debug_assert!(event.at >= self.now, "event queue yielded a past event");
            self.now = event.at;
            let mut ctx = EventContext {
                now: self.now,
                next_seq: self.next_seq,
                pending: Vec::new(),
                cancelled: Vec::new(),
                stop_requested: false,
            };
            (event.action)(&mut self.world, &mut ctx);
            self.next_seq = ctx.next_seq;
            for ev in ctx.pending {
                self.queue.push(ev);
            }
            let cancelled_any = !ctx.cancelled.is_empty();
            for id in ctx.cancelled {
                self.cancelled.insert(id.0);
            }
            if cancelled_any {
                self.maybe_compact();
            }
            self.events_fired += 1;
            if ctx.stop_requested {
                self.queue.clear();
                self.cancelled.clear();
            }
            return true;
        }
    }

    /// Runs until the event queue is exhausted (or an event calls
    /// [`EventContext::stop`]). Returns the number of events fired.
    pub fn run(&mut self) -> u64 {
        let before = self.events_fired;
        while self.step() {}
        self.events_fired - before
    }

    /// Runs until the queue is exhausted or the clock would pass `deadline`;
    /// events at exactly `deadline` do fire. The clock is left at
    /// `min(deadline, time of last fired event)`... specifically, it never
    /// advances beyond `deadline`. Returns the number of events fired.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.events_fired;
        loop {
            // Peek (skipping cancelled events) to avoid firing past the deadline.
            let next_at = loop {
                match self.queue.peek() {
                    None => break None,
                    Some(ev) if self.cancelled.contains(&ev.seq) => {
                        if let Some(ev) = self.queue.pop() {
                            self.cancelled.remove(&ev.seq);
                        }
                    }
                    Some(ev) => break Some(ev.at),
                }
            };
            match next_at {
                Some(at) if at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.events_fired - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut engine = Engine::new(Vec::<u32>::new());
        engine.schedule_at(SimTime::from_secs(3), |w: &mut Vec<u32>, _| w.push(3));
        engine.schedule_at(SimTime::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        engine.schedule_at(SimTime::from_secs(2), |w: &mut Vec<u32>, _| w.push(2));
        engine.run();
        assert_eq!(engine.world(), &[1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        let mut engine = Engine::new(Vec::<u32>::new());
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            engine.schedule_at(t, move |w: &mut Vec<u32>, _| w.push(i));
        }
        engine.run();
        assert_eq!(engine.world().as_slice(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_followups() {
        let mut engine = Engine::new(0u64);
        fn tick(count: &mut u64, ctx: &mut EventContext<u64>) {
            *count += 1;
            if *count < 10 {
                ctx.schedule_in(SimDuration::from_millis(1), tick);
            }
        }
        engine.schedule_in(SimDuration::from_millis(1), tick);
        engine.run();
        assert_eq!(*engine.world(), 10);
        assert_eq!(engine.now(), SimTime::from_nanos(10_000_000));
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut engine = Engine::new(0u32);
        let id = engine.schedule_in(SimDuration::from_secs(1), |w: &mut u32, _| *w += 1);
        engine.schedule_in(SimDuration::from_secs(2), |w: &mut u32, _| *w += 10);
        engine.cancel(id);
        engine.run();
        assert_eq!(*engine.world(), 10);
    }

    #[test]
    fn cancel_from_within_event() {
        let mut engine = Engine::new(0u32);
        let victim = engine.schedule_in(SimDuration::from_secs(5), |w: &mut u32, _| *w += 100);
        engine.schedule_in(SimDuration::from_secs(1), move |_, ctx| {
            ctx.cancel(victim);
        });
        engine.run();
        assert_eq!(*engine.world(), 0);
    }

    #[test]
    fn stop_discards_remaining_events() {
        let mut engine = Engine::new(0u32);
        engine.schedule_in(SimDuration::from_secs(1), |w: &mut u32, ctx| {
            *w += 1;
            ctx.stop();
        });
        engine.schedule_in(SimDuration::from_secs(2), |w: &mut u32, _| *w += 100);
        let fired = engine.run();
        assert_eq!(fired, 1);
        assert_eq!(*engine.world(), 1);
    }

    #[test]
    fn run_until_respects_deadline_and_advances_clock() {
        let mut engine = Engine::new(Vec::<u64>::new());
        for s in [1u64, 2, 3, 4] {
            engine.schedule_at(SimTime::from_secs(s), move |w: &mut Vec<u64>, _| w.push(s));
        }
        let fired = engine.run_until(SimTime::from_secs(2));
        assert_eq!(fired, 2);
        assert_eq!(engine.world(), &[1, 2]);
        assert_eq!(engine.now(), SimTime::from_secs(2));
        // Continue to completion.
        engine.run();
        assert_eq!(engine.world(), &[1, 2, 3, 4]);
    }

    #[test]
    fn run_until_skips_cancelled_head() {
        let mut engine = Engine::new(0u32);
        let id = engine.schedule_at(SimTime::from_secs(1), |w: &mut u32, _| *w += 1);
        engine.schedule_at(SimTime::from_secs(3), |w: &mut u32, _| *w += 2);
        engine.cancel(id);
        engine.run_until(SimTime::from_secs(2));
        assert_eq!(*engine.world(), 0);
        assert_eq!(engine.now(), SimTime::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut engine = Engine::new(());
        engine.schedule_at(SimTime::from_secs(5), |_, _| {});
        engine.run();
        engine.schedule_at(SimTime::from_secs(1), |_, _| {});
    }

    #[test]
    fn queued_live_len_excludes_cancelled() {
        let mut engine = Engine::new(0u32);
        let mut ids = Vec::new();
        for s in 1..=10u64 {
            ids.push(engine.schedule_at(SimTime::from_secs(s), |w: &mut u32, _| *w += 1));
        }
        assert_eq!(engine.queued_len(), 10);
        assert_eq!(engine.queued_live_len(), 10);
        engine.cancel(ids[0]);
        engine.cancel(ids[1]);
        assert_eq!(engine.queued_live_len(), 8);
        assert_eq!(engine.queued_len() - engine.queued_live_len(), {
            // Compaction may already have swept the dead entries out.
            engine.queued_len() - 8
        });
        engine.run();
        assert_eq!(*engine.world(), 8);
        assert_eq!(engine.queued_live_len(), 0);
    }

    #[test]
    fn cancel_heavy_run_compacts_the_queue() {
        // Cancel most of a large queue: the dead boxed closures must be
        // purged well before the clock reaches them, not held for the run.
        let mut engine = Engine::new(0u64);
        let mut ids = Vec::new();
        for s in 0..1000u64 {
            ids.push(engine.schedule_at(SimTime::from_secs(s + 1), |w: &mut u64, _| *w += 1));
        }
        for id in ids.iter().skip(100) {
            engine.cancel(*id);
        }
        assert!(
            engine.queued_len() <= 2 * engine.queued_live_len(),
            "queue still holds {} entries for {} live events",
            engine.queued_len(),
            engine.queued_live_len()
        );
        assert_eq!(engine.queued_live_len(), 100);
        let fired = engine.run();
        assert_eq!(fired, 100);
        assert_eq!(*engine.world(), 100);
    }

    #[test]
    fn compaction_preserves_order_and_late_cancels() {
        // Survivors fire in their original order after a compaction, and
        // cancelling post-compaction still works.
        let mut engine = Engine::new(Vec::<u64>::new());
        let mut ids = Vec::new();
        for s in 1..=50u64 {
            ids.push(
                engine.schedule_at(SimTime::from_secs(s), move |w: &mut Vec<u64>, _| w.push(s)),
            );
        }
        for id in ids.iter().take(40) {
            engine.cancel(*id);
        }
        engine.cancel(ids[44]); // cancel after the sweep
        engine.run();
        assert_eq!(engine.world(), &[41, 42, 43, 44, 46, 47, 48, 49, 50]);
    }

    #[test]
    fn event_ids_are_unique_across_context_and_engine() {
        let mut engine = Engine::new(Vec::<EventId>::new());
        let a = engine.schedule_in(SimDuration::from_secs(1), |w: &mut Vec<EventId>, ctx| {
            let inner = ctx.schedule_in(SimDuration::from_secs(1), |_, _| {});
            w.push(inner);
        });
        engine.run();
        let b = engine.schedule_at(engine.now(), |_, _| {});
        let inner = engine.world()[0];
        assert_ne!(a, inner);
        assert_ne!(a, b);
        assert_ne!(inner, b);
    }
}
