//! Deterministic discrete-event simulation core for the PiCloud scale model.
//!
//! This crate provides the substrate every other PiCloud crate is built on:
//!
//! * [`SimTime`] / [`SimDuration`] — a nanosecond-resolution virtual clock.
//! * [`Engine`] — a discrete-event engine generic over a user-supplied world
//!   state, with a strict deterministic ordering guarantee: events fire in
//!   `(time, sequence)` order, so two runs with the same seed are
//!   bit-identical.
//! * [`SeedFactory`] — labelled, reproducible [`rand_chacha::ChaCha12Rng`]
//!   streams so that adding a new consumer of randomness never perturbs
//!   existing streams.
//! * [`metrics`] — time-weighted gauges, counters and histograms used by all
//!   experiment harnesses.
//! * [`telemetry`] — the cluster-wide observability layer: a labeled
//!   [`MetricsRegistry`], a ring-buffered sim-time [`Tracer`], and
//!   byte-deterministic JSONL/CSV/Prometheus exporters (see
//!   `OBSERVABILITY.md` at the repository root).
//! * [`spans`] — causal span tracing layered on the [`Tracer`]: parented
//!   `span_start` / `span_end` events, [`SpanForest`] reconstruction, and
//!   critical-path extraction with per-span blame attribution.
//! * [`units`] — newtypes for bytes, bandwidth, power, cost and frequency
//!   shared across the hardware and network models.
//! * [`EDist`] — sorted empirical distributions (interpolated quantiles,
//!   deterministic inverse-CDF draws) backing the network fabric's
//!   estimation mode.
//!
//! # Example
//!
//! ```
//! use picloud_simcore::{Engine, SimDuration, SimTime};
//!
//! struct World { ticks: u32 }
//!
//! let mut engine = Engine::new(World { ticks: 0 });
//! engine.schedule_in(SimDuration::from_millis(5), |world: &mut World, ctx| {
//!     world.ticks += 1;
//!     // Events may schedule follow-up events through the context.
//!     ctx.schedule_in(SimDuration::from_millis(5), |world: &mut World, _| {
//!         world.ticks += 1;
//!     });
//! });
//! engine.run();
//! assert_eq!(engine.world().ticks, 2);
//! assert_eq!(engine.now(), SimTime::ZERO + SimDuration::from_millis(10));
//! ```

#![warn(missing_docs)]

pub mod edist;
pub mod engine;
pub mod metrics;
pub mod rng;
pub mod spans;
pub mod telemetry;
pub mod time;
pub mod units;

pub use edist::EDist;
pub use engine::{Engine, EventContext, EventId};
pub use metrics::{Counter, Histogram, HistogramSummary, MetricSet, TimeWeightedGauge};
pub use rng::SeedFactory;
pub use spans::{CriticalPath, PathStep, SpanContext, SpanForest, SpanId, SpanRecord};
pub use telemetry::{MetricsRegistry, MetricsSnapshot, TelemetrySink, TraceEvent, Tracer};
pub use time::{SimDuration, SimTime};
