//! Reproducible, labelled random-number streams.
//!
//! Every source of randomness in a PiCloud experiment draws from a
//! [`SeedFactory`], which derives an independent [`ChaCha12Rng`] per
//! `(seed, label)` pair. Because each consumer owns its own stream, adding a
//! new consumer (say, a second traffic generator) never perturbs the draws
//! seen by existing consumers — experiments stay comparable across code
//! changes.

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::fmt;

/// Derives independent, reproducible RNG streams from a master seed.
///
/// # Example
///
/// ```
/// use picloud_simcore::SeedFactory;
/// use rand::Rng;
///
/// let factory = SeedFactory::new(42);
/// let mut traffic = factory.stream("traffic");
/// let mut faults = factory.stream("faults");
/// // Streams with the same label are identical...
/// assert_eq!(
///     factory.stream("traffic").gen::<u64>(),
///     traffic.gen::<u64>(),
/// );
/// // ...and streams with different labels are independent.
/// let _ = faults.gen::<u64>();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedFactory {
    seed: u64,
}

impl SeedFactory {
    /// Creates a factory rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeedFactory { seed }
    }

    /// The master seed this factory was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns the RNG stream for `label`.
    ///
    /// The stream is a pure function of `(seed, label)`: calling this twice
    /// with the same label yields generators producing identical sequences.
    pub fn stream(&self, label: &str) -> ChaCha12Rng {
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&self.seed.to_le_bytes());
        // FNV-1a over the label, folded into the remaining key bytes, gives a
        // cheap, portable label separation (we need distinctness, not
        // cryptographic strength).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        key[8..16].copy_from_slice(&h.to_le_bytes());
        let mut h2 = h;
        for (i, chunk) in key[16..].chunks_mut(8).enumerate() {
            h2 = h2
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i as u64 + 1);
            chunk.copy_from_slice(&h2.to_le_bytes());
        }
        ChaCha12Rng::from_seed(key)
    }

    /// Returns the RNG stream for a label plus numeric index, convenient for
    /// per-node or per-flow streams (`factory.indexed_stream("node", 17)`).
    pub fn indexed_stream(&self, label: &str, index: u64) -> ChaCha12Rng {
        self.stream(&format!("{label}/{index}"))
    }

    /// Derives a child factory, for nesting experiments inside sweeps.
    pub fn child(&self, label: &str) -> SeedFactory {
        let mut h: u64 = self.seed ^ 0x517c_c1b7_2722_0a95;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SeedFactory { seed: h }
    }
}

impl fmt::Display for SeedFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed:{}", self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let f = SeedFactory::new(7);
        let a: Vec<u64> = (0..16).map(|_| f.stream("x").gen::<u64>()).collect();
        // Each call above creates a fresh stream, so all values are equal.
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        let mut s1 = f.stream("x");
        let mut s2 = f.stream("x");
        for _ in 0..32 {
            assert_eq!(s1.gen::<u64>(), s2.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_differ() {
        let f = SeedFactory::new(7);
        assert_ne!(f.stream("a").gen::<u64>(), f.stream("b").gen::<u64>());
        assert_ne!(
            f.indexed_stream("node", 0).gen::<u64>(),
            f.indexed_stream("node", 1).gen::<u64>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            SeedFactory::new(1).stream("a").gen::<u64>(),
            SeedFactory::new(2).stream("a").gen::<u64>()
        );
    }

    #[test]
    fn child_factories_are_reproducible_and_distinct() {
        let f = SeedFactory::new(99);
        assert_eq!(f.child("sweep"), f.child("sweep"));
        assert_ne!(f.child("sweep").seed(), f.child("other").seed());
        assert_ne!(f.child("sweep").seed(), f.seed());
    }

    #[test]
    fn label_index_does_not_collide_with_embedded_slash() {
        let f = SeedFactory::new(3);
        // "node/1" via indexed_stream equals explicit label "node/1".
        let mut a = f.indexed_stream("node", 1);
        let mut b = f.stream("node/1");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
