//! Empirical distributions for estimation-mode percentile composition.
//!
//! An [`EDist`] is an immutable, sorted bag of `f64` samples with
//! interpolated quantiles and a deterministic inverse-CDF lookup. The
//! estimation pipeline (`DESIGN.md` §4d) attaches one `EDist` of observed
//! flow slowdowns to every link cluster; predicted flow-completion times
//! are read off these distributions instead of being solved exactly.
//!
//! Everything here is a pure function of the input samples: construction
//! sorts with [`f64::total_cmp`] (never `partial_cmp`, per lint rule F1)
//! and every query is branch-free of ambient state, so estimation-mode
//! reports stay byte-deterministic across runs and worker counts.

/// An empirical distribution over `f64` samples, stored sorted ascending.
///
/// # Example
///
/// ```
/// use picloud_simcore::EDist;
///
/// let d = EDist::from_samples(vec![4.0, 1.0, 2.0, 3.0]);
/// assert_eq!(d.len(), 4);
/// assert_eq!(d.quantile(0.0), 1.0);
/// assert_eq!(d.quantile(1.0), 4.0);
/// assert_eq!(d.quantile(0.5), 2.5); // interpolated between 2.0 and 3.0
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EDist {
    samples: Vec<f64>,
}

impl EDist {
    /// Builds a distribution from unordered samples.
    ///
    /// Samples are sorted ascending with a total order on floats; NaNs
    /// (which the simulator never produces) would sort last rather than
    /// poisoning comparisons.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(f64::total_cmp);
        Self { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the distribution holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sorted samples, ascending.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Smallest sample, or `default` when empty.
    pub fn min_or(&self, default: f64) -> f64 {
        self.samples.first().copied().unwrap_or(default)
    }

    /// Largest sample, or `default` when empty.
    pub fn max_or(&self, default: f64) -> f64 {
        self.samples.last().copied().unwrap_or(default)
    }

    /// Arithmetic mean, or `0.0` when empty.
    ///
    /// Summation runs in ascending sample order, so the float
    /// accumulation order — and therefore the bits — is fixed.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.samples.iter().sum();
        sum / self.samples.len() as f64
    }

    /// Interpolated quantile `q` in `[0, 1]`.
    ///
    /// Uses the linear-interpolation estimator over order statistics
    /// (the same convention as numpy's default): rank `q * (n - 1)`,
    /// interpolating between the two straddling samples. Out-of-range
    /// `q` clamps to the extremes. Returns `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.samples.len();
        if n == 0 {
            return 0.0;
        }
        if n == 1 || q <= 0.0 {
            // lint: allow(P1) reason=n == samples.len() is checked non-zero above
            return self.samples[0];
        }
        if q >= 1.0 {
            return self.samples[n - 1];
        }
        let rank = q * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = lo + 1;
        let frac = rank - lo as f64;
        self.samples[lo] + (self.samples[hi] - self.samples[lo]) * frac
    }

    /// Deterministic inverse-CDF draw: maps `u` in `[0, 1)` to the
    /// sample at that cumulative position (no interpolation — a draw
    /// returns an observed value, matching how the representative
    /// simulation actually behaved). Returns `0.0` when empty.
    pub fn sample_at(&self, u: f64) -> f64 {
        let n = self.samples.len();
        if n == 0 {
            return 0.0;
        }
        let idx = ((u.clamp(0.0, 1.0)) * n as f64) as usize;
        self.samples[idx.min(n - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_interpolate() {
        let d = EDist::from_samples(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(d.quantile(0.0), 10.0);
        assert_eq!(d.quantile(0.25), 20.0);
        assert_eq!(d.quantile(0.5), 30.0);
        assert_eq!(d.quantile(1.0), 50.0);
        assert!((d.quantile(0.99) - 49.6).abs() < 1e-9);
    }

    #[test]
    fn empty_and_singleton() {
        let e = EDist::from_samples(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.quantile(0.5), 0.0);
        assert_eq!(e.sample_at(0.7), 0.0);
        let s = EDist::from_samples(vec![3.5]);
        assert_eq!(s.quantile(0.99), 3.5);
        assert_eq!(s.sample_at(0.0), 3.5);
        assert_eq!(s.mean(), 3.5);
    }

    #[test]
    fn sample_at_returns_observed_values() {
        let d = EDist::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.sample_at(0.0), 1.0);
        assert_eq!(d.sample_at(0.26), 2.0);
        assert_eq!(d.sample_at(0.99), 4.0);
        assert_eq!(d.sample_at(1.0), 4.0);
    }
}
