//! Measurement primitives for experiments.
//!
//! Three collector types cover everything the PiCloud harnesses report:
//!
//! * [`Counter`] — monotonically increasing totals (requests served, bytes
//!   sent).
//! * [`TimeWeightedGauge`] — a value that changes over simulated time and is
//!   summarised by its *time-weighted* mean/max (CPU utilisation, queue
//!   depth, power draw). Time-weighting matters: a gauge at 100% for 1 s and
//!   0% for 9 s must average 10%, regardless of how many samples were taken.
//! * [`Histogram`] — distribution of observations (request latency, flow
//!   completion time) with quantile queries.
//!
//! [`MetricSet`] is a string-keyed bag of all three, used by subsystems that
//! expose many metrics at once.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing counter.
///
/// # Example
///
/// ```
/// use picloud_simcore::Counter;
///
/// let mut served = Counter::new();
/// served.add(3);
/// served.increment();
/// assert_eq!(served.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        // lint: allow(P1) reason=checked arithmetic: panic is the documented overflow diagnostic; operator impls cannot return Result
        self.value = self.value.checked_add(n).expect("counter overflowed u64");
    }

    /// Adds one.
    pub fn increment(&mut self) {
        self.add(1);
    }

    /// The current total.
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// A gauge whose summary statistics are weighted by how long each value was
/// held on the virtual clock.
///
/// # Example
///
/// ```
/// use picloud_simcore::{SimTime, TimeWeightedGauge};
///
/// let mut cpu = TimeWeightedGauge::new(SimTime::ZERO, 0.0);
/// cpu.set(SimTime::from_secs(0), 1.0);
/// cpu.set(SimTime::from_secs(1), 0.0);
/// // 1.0 held for 1s, 0.0 held for 9s => mean 0.1
/// assert!((cpu.mean(SimTime::from_secs(10)) - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeWeightedGauge {
    current: f64,
    last_change: SimTime,
    weighted_sum: f64,
    observed_from: SimTime,
    max: f64,
    min: f64,
}

impl TimeWeightedGauge {
    /// Creates a gauge holding `initial` from instant `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeightedGauge {
            current: initial,
            last_change: start,
            weighted_sum: 0.0,
            observed_from: start,
            max: initial,
            min: initial,
        }
    }

    /// Sets the gauge to `value` at instant `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update — gauges, like the
    /// simulation itself, move forward only.
    pub fn set(&mut self, now: SimTime, value: f64) {
        assert!(
            now >= self.last_change,
            "gauge updated backwards in time ({now} < {})",
            self.last_change
        );
        let held = now.duration_since(self.last_change).as_secs_f64();
        self.weighted_sum += self.current * held;
        self.current = value;
        self.last_change = now;
        if value > self.max {
            self.max = value;
        }
        if value < self.min {
            self.min = value;
        }
    }

    /// Adds `delta` to the current value at instant `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let next = self.current + delta;
        self.set(now, next);
    }

    /// The instantaneous value.
    pub fn value(&self) -> f64 {
        self.current
    }

    /// The largest value ever held.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The smallest value ever held.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Time-weighted mean over `[start, now]`, where `start` is the instant
    /// the gauge was created.
    ///
    /// Returns the instantaneous value if no time has passed.
    pub fn mean(&self, now: SimTime) -> f64 {
        let total = now
            .saturating_duration_since(self.observed_from)
            .as_secs_f64();
        if total <= 0.0 {
            return self.current;
        }
        let tail = now
            .saturating_duration_since(self.last_change)
            .as_secs_f64();
        (self.weighted_sum + self.current * tail) / total
    }

    /// Integral of the gauge over time (value × seconds); e.g. watts
    /// integrated to joules.
    pub fn integral(&self, now: SimTime) -> f64 {
        let tail = now
            .saturating_duration_since(self.last_change)
            .as_secs_f64();
        self.weighted_sum + self.current * tail
    }
}

/// A histogram of `f64` observations supporting mean and quantile queries.
///
/// Observations are stored exactly (this is a simulation harness, not a
/// production telemetry pipeline); quantiles use the nearest-rank method on
/// a lazily sorted copy.
///
/// # Example
///
/// ```
/// use picloud_simcore::Histogram;
///
/// let mut latency = Histogram::new();
/// for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
///     latency.observe(v);
/// }
/// assert_eq!(latency.len(), 5);
/// assert_eq!(latency.quantile(0.5), Some(3.0));
/// assert_eq!(latency.quantile(1.0), Some(100.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<f64>,
    sum: f64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values; those always indicate a model bug.
    pub fn observe(&mut self, value: f64) {
        assert!(value.is_finite(), "histogram observed non-finite value");
        self.samples.push(value);
        self.sum += value;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum / self.samples.len() as f64)
        }
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// Nearest-rank quantile `q` in `[0, 1]`, or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Population standard deviation, or `None` if empty.
    ///
    /// A single observation has zero spread, so one sample returns
    /// `Some(0.0)` — never `NaN`. (Were this the *sample* standard
    /// deviation, `n − 1 = 0` would divide to `NaN`; the population form
    /// is chosen exactly so every non-empty histogram summarises to
    /// finite numbers.)
    pub fn stddev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self
            .samples
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        // Squared terms cannot sum negative, but guard the sqrt anyway so
        // a pathological float state can never leak NaN into a report.
        Some(var.max(0.0).sqrt())
    }

    /// Every summary statistic at once, or `None` if the histogram is
    /// empty.
    ///
    /// This is the *only* summary API exporters should use: it guarantees
    /// no `NaN` ever reaches a report. Edge cases are defined, not
    /// accidental:
    ///
    /// * **empty** — `None` (exporters print an explicit `count 0` row);
    /// * **single observation** — every quantile, `min`, `max` and `mean`
    ///   equal that observation and `stddev` is `0.0`.
    ///
    /// # Example
    ///
    /// ```
    /// use picloud_simcore::Histogram;
    ///
    /// assert!(Histogram::new().summary().is_none());
    ///
    /// let one: Histogram = [42.0].into_iter().collect();
    /// let s = one.summary().unwrap();
    /// assert_eq!((s.count, s.p50, s.p99, s.stddev), (1, 42.0, 42.0, 0.0));
    /// ```
    pub fn summary(&self) -> Option<HistogramSummary> {
        if self.samples.is_empty() {
            return None;
        }
        Some(HistogramSummary {
            count: self.len(),
            sum: self.sum(),
            mean: self.mean()?,
            min: self.min()?,
            max: self.max()?,
            p50: self.quantile(0.5)?,
            p90: self.quantile(0.9)?,
            p99: self.quantile(0.99)?,
            stddev: self.stddev()?,
        })
    }

    /// Iterates over the raw observations in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.samples.iter()
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.observe(v);
        }
    }
}

impl FromIterator<f64> for Histogram {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut h = Histogram::new();
        h.extend(iter);
        h
    }
}

/// The summary statistics of one non-empty [`Histogram`], as produced by
/// [`Histogram::summary`]. All fields are finite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of observations (always ≥ 1).
    pub count: usize,
    /// Sum of all observations.
    pub sum: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 90th percentile (nearest rank).
    pub p90: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// Population standard deviation (`0.0` for a single observation).
    pub stddev: f64,
}

/// A string-keyed bag of counters, gauges and histograms.
///
/// Keys use `BTreeMap` so that iteration (and therefore report output) is
/// deterministic.
///
/// # Example
///
/// ```
/// use picloud_simcore::{MetricSet, SimTime};
///
/// let mut m = MetricSet::new(SimTime::ZERO);
/// m.counter("requests").add(10);
/// m.histogram("latency_ms").observe(3.5);
/// m.gauge("cpu").set(SimTime::from_secs(1), 0.7);
/// assert_eq!(m.counter("requests").value(), 10);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricSet {
    start: SimTime,
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, TimeWeightedGauge>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricSet {
    /// Creates an empty set whose gauges start observing at `start`.
    pub fn new(start: SimTime) -> Self {
        MetricSet {
            start,
            ..MetricSet::default()
        }
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_owned()).or_default()
    }

    /// The gauge named `name`, created holding `0.0` on first use.
    pub fn gauge(&mut self, name: &str) -> &mut TimeWeightedGauge {
        let start = self.start;
        self.gauges
            .entry(name.to_owned())
            .or_insert_with(|| TimeWeightedGauge::new(start, 0.0))
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_owned()).or_default()
    }

    /// Read-only lookup of a counter.
    pub fn get_counter(&self, name: &str) -> Option<&Counter> {
        self.counters.get(name)
    }

    /// Read-only lookup of a gauge.
    pub fn get_gauge(&self, name: &str) -> Option<&TimeWeightedGauge> {
        self.gauges.get(name)
    }

    /// Read-only lookup of a histogram.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &Counter)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &TimeWeightedGauge)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.increment();
        c.add(41);
        assert_eq!(c.value(), 42);
        assert_eq!(c.to_string(), "42");
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn counter_overflow_panics() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.increment();
    }

    #[test]
    fn gauge_time_weighting() {
        let mut g = TimeWeightedGauge::new(SimTime::ZERO, 0.0);
        g.set(SimTime::from_secs(2), 10.0); // 0.0 held 2s
        g.set(SimTime::from_secs(4), 0.0); // 10.0 held 2s
        let mean = g.mean(SimTime::from_secs(10)); // 0.0 held 6 more
        assert!((mean - 2.0).abs() < 1e-12, "mean was {mean}");
        assert_eq!(g.max(), 10.0);
        assert_eq!(g.min(), 0.0);
    }

    #[test]
    fn gauge_integral_is_energy_like() {
        let mut g = TimeWeightedGauge::new(SimTime::ZERO, 100.0); // 100 W
        g.set(SimTime::from_secs(10), 50.0);
        let joules = g.integral(SimTime::from_secs(20));
        assert!((joules - (100.0 * 10.0 + 50.0 * 10.0)).abs() < 1e-9);
    }

    #[test]
    fn gauge_mean_with_no_elapsed_time_is_current() {
        let g = TimeWeightedGauge::new(SimTime::from_secs(5), 7.0);
        assert_eq!(g.mean(SimTime::from_secs(5)), 7.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn gauge_rejects_time_travel() {
        let mut g = TimeWeightedGauge::new(SimTime::from_secs(5), 0.0);
        g.set(SimTime::from_secs(1), 1.0);
    }

    #[test]
    fn histogram_quantiles_nearest_rank() {
        let h: Histogram = (1..=100).map(f64::from).collect();
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(50.0));
        assert_eq!(h.quantile(0.99), Some(99.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        assert_eq!(h.mean(), Some(50.5));
    }

    #[test]
    fn histogram_empty_returns_none() {
        let h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.stddev(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn histogram_stddev() {
        let h: Histogram = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((h.stddev().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn histogram_rejects_nan() {
        Histogram::new().observe(f64::NAN);
    }

    #[test]
    fn empty_histogram_summary_is_none_not_nan() {
        assert_eq!(Histogram::new().summary(), None);
    }

    #[test]
    fn single_observation_summary_is_finite_everywhere() {
        let h: Histogram = [3.25].into_iter().collect();
        let s = h.summary().expect("non-empty");
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 3.25);
        assert_eq!(s.mean, 3.25);
        assert_eq!(s.min, 3.25);
        assert_eq!(s.max, 3.25);
        // All quantiles of one observation are that observation.
        assert_eq!((s.p50, s.p90, s.p99), (3.25, 3.25, 3.25));
        assert_eq!(h.quantile(0.0), Some(3.25));
        assert_eq!(h.quantile(1.0), Some(3.25));
        // Zero spread, not NaN (a sample stddev would divide by n-1 = 0).
        assert_eq!(s.stddev, 0.0);
        assert!([s.sum, s.mean, s.min, s.max, s.p50, s.p90, s.p99, s.stddev]
            .iter()
            .all(|v| v.is_finite()));
    }

    #[test]
    fn summary_matches_individual_queries() {
        let h: Histogram = (1..=100).map(f64::from).collect();
        let s = h.summary().unwrap();
        assert_eq!(s.p50, h.quantile(0.5).unwrap());
        assert_eq!(s.p90, h.quantile(0.9).unwrap());
        assert_eq!(s.p99, h.quantile(0.99).unwrap());
        assert_eq!(s.mean, h.mean().unwrap());
        assert_eq!(s.stddev, h.stddev().unwrap());
    }

    #[test]
    fn metric_set_iteration_is_sorted() {
        let mut m = MetricSet::new(SimTime::ZERO);
        m.counter("zeta").increment();
        m.counter("alpha").increment();
        let names: Vec<&str> = m.counters().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }
}
