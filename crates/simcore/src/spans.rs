//! Causal span tracing over the [`crate::telemetry::Tracer`].
//!
//! The flat tracer answers *what happened when*; spans answer *why it took
//! that long*. A span is a named interval of sim-time with an optional
//! parent, recorded as a `span_start` / `span_end` event pair carrying a
//! [`SpanId`] link (Dapper-style). Instrumented layers thread a
//! [`SpanContext`] through their cross-node work — a heartbeat RPC becomes
//! a child of the sweep that issued it, an image pull a child of the
//! recovery that needed it — and the recorded events reconstruct into a
//! [`SpanForest`].
//!
//! On top of the forest, [`SpanForest::critical_path`] extracts the chain
//! of sub-spans that actually gated a root span's completion, attributing
//! every nanosecond of the root's duration either to a descendant on the
//! path or to the span's own self-time, so blame percentages always sum
//! to 100 %. Children are clamped to their parent's window first, which
//! keeps the arithmetic exact even when an async child (a spawn RPC, say)
//! outlives the interval being explained.
//!
//! Like the tracer it rides on, the whole layer is zero-alloc when
//! tracing is disabled ([`crate::telemetry::Tracer::span_start`] returns
//! [`SpanId::NONE`] without calling the field builder) and
//! byte-deterministic for a fixed seed: ids are allocated in emission
//! order and every container below iterates sorted.
//!
//! # Example
//!
//! ```
//! use picloud_simcore::spans::{SpanForest, SpanId};
//! use picloud_simcore::telemetry::Tracer;
//! use picloud_simcore::SimTime;
//!
//! let mut t = Tracer::unbounded();
//! let job = t.span_start(SimTime::ZERO, "job", SpanId::NONE, |_| {});
//! let map = t.span_start(SimTime::ZERO, "map", job, |_| {});
//! t.span_end(SimTime::from_secs(3), map, |_| {});
//! t.span_end(SimTime::from_secs(4), job, |_| {});
//!
//! let forest = SpanForest::from_tracer(&t);
//! let path = forest.critical_path(job).unwrap();
//! assert_eq!(path.total(), picloud_simcore::SimDuration::from_secs(4));
//! // 3 s blamed on `map`, 1 s on `job` itself.
//! assert_eq!(path.steps.len(), 2);
//! ```

use crate::telemetry::{FieldValue, TraceEvent, Tracer};
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// Identity of one recorded span. `SpanId::NONE` (zero) means "no span":
/// it is what a disabled tracer hands out, and what roots carry as their
/// parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span: no recording happened, or no parent exists.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is a real recorded span (non-zero).
    pub fn is_some(self) -> bool {
        self.0 != 0
    }

    /// Whether this is the null span.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span#{}", self.0)
    }
}

/// The thin propagation handle instrumented APIs accept: "make your spans
/// children of this". Passing [`SpanContext::NONE`] roots them instead.
///
/// Layers that cross crate boundaries (the RPC plane, the SDN controller,
/// MapReduce execution) take a `SpanContext` rather than a bare [`SpanId`]
/// so call sites read as context propagation, not bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanContext(SpanId);

impl SpanContext {
    /// No enclosing span: children become roots.
    pub const NONE: SpanContext = SpanContext(SpanId::NONE);

    /// A context whose children attach under `span`.
    pub fn of(span: SpanId) -> Self {
        SpanContext(span)
    }

    /// The span new work should attach under.
    pub fn span(self) -> SpanId {
        self.0
    }
}

/// One reconstructed span: interval, parentage and the custom fields its
/// start/end events carried.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The span's id.
    pub id: SpanId,
    /// Span name, e.g. `recovery` or `rpc` (catalogue in
    /// `OBSERVABILITY.md`).
    pub name: String,
    /// Parent span, [`SpanId::NONE`] for roots.
    pub parent: SpanId,
    /// When the span opened.
    pub start: SimTime,
    /// When the span closed; `None` if no `span_end` was recorded.
    pub end: Option<SimTime>,
    /// Custom fields from the `span_start` event (envelope keys stripped).
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Custom fields from the `span_end` event (envelope keys stripped).
    pub end_fields: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    /// The span's duration; zero if it never closed.
    pub fn duration(&self) -> SimDuration {
        self.end
            .unwrap_or(self.start)
            .saturating_duration_since(self.start)
    }

    /// Looks a custom field up by key, end fields first (outcomes live
    /// there), then start fields.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.end_fields
            .iter()
            .chain(self.fields.iter())
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// All spans reconstructed from a trace, indexed by id with parent/child
/// links resolved. Spans whose parent was never recorded (ring-buffer
/// eviction) are treated as roots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanForest {
    spans: BTreeMap<u64, SpanRecord>,
    children: BTreeMap<u64, Vec<SpanId>>,
    roots: Vec<SpanId>,
}

impl SpanForest {
    /// Reconstructs the forest from a tracer's retained events.
    pub fn from_tracer(tracer: &Tracer) -> Self {
        Self::from_events(tracer.events())
    }

    /// Reconstructs the forest from raw trace events (oldest first).
    /// Non-span events are ignored; a `span_end` without a matching start
    /// is dropped.
    pub fn from_events<'a>(events: impl Iterator<Item = &'a TraceEvent>) -> Self {
        let mut spans: BTreeMap<u64, SpanRecord> = BTreeMap::new();
        for ev in events {
            match ev.kind {
                "span_start" => {
                    let Some(&FieldValue::U64(id)) = ev.field("span") else {
                        continue;
                    };
                    let parent = match ev.field("parent") {
                        Some(&FieldValue::U64(p)) => SpanId(p),
                        _ => SpanId::NONE,
                    };
                    let name = match ev.field("name") {
                        Some(FieldValue::Str(n)) => n.clone(),
                        _ => String::new(),
                    };
                    let fields = ev
                        .fields
                        .iter()
                        .filter(|(k, _)| !matches!(*k, "span" | "parent" | "name"))
                        .cloned()
                        .collect();
                    spans.insert(
                        id,
                        SpanRecord {
                            id: SpanId(id),
                            name,
                            parent,
                            start: ev.time,
                            end: None,
                            fields,
                            end_fields: Vec::new(),
                        },
                    );
                }
                "span_end" => {
                    let Some(&FieldValue::U64(id)) = ev.field("span") else {
                        continue;
                    };
                    if let Some(rec) = spans.get_mut(&id) {
                        rec.end = Some(ev.time);
                        rec.end_fields = ev
                            .fields
                            .iter()
                            .filter(|(k, _)| *k != "span")
                            .cloned()
                            .collect();
                    }
                }
                _ => {}
            }
        }
        let mut children: BTreeMap<u64, Vec<SpanId>> = BTreeMap::new();
        let mut roots = Vec::new();
        for rec in spans.values() {
            if rec.parent.is_some() && spans.contains_key(&rec.parent.0) {
                children.entry(rec.parent.0).or_default().push(rec.id);
            } else {
                roots.push(rec.id);
            }
        }
        SpanForest {
            spans,
            children,
            roots,
        }
    }

    /// The record for `id`, if recorded.
    pub fn get(&self, id: SpanId) -> Option<&SpanRecord> {
        self.spans.get(&id.0)
    }

    /// Root spans (no recorded parent), in id order.
    pub fn roots(&self) -> &[SpanId] {
        &self.roots
    }

    /// Direct children of `id`, in id (= creation) order.
    pub fn children(&self, id: SpanId) -> &[SpanId] {
        self.children.get(&id.0).map_or(&[], Vec::as_slice)
    }

    /// All spans, in id order.
    pub fn iter(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.values()
    }

    /// Number of reconstructed spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace held no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Root spans named `name`, in id order.
    pub fn roots_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.roots
            .iter()
            .filter_map(move |&r| self.get(r))
            .filter(move |r| r.name == name)
    }

    /// One JSON object per span, in id order:
    /// `{"span","name","parent","start_ns","end_ns","duration_ns",...}`
    /// followed by the span's custom start then end fields.
    /// Byte-deterministic for a fixed trace.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.spans.values() {
            out.push_str(&format!(
                "{{\"span\":{},\"name\":\"{}\",\"parent\":{},\"start_ns\":{}",
                rec.id.0,
                rec.name,
                rec.parent.0,
                rec.start.as_nanos()
            ));
            match rec.end {
                Some(end) => out.push_str(&format!(
                    ",\"end_ns\":{},\"duration_ns\":{}",
                    end.as_nanos(),
                    rec.duration().as_nanos()
                )),
                None => out.push_str(",\"end_ns\":null,\"duration_ns\":null"),
            }
            for (k, v) in rec.fields.iter().chain(rec.end_fields.iter()) {
                out.push_str(&format!(",\"{k}\":"));
                match v {
                    FieldValue::U64(v) => out.push_str(&format!("{v}")),
                    FieldValue::I64(v) => out.push_str(&format!("{v}")),
                    FieldValue::F64(v) => {
                        if v.is_finite() {
                            out.push_str(&format!("{v}"));
                        } else {
                            out.push_str("null");
                        }
                    }
                    FieldValue::Bool(v) => out.push_str(&format!("{v}")),
                    FieldValue::Str(s) => {
                        out.push('"');
                        for c in s.chars() {
                            match c {
                                '"' => out.push_str("\\\""),
                                '\\' => out.push_str("\\\\"),
                                '\n' => out.push_str("\\n"),
                                c => out.push(c),
                            }
                        }
                        out.push('"');
                    }
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// Deterministic text tree of the subtree under `root` — name,
    /// interval and duration per span, children indented in id order.
    pub fn render_tree(&self, root: SpanId) -> String {
        let mut out = String::new();
        self.render_into(root, 0, &mut out);
        out
    }

    fn render_into(&self, id: SpanId, depth: usize, out: &mut String) {
        let Some(rec) = self.get(id) else {
            return;
        };
        let indent = "  ".repeat(depth);
        let end = match rec.end {
            Some(e) => format!("{:.3}s", e.as_secs_f64()),
            None => "open".to_owned(),
        };
        out.push_str(&format!(
            "{indent}{} [{:.3}s \u{2192} {end}] {:.3}s",
            rec.name,
            rec.start.as_secs_f64(),
            rec.duration().as_secs_f64(),
        ));
        for (k, v) in &rec.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        for &c in self.children(id) {
            self.render_into(c, depth + 1, out);
        }
    }

    /// Extracts the critical path through the subtree rooted at `root`:
    /// the backward walk from the root's end that always descends into the
    /// child gating completion (latest clamped end; ties break toward the
    /// later-created span). Gaps no child covers are the parent's
    /// self-time. Returns `None` if `root` was never recorded.
    ///
    /// The returned steps partition `[root.start, root.end]` exactly, so
    /// [`CriticalPath::blame`] always sums to the root's duration.
    pub fn critical_path(&self, root: SpanId) -> Option<CriticalPath> {
        let rec = self.get(root)?;
        let end = rec.end.unwrap_or(rec.start);
        let mut steps = Vec::new();
        self.walk_path(root, rec.start, end, 0, &mut steps);
        steps.reverse();
        Some(CriticalPath {
            root,
            start: rec.start,
            end,
            steps,
        })
    }

    /// Backward walk attributing `[lo, hi]` of `span`'s time; emits steps
    /// in reverse-chronological order (the caller reverses once).
    fn walk_path(
        &self,
        span: SpanId,
        lo: SimTime,
        hi: SimTime,
        depth: usize,
        out: &mut Vec<PathStep>,
    ) {
        let name = self.get(span).map_or("", |r| r.name.as_str()).to_owned();
        // Children clamped to the window; zero-width children cannot gate
        // anything and are skipped.
        let mut kids: Vec<(SimTime, SimTime, SpanId)> = self
            .children(span)
            .iter()
            .filter_map(|&c| {
                let r = self.get(c)?;
                let s = r.start.max(lo).min(hi);
                let e = r.end.unwrap_or(r.start).min(hi).max(lo);
                (s < e).then_some((s, e, c))
            })
            .collect();
        let mut t = hi;
        while t > lo {
            // The child gating completion at `t`: latest clamped end, ties
            // to the later-created (larger-id) span.
            let best = kids
                .iter()
                .filter_map(|&(s, e, c)| {
                    let e = e.min(t);
                    (s < e).then_some((e, c, s))
                })
                .max_by_key(|&(e, c, _)| (e, c));
            let Some((e, c, s)) = best else { break };
            if e < t {
                out.push(PathStep {
                    span,
                    name: name.clone(),
                    start: e,
                    end: t,
                    depth,
                });
            }
            self.walk_path(c, s, e, depth + 1, out);
            t = s;
            kids.retain(|&(_, _, k)| k != c);
        }
        if t > lo {
            out.push(PathStep {
                span,
                name,
                start: lo,
                end: t,
                depth,
            });
        }
    }
}

/// One segment of a critical path: `[start, end]` of the root's duration
/// blamed on `span`'s self-time.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// The span this segment's time is blamed on.
    pub span: SpanId,
    /// That span's name.
    pub name: String,
    /// Segment start.
    pub start: SimTime,
    /// Segment end.
    pub end: SimTime,
    /// Nesting depth below the root (root = 0).
    pub depth: usize,
}

impl PathStep {
    /// The segment's width.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_duration_since(self.start)
    }
}

/// The critical path through one root span: chronological self-time
/// segments that partition the root's `[start, end]` exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// The root span explained.
    pub root: SpanId,
    /// Root start.
    pub start: SimTime,
    /// Root end.
    pub end: SimTime,
    /// Chronological blame segments; durations sum to [`Self::total`].
    pub steps: Vec<PathStep>,
}

impl CriticalPath {
    /// The root span's duration — what the path explains.
    pub fn total(&self) -> SimDuration {
        self.end.saturating_duration_since(self.start)
    }

    /// Self-time per span name, in name order. Sums to [`Self::total`].
    pub fn blame(&self) -> Vec<(String, SimDuration)> {
        let mut by_name: BTreeMap<&str, SimDuration> = BTreeMap::new();
        for s in &self.steps {
            let d = by_name.entry(s.name.as_str()).or_insert(SimDuration::ZERO);
            *d = d.saturating_add(s.duration());
        }
        by_name
            .into_iter()
            .map(|(n, d)| (n.to_owned(), d))
            .collect()
    }

    /// Deterministic text rendering: one line per segment with interval,
    /// self-time and percentage of the total (percentages sum to 100 %).
    pub fn render(&self) -> String {
        let total = self.total().as_secs_f64();
        let mut out = format!(
            "critical path [{:.3}s \u{2192} {:.3}s] total {:.3}s\n",
            self.start.as_secs_f64(),
            self.end.as_secs_f64(),
            total
        );
        for s in &self.steps {
            let d = s.duration().as_secs_f64();
            let pct = if total > 0.0 { d / total * 100.0 } else { 0.0 };
            out.push_str(&format!(
                "  [{:>10.3}s \u{2192} {:>10.3}s] {:>9.3}s {:>5.1}%  {}{}\n",
                s.start.as_secs_f64(),
                s.end.as_secs_f64(),
                d,
                pct,
                "  ".repeat(s.depth),
                s.name
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// crash(10) → detect ends 17 → image_pull ends 19 → start ends 19
    /// (zero-width after clamping to the root, which closed at 19).
    fn recovery_like() -> (Tracer, SpanId) {
        let mut t = Tracer::unbounded();
        let root = t.span_start(secs(10), "recovery", SpanId::NONE, |e| {
            e.str("container", "web-3-0");
        });
        let detect = t.span_start(secs(10), "detect", root, |_| {});
        t.span_end(secs(17), detect, |_| {});
        let pull = t.span_start(secs(17), "image_pull", root, |_| {});
        t.span_end(secs(19), pull, |_| {});
        let start = t.span_start(secs(19), "container_start", root, |_| {});
        t.span_end(secs(19), start, |_| {});
        t.span_end(secs(19), root, |e| {
            e.bool("recovered", true);
        });
        (t, root)
    }

    #[test]
    fn forest_reconstructs_hierarchy() {
        let (t, root) = recovery_like();
        let f = SpanForest::from_tracer(&t);
        assert_eq!(f.len(), 4);
        assert_eq!(f.roots(), [root]);
        assert_eq!(f.children(root).len(), 3);
        let rec = f.get(root).unwrap();
        assert_eq!(rec.name, "recovery");
        assert_eq!(rec.duration(), SimDuration::from_secs(9));
        assert_eq!(rec.field("recovered"), Some(&FieldValue::Bool(true)));
        assert_eq!(
            rec.field("container"),
            Some(&FieldValue::Str("web-3-0".into()))
        );
    }

    #[test]
    fn critical_path_partitions_the_root_exactly() {
        let (t, root) = recovery_like();
        let f = SpanForest::from_tracer(&t);
        let p = f.critical_path(root).unwrap();
        assert_eq!(p.total(), SimDuration::from_secs(9));
        let sum: u64 = p.steps.iter().map(|s| s.duration().as_nanos()).sum();
        assert_eq!(sum, p.total().as_nanos(), "blame must sum to 100%");
        let names: Vec<&str> = p.steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["detect", "image_pull"]);
        let blame = p.blame();
        assert_eq!(
            blame,
            [
                ("detect".to_owned(), SimDuration::from_secs(7)),
                ("image_pull".to_owned(), SimDuration::from_secs(2)),
            ]
        );
    }

    #[test]
    fn parent_self_time_fills_gaps() {
        let mut t = Tracer::unbounded();
        let root = t.span_start(secs(0), "job", SpanId::NONE, |_| {});
        let child = t.span_start(secs(2), "work", root, |_| {});
        t.span_end(secs(5), child, |_| {});
        t.span_end(secs(8), root, |_| {});
        let f = SpanForest::from_tracer(&t);
        let p = f.critical_path(root).unwrap();
        // job[0..2], work[2..5], job[5..8]
        let names: Vec<&str> = p.steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["job", "work", "job"]);
        let blame = p.blame();
        assert_eq!(blame[0], ("job".to_owned(), SimDuration::from_secs(5)));
        assert_eq!(blame[1], ("work".to_owned(), SimDuration::from_secs(3)));
    }

    #[test]
    fn overlapping_children_pick_the_gating_one() {
        let mut t = Tracer::unbounded();
        let root = t.span_start(secs(0), "shuffle", SpanId::NONE, |_| {});
        let a = t.span_start(secs(0), "flow_a", root, |_| {});
        let b = t.span_start(secs(1), "flow_b", root, |_| {});
        t.span_end(secs(4), a, |_| {});
        t.span_end(secs(6), b, |_| {});
        t.span_end(secs(6), root, |_| {});
        let f = SpanForest::from_tracer(&t);
        let p = f.critical_path(root).unwrap();
        // flow_b gates [1..6]; flow_a covers the remaining [0..1].
        let names: Vec<&str> = p.steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["flow_a", "flow_b"]);
        assert_eq!(p.steps[0].duration(), SimDuration::from_secs(1));
        assert_eq!(p.steps[1].duration(), SimDuration::from_secs(5));
    }

    #[test]
    fn child_outliving_parent_is_clamped() {
        let mut t = Tracer::unbounded();
        let root = t.span_start(secs(0), "root", SpanId::NONE, |_| {});
        let late = t.span_start(secs(1), "late", root, |_| {});
        t.span_end(secs(2), root, |_| {});
        t.span_end(secs(9), late, |_| {});
        let f = SpanForest::from_tracer(&t);
        let p = f.critical_path(root).unwrap();
        assert_eq!(p.total(), SimDuration::from_secs(2));
        let sum: u64 = p.steps.iter().map(|s| s.duration().as_nanos()).sum();
        assert_eq!(sum, 2_000_000_000, "clamping keeps the partition exact");
    }

    #[test]
    fn disabled_tracer_allocates_no_spans() {
        let mut t = Tracer::disabled();
        let id = t.span_start(SimTime::ZERO, "never", SpanId::NONE, |_| {
            panic!("builder must not run when disabled")
        });
        assert!(id.is_none());
        t.span_end(SimTime::ZERO, id, |_| {
            panic!("builder must not run when disabled")
        });
        assert_eq!(t.emitted(), 0);
        assert!(SpanForest::from_tracer(&t).is_empty());
    }

    #[test]
    fn jsonl_is_stable_and_escaped() {
        let (t, _) = recovery_like();
        let f = SpanForest::from_tracer(&t);
        let a = f.to_jsonl();
        assert_eq!(a, SpanForest::from_tracer(&t).to_jsonl());
        assert_eq!(a.lines().count(), 4);
        assert!(a.contains("\"name\":\"recovery\""));
        assert!(a.contains("\"container\":\"web-3-0\""));
        assert!(a.contains("\"duration_ns\":9000000000"));
    }

    #[test]
    fn unclosed_span_exports_null_end() {
        let mut t = Tracer::unbounded();
        t.span_start(secs(1), "forever", SpanId::NONE, |_| {});
        let f = SpanForest::from_tracer(&t);
        assert!(f.to_jsonl().contains("\"end_ns\":null"));
        let rec = f.iter().next().unwrap();
        assert_eq!(rec.duration(), SimDuration::ZERO);
    }

    #[test]
    fn render_tree_indents_children() {
        let (t, root) = recovery_like();
        let f = SpanForest::from_tracer(&t);
        let tree = f.render_tree(root);
        assert!(tree.starts_with("recovery "));
        assert!(tree.contains("\n  detect "));
        assert!(tree.contains("\n  image_pull "));
    }
}
