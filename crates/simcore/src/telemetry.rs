//! Cluster-wide observability: labeled metric series and sim-time tracing.
//!
//! The paper's `pimaster` turns the PiCloud from a pile of boards into a
//! research instrument by exposing monitoring over the whole testbed
//! (§II-C). This module is that instrument for the scale model:
//!
//! * [`MetricsRegistry`] — a central bag of *labeled* series wrapping the
//!   [`Counter`] / [`TimeWeightedGauge`] / [`Histogram`] primitives of
//!   [`crate::metrics`]. A series is `(name, labels)` — e.g.
//!   `hardware_power_watts{node="3", rack="0"}` — so one registry holds the
//!   whole cluster's state, per node, rack, container, link or flow.
//! * [`Tracer`] — a ring-buffered, deterministic sim-time event tracer.
//!   When disabled it is zero-cost on the hot path: the closure that would
//!   build the event's fields is never called and nothing allocates.
//! * [`MetricsSnapshot`] — a point-in-time flattening of the registry with
//!   three exporters: JSONL ([`MetricsSnapshot::to_jsonl`]), CSV
//!   ([`MetricsSnapshot::to_csv`]) and Prometheus text
//!   ([`MetricsSnapshot::to_prometheus`]). All three are byte-deterministic
//!   for a given registry state: series are emitted in `(name, labels)`
//!   order, fields in insertion order.
//!
//! Label keys and metric names must match `[a-zA-Z_][a-zA-Z0-9_]*` so that
//! every exporter (Prometheus included) can carry them unchanged; label
//! *values* are free-form strings (escaped on export).
//!
//! # Example
//!
//! ```
//! use picloud_simcore::telemetry::MetricsRegistry;
//! use picloud_simcore::SimTime;
//!
//! let mut reg = MetricsRegistry::new(SimTime::ZERO);
//! reg.counter("requests_total", &[("node", "7")]).add(3);
//! reg.gauge("power_watts", &[("node", "7")])
//!     .set(SimTime::from_secs(1), 3.5);
//! let snap = reg.snapshot(SimTime::from_secs(2));
//! assert!(snap.to_prometheus().contains("requests_total{node=\"7\"} 3"));
//! ```

pub mod slo;
pub mod tsdb;

use crate::metrics::{Counter, Histogram, TimeWeightedGauge};
use crate::spans::SpanId;
use crate::time::SimTime;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;

/// Returns whether `name` is a valid metric name / label key:
/// `[a-zA-Z_][a-zA-Z0-9_]*`.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escapes `s` into `out` as the body of a JSON string literal.
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Escapes a Prometheus label value: backslash, double quote and newline
/// per the text exposition format.
fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats an `f64` as a JSON value (non-finite values become `null`,
/// which keeps the output parseable; finite values round-trip).
fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// A sorted, deduplicated set of `key=value` labels identifying one series.
///
/// Construction sorts by key, so `&[("b","2"),("a","1")]` and
/// `&[("a","1"),("b","2")]` name the same series.
///
/// # Panics
///
/// Construction panics on duplicate keys or a key that is not a valid
/// identifier (`[a-zA-Z_][a-zA-Z0-9_]*`) — both always indicate an
/// instrumentation bug.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Labels(Vec<(String, String)>);

impl Labels {
    /// No labels: the series is identified by its name alone.
    pub fn empty() -> Self {
        Labels(Vec::new())
    }

    /// Builds a label set from `key=value` pairs (any order).
    pub fn new(pairs: &[(&str, &str)]) -> Self {
        let mut v: Vec<(String, String)> = pairs
            .iter()
            .map(|(k, val)| {
                assert!(valid_name(k), "invalid label key {k:?}");
                ((*k).to_owned(), (*val).to_owned())
            })
            .collect();
        v.sort();
        for w in v.windows(2) {
            // lint: allow(P1) reason=windows(2) slices always hold exactly two elements
            assert!(w[0].0 != w[1].0, "duplicate label key {:?}", w[0].0);
        }
        Labels(v)
    }

    /// Iterates `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Whether there are no labels.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The value of label `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl fmt::Display for Labels {
    /// Prometheus-style rendering: `{a="1",b="2"}`, empty string if no
    /// labels.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return Ok(());
        }
        write!(f, "{{")?;
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            // Prometheus exposition format: backslash, quote and newline
            // must be escaped inside label values.
            write!(f, "{k}=\"{}\"", prom_escape(v))?;
        }
        write!(f, "}}")
    }
}

/// The identity of one series: metric name plus label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeriesKey {
    /// Metric name, e.g. `hardware_power_watts`.
    pub name: String,
    /// Identifying labels, e.g. `node="3", rack="0"`.
    pub labels: Labels,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        assert!(valid_name(name), "invalid metric name {name:?}");
        SeriesKey {
            name: name.to_owned(),
            labels: Labels::new(labels),
        }
    }
}

impl fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.name, self.labels)
    }
}

/// The error returned by the fallible registry accessors when creating a
/// new series would exceed the configured ceiling — the symptom of an
/// accidental per-flow or per-request label explosion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CardinalityLimitExceeded {
    /// The configured series-count ceiling that was hit.
    pub limit: usize,
    /// The series whose creation was refused.
    pub series: SeriesKey,
}

impl fmt::Display for CardinalityLimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "registry series limit {} reached; refusing to create {}",
            self.limit, self.series
        )
    }
}

impl std::error::Error for CardinalityLimitExceeded {}

/// A central registry of labeled counter / gauge / histogram series.
///
/// Keys are `(name, labels)`; all maps are `BTreeMap` so iteration — and
/// therefore every exported snapshot — is deterministic.
///
/// An optional **cardinality guard** ([`MetricsRegistry::set_series_limit`])
/// caps the total series count: the `try_*` accessors return
/// [`CardinalityLimitExceeded`] instead of silently growing, and the
/// infallible accessors panic. Unset by default.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    start: SimTime,
    series_limit: Option<usize>,
    counters: BTreeMap<SeriesKey, Counter>,
    gauges: BTreeMap<SeriesKey, TimeWeightedGauge>,
    histograms: BTreeMap<SeriesKey, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry whose gauges start observing at `start`.
    pub fn new(start: SimTime) -> Self {
        MetricsRegistry {
            start,
            ..MetricsRegistry::default()
        }
    }

    /// The instant the registry's gauges started observing.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Builder form of [`MetricsRegistry::set_series_limit`].
    pub fn with_series_limit(mut self, limit: usize) -> Self {
        self.series_limit = Some(limit);
        self
    }

    /// Caps the total series count at `limit` (`None` removes the cap).
    /// Existing series always stay readable and writable; only *new*
    /// series creation is refused at the ceiling.
    pub fn set_series_limit(&mut self, limit: Option<usize>) {
        self.series_limit = limit;
    }

    /// The configured series-count ceiling, if any.
    pub fn series_limit(&self) -> Option<usize> {
        self.series_limit
    }

    /// Returns an error if creating one more series (key not present in
    /// `exists`-check form) would exceed the ceiling.
    fn admit(&self, key: &SeriesKey, exists: bool) -> Result<(), CardinalityLimitExceeded> {
        match self.series_limit {
            Some(limit) if !exists && self.len() >= limit => Err(CardinalityLimitExceeded {
                limit,
                series: key.clone(),
            }),
            _ => Ok(()),
        }
    }

    /// The counter series `(name, labels)`, created at zero on first use.
    ///
    /// # Panics
    ///
    /// Panics if creating the series would exceed a configured
    /// [series limit](MetricsRegistry::set_series_limit); use
    /// [`MetricsRegistry::try_counter`] to handle that as an error.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)]) -> &mut Counter {
        match self.try_counter(name, labels) {
            Ok(c) => c,
            // lint: allow(P1) reason=the documented cardinality-guard diagnostic; callers opting into a ceiling who want an error use try_counter
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`MetricsRegistry::counter`]: refuses to create a
    /// new series past the configured ceiling.
    pub fn try_counter(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Result<&mut Counter, CardinalityLimitExceeded> {
        let key = SeriesKey::new(name, labels);
        self.admit(&key, self.counters.contains_key(&key))?;
        Ok(self.counters.entry(key).or_default())
    }

    /// The gauge series `(name, labels)`, created holding `0.0` on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics if creating the series would exceed a configured
    /// [series limit](MetricsRegistry::set_series_limit); use
    /// [`MetricsRegistry::try_gauge`] to handle that as an error.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)]) -> &mut TimeWeightedGauge {
        match self.try_gauge(name, labels) {
            Ok(g) => g,
            // lint: allow(P1) reason=the documented cardinality-guard diagnostic; callers opting into a ceiling who want an error use try_gauge
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`MetricsRegistry::gauge`]: refuses to create a
    /// new series past the configured ceiling.
    pub fn try_gauge(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Result<&mut TimeWeightedGauge, CardinalityLimitExceeded> {
        let key = SeriesKey::new(name, labels);
        self.admit(&key, self.gauges.contains_key(&key))?;
        let start = self.start;
        Ok(self
            .gauges
            .entry(key)
            .or_insert_with(|| TimeWeightedGauge::new(start, 0.0)))
    }

    /// The histogram series `(name, labels)`, created empty on first use.
    ///
    /// # Panics
    ///
    /// Panics if creating the series would exceed a configured
    /// [series limit](MetricsRegistry::set_series_limit); use
    /// [`MetricsRegistry::try_histogram`] to handle that as an error.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)]) -> &mut Histogram {
        match self.try_histogram(name, labels) {
            Ok(h) => h,
            // lint: allow(P1) reason=the documented cardinality-guard diagnostic; callers opting into a ceiling who want an error use try_histogram
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`MetricsRegistry::histogram`]: refuses to create
    /// a new series past the configured ceiling.
    pub fn try_histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Result<&mut Histogram, CardinalityLimitExceeded> {
        let key = SeriesKey::new(name, labels);
        self.admit(&key, self.histograms.contains_key(&key))?;
        Ok(self.histograms.entry(key).or_default())
    }

    /// Read-only lookup of a counter series.
    pub fn get_counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Counter> {
        self.counters.get(&SeriesKey::new(name, labels))
    }

    /// Read-only lookup of a gauge series.
    pub fn get_gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<&TimeWeightedGauge> {
        self.gauges.get(&SeriesKey::new(name, labels))
    }

    /// Read-only lookup of a histogram series.
    pub fn get_histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms.get(&SeriesKey::new(name, labels))
    }

    /// Number of series of all three kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether no series have been created.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates counter series in `(name, labels)` order.
    pub fn counters(&self) -> impl Iterator<Item = (&SeriesKey, &Counter)> {
        self.counters.iter()
    }

    /// Iterates gauge series in `(name, labels)` order.
    pub fn gauges(&self) -> impl Iterator<Item = (&SeriesKey, &TimeWeightedGauge)> {
        self.gauges.iter()
    }

    /// Iterates histogram series in `(name, labels)` order.
    pub fn histograms(&self) -> impl Iterator<Item = (&SeriesKey, &Histogram)> {
        self.histograms.iter()
    }

    /// Flattens every series into a point-in-time [`MetricsSnapshot`].
    ///
    /// Gauges summarise over `[start, now]` (time-weighted mean and
    /// integral), histograms report the [`Histogram::summary`] statistics.
    pub fn snapshot(&self, now: SimTime) -> MetricsSnapshot {
        let mut rows = Vec::with_capacity(self.len());
        for (key, c) in &self.counters {
            rows.push(MetricRow {
                key: key.clone(),
                value: MetricValue::Counter { total: c.value() },
            });
        }
        for (key, g) in &self.gauges {
            rows.push(MetricRow {
                key: key.clone(),
                value: MetricValue::Gauge {
                    value: g.value(),
                    mean: g.mean(now),
                    min: g.min(),
                    max: g.max(),
                    integral: g.integral(now),
                },
            });
        }
        for (key, h) in &self.histograms {
            rows.push(MetricRow {
                key: key.clone(),
                value: MetricValue::Histogram {
                    summary: h.summary(),
                },
            });
        }
        rows.sort_by(|a, b| a.key.cmp(&b.key));
        MetricsSnapshot {
            taken_at: now,
            rows,
        }
    }
}

/// The summarised value of one series in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonic total.
    Counter {
        /// The counter's value at snapshot time.
        total: u64,
    },
    /// A time-weighted gauge, summarised over the observation window.
    Gauge {
        /// Instantaneous value at snapshot time.
        value: f64,
        /// Time-weighted mean over the window.
        mean: f64,
        /// Smallest value ever held.
        min: f64,
        /// Largest value ever held.
        max: f64,
        /// Integral over time (value × seconds) — watts become joules.
        integral: f64,
    },
    /// A distribution; `None` when the histogram recorded nothing.
    Histogram {
        /// Summary statistics, absent for an empty histogram.
        summary: Option<crate::metrics::HistogramSummary>,
    },
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter { .. } => "counter",
            MetricValue::Gauge { .. } => "gauge",
            MetricValue::Histogram { .. } => "histogram",
        }
    }
}

/// One series in a snapshot: identity plus summarised value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    /// Which series this row describes.
    pub key: SeriesKey,
    /// Its summarised value.
    pub value: MetricValue,
}

/// A point-in-time flattening of a [`MetricsRegistry`], ready for export.
///
/// Rows are sorted by `(name, labels)`; every exporter below is
/// byte-deterministic given the same registry state.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// The sim-time instant the snapshot was taken.
    pub taken_at: SimTime,
    /// One row per series, in `(name, labels)` order.
    pub rows: Vec<MetricRow>,
}

impl MetricsSnapshot {
    /// One JSON object per line, one line per series.
    ///
    /// Schema per line: `{"t_ns", "name", "labels": {..}, "kind", ...}`
    /// with kind-specific value fields (`total` for counters;
    /// `value`/`mean`/`min`/`max`/`integral` for gauges; the
    /// [`Histogram::summary`] fields for histograms, or `"count": 0` when
    /// empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&format!(
                "{{\"t_ns\":{},\"name\":\"",
                self.taken_at.as_nanos()
            ));
            json_escape(&row.key.name, &mut out);
            out.push_str("\",\"labels\":{");
            for (i, (k, v)) in row.key.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape(k, &mut out);
                out.push_str("\":\"");
                json_escape(v, &mut out);
                out.push('"');
            }
            out.push_str(&format!("}},\"kind\":\"{}\"", row.value.kind()));
            match &row.value {
                MetricValue::Counter { total } => {
                    out.push_str(&format!(",\"total\":{total}"));
                }
                MetricValue::Gauge {
                    value,
                    mean,
                    min,
                    max,
                    integral,
                } => {
                    for (k, v) in [
                        ("value", value),
                        ("mean", mean),
                        ("min", min),
                        ("max", max),
                        ("integral", integral),
                    ] {
                        out.push_str(&format!(",\"{k}\":"));
                        json_f64(*v, &mut out);
                    }
                }
                MetricValue::Histogram { summary: None } => {
                    out.push_str(",\"count\":0");
                }
                MetricValue::Histogram { summary: Some(s) } => {
                    out.push_str(&format!(",\"count\":{}", s.count));
                    for (k, v) in [
                        ("sum", s.sum),
                        ("mean", s.mean),
                        ("min", s.min),
                        ("max", s.max),
                        ("p50", s.p50),
                        ("p90", s.p90),
                        ("p99", s.p99),
                        ("stddev", s.stddev),
                    ] {
                        out.push_str(&format!(",\"{k}\":"));
                        json_f64(v, &mut out);
                    }
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// Long-format CSV: `name,labels,kind,stat,value`, one row per
    /// statistic. Labels render as `k=v;k=v` inside a double-quoted field.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,labels,kind,stat,value\n");
        for row in &self.rows {
            let labels: Vec<String> = row
                .key
                .labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let labels = labels.join(";").replace('"', "\"\"");
            let mut stat = |name: &str, value: String| {
                out.push_str(&format!(
                    "{},\"{labels}\",{},{name},{value}\n",
                    row.key.name,
                    row.value.kind()
                ));
            };
            match &row.value {
                MetricValue::Counter { total } => stat("total", total.to_string()),
                MetricValue::Gauge {
                    value,
                    mean,
                    min,
                    max,
                    integral,
                } => {
                    stat("value", value.to_string());
                    stat("mean", mean.to_string());
                    stat("min", min.to_string());
                    stat("max", max.to_string());
                    stat("integral", integral.to_string());
                }
                MetricValue::Histogram { summary: None } => stat("count", "0".to_owned()),
                MetricValue::Histogram { summary: Some(s) } => {
                    stat("count", s.count.to_string());
                    stat("sum", s.sum.to_string());
                    stat("mean", s.mean.to_string());
                    stat("min", s.min.to_string());
                    stat("max", s.max.to_string());
                    stat("p50", s.p50.to_string());
                    stat("p90", s.p90.to_string());
                    stat("p99", s.p99.to_string());
                    stat("stddev", s.stddev.to_string());
                }
            }
        }
        out
    }

    /// Prometheus text exposition format.
    ///
    /// Counters and gauges export their instantaneous value; histograms
    /// export as summaries (`{quantile="…"}` series plus `_sum` and
    /// `_count`). Empty histograms export only `_count 0`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_typed: Option<&str> = None;
        for row in &self.rows {
            let name = row.key.name.as_str();
            if last_typed != Some(name) {
                out.push_str(&format!(
                    "# TYPE {name} {}\n",
                    match row.value {
                        MetricValue::Counter { .. } => "counter",
                        MetricValue::Gauge { .. } => "gauge",
                        MetricValue::Histogram { .. } => "summary",
                    }
                ));
                last_typed = Some(name);
            }
            let labels = row.key.labels.to_string();
            match &row.value {
                MetricValue::Counter { total } => {
                    out.push_str(&format!("{name}{labels} {total}\n"));
                }
                MetricValue::Gauge { value, .. } => {
                    out.push_str(&format!("{name}{labels} {value}\n"));
                }
                MetricValue::Histogram { summary } => {
                    let quantile = |q: &str, v: f64, out: &mut String| {
                        let mut all: Vec<String> = row
                            .key
                            .labels
                            .iter()
                            .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
                            .collect();
                        all.push(format!("quantile=\"{q}\""));
                        out.push_str(&format!("{name}{{{}}} {v}\n", all.join(",")));
                    };
                    match summary {
                        None => out.push_str(&format!("{name}_count{labels} 0\n")),
                        Some(s) => {
                            quantile("0.5", s.p50, &mut out);
                            quantile("0.9", s.p90, &mut out);
                            quantile("0.99", s.p99, &mut out);
                            out.push_str(&format!("{name}_sum{labels} {}\n", s.sum));
                            out.push_str(&format!("{name}_count{labels} {}\n", s.count));
                        }
                    }
                }
            }
        }
        out
    }
}

/// A typed field value on a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values export as `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Free-form string (escaped on export).
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One structured trace event at a sim-time instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Global emission sequence number (survives ring-buffer eviction, so
    /// gaps reveal dropped events).
    pub seq: u64,
    /// When the event happened on the virtual clock.
    pub time: SimTime,
    /// Event kind, e.g. `node_crash` or `container_rescheduled` — the
    /// catalogue lives in `OBSERVABILITY.md`.
    pub kind: &'static str,
    /// Event-specific fields, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceEvent {
    /// The value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Builder handed to the [`Tracer::emit`] closure; collects the event's
/// fields.
#[derive(Debug, Default)]
pub struct EventFields(Vec<(&'static str, FieldValue)>);

impl EventFields {
    /// Attaches an unsigned-integer field.
    pub fn u64(&mut self, key: &'static str, value: u64) -> &mut Self {
        self.0.push((key, FieldValue::U64(value)));
        self
    }

    /// Attaches a signed-integer field.
    pub fn i64(&mut self, key: &'static str, value: i64) -> &mut Self {
        self.0.push((key, FieldValue::I64(value)));
        self
    }

    /// Attaches a floating-point field.
    pub fn f64(&mut self, key: &'static str, value: f64) -> &mut Self {
        self.0.push((key, FieldValue::F64(value)));
        self
    }

    /// Attaches a boolean field.
    pub fn bool(&mut self, key: &'static str, value: bool) -> &mut Self {
        self.0.push((key, FieldValue::Bool(value)));
        self
    }

    /// Attaches a string field.
    pub fn str(&mut self, key: &'static str, value: &str) -> &mut Self {
        self.0.push((key, FieldValue::Str(value.to_owned())));
        self
    }
}

/// A deterministic, ring-buffered sim-time event tracer.
///
/// * **Disabled** ([`Tracer::disabled`]) — [`Tracer::emit`] returns
///   immediately without calling the field-builder closure: zero
///   allocations, zero events. This is the hot-path default.
/// * **Ring** ([`Tracer::ring`]) — keeps the most recent `capacity`
///   events; older events are dropped (counted in [`Tracer::dropped`]).
/// * **Unbounded** ([`Tracer::unbounded`]) — keeps everything; use for
///   experiment-scale traces where the full history is the artifact.
///
/// # Example
///
/// ```
/// use picloud_simcore::telemetry::Tracer;
/// use picloud_simcore::SimTime;
///
/// let mut tracer = Tracer::ring(2);
/// for i in 0..3u64 {
///     tracer.emit(SimTime::from_secs(i), "tick", |e| {
///         e.u64("i", i);
///     });
/// }
/// assert_eq!(tracer.len(), 2); // oldest evicted
/// assert_eq!(tracer.dropped(), 1);
///
/// let mut off = Tracer::disabled();
/// off.emit(SimTime::ZERO, "never", |_| unreachable!("not built"));
/// assert!(off.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tracer {
    enabled: bool,
    capacity: Option<usize>,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    seq: u64,
    /// Last allocated span id; ids start at 1 so zero can mean
    /// [`SpanId::NONE`].
    next_span: u64,
}

impl Tracer {
    /// A tracer that records nothing and never calls the field builder.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A tracer keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (use [`Tracer::disabled`] for that).
    pub fn ring(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Tracer {
            enabled: true,
            capacity: Some(capacity),
            ..Tracer::default()
        }
    }

    /// A tracer that keeps every event.
    pub fn unbounded() -> Self {
        Tracer {
            enabled: true,
            ..Tracer::default()
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event at `time`. The `build` closure attaches fields;
    /// it is only called when the tracer is enabled, so a disabled tracer
    /// costs one branch and no allocation.
    pub fn emit(
        &mut self,
        time: SimTime,
        kind: &'static str,
        build: impl FnOnce(&mut EventFields),
    ) {
        if !self.enabled {
            return;
        }
        let mut fields = EventFields::default();
        build(&mut fields);
        if let Some(cap) = self.capacity {
            if self.events.len() == cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(TraceEvent {
            seq: self.seq,
            time,
            kind,
            fields: fields.0,
        });
        self.seq += 1;
    }

    /// Records a span — an event covering `[start, end]` — as an event at
    /// `start` with a `duration_ns` field.
    pub fn emit_span(
        &mut self,
        start: SimTime,
        end: SimTime,
        kind: &'static str,
        build: impl FnOnce(&mut EventFields),
    ) {
        self.emit(start, kind, |e| {
            e.u64(
                "duration_ns",
                end.saturating_duration_since(start).as_nanos(),
            );
            build(e);
        });
    }

    /// Opens a causal span at `time`: allocates a fresh [`SpanId`] and
    /// records a `span_start` event carrying the id, the span `name` and
    /// (when not [`SpanId::NONE`]) the `parent` link, plus whatever
    /// fields `build` attaches. Close it with [`Tracer::span_end`];
    /// reconstruct with [`crate::spans::SpanForest`].
    ///
    /// Disabled tracers return [`SpanId::NONE`] immediately — no id is
    /// consumed, `build` never runs, nothing allocates — so instrumented
    /// code can thread span ids unconditionally.
    pub fn span_start(
        &mut self,
        time: SimTime,
        name: &'static str,
        parent: SpanId,
        build: impl FnOnce(&mut EventFields),
    ) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        self.next_span += 1;
        let id = SpanId(self.next_span);
        self.emit(time, "span_start", |e| {
            e.u64("span", id.0);
            if parent.is_some() {
                e.u64("parent", parent.0);
            }
            e.str("name", name);
            build(e);
        });
        id
    }

    /// Closes `span` at `time` with a `span_end` event. A no-op when the
    /// tracer is disabled or `span` is [`SpanId::NONE`] (the id a
    /// disabled tracer handed out), so enabled and disabled runs take the
    /// same instrumented code path.
    pub fn span_end(&mut self, time: SimTime, span: SpanId, build: impl FnOnce(&mut EventFields)) {
        if !self.enabled || span.is_none() {
            return;
        }
        self.emit(time, "span_end", |e| {
            e.u64("span", span.0);
            build(e);
        });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever emitted (retained + dropped).
    pub fn emitted(&self) -> u64 {
        self.seq
    }

    /// One JSON object per line, one line per retained event, oldest
    /// first: `{"seq", "t_ns", "kind", ...fields}`. Field keys must not
    /// collide with the three envelope keys; the trace catalogue in
    /// `OBSERVABILITY.md` reserves them.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&format!(
                "{{\"seq\":{},\"t_ns\":{},\"kind\":\"{}\"",
                ev.seq,
                ev.time.as_nanos(),
                ev.kind
            ));
            for (k, v) in &ev.fields {
                debug_assert!(
                    !matches!(*k, "seq" | "t_ns" | "kind"),
                    "trace field {k:?} collides with an envelope key"
                );
                out.push_str(&format!(",\"{k}\":"));
                match v {
                    FieldValue::U64(v) => out.push_str(&format!("{v}")),
                    FieldValue::I64(v) => out.push_str(&format!("{v}")),
                    FieldValue::F64(v) => json_f64(*v, &mut out),
                    FieldValue::Bool(v) => out.push_str(&format!("{v}")),
                    FieldValue::Str(s) => {
                        out.push('"');
                        json_escape(s, &mut out);
                        out.push('"');
                    }
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

/// A registry and tracer travelling together — the handle an instrumented
/// run (e.g. `picloud::recovery::run_recovery_with_telemetry`) threads
/// through its world — plus an optional windowed time-series store fed by
/// the run's scrape hooks.
///
/// When built [`TelemetrySink::disabled`], instrumented code must skip its
/// recording blocks (check [`TelemetrySink::is_enabled`]) so a
/// non-observed run does exactly the work of an unobserved one. The same
/// contract extends to the tsdb: a sink without one must leave the run
/// byte-identical to an observed run with one — scraping only *reads* the
/// registry and never touches the simulation.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySink {
    enabled: bool,
    /// Labeled metric series recorded by the run.
    pub registry: MetricsRegistry,
    /// Structured sim-time events recorded by the run.
    pub tracer: Tracer,
    /// Windowed sample store, present when the run was asked to scrape.
    pub tsdb: Option<tsdb::TimeSeriesDb>,
}

impl TelemetrySink {
    /// A sink that records nothing; the tracer is disabled and
    /// [`TelemetrySink::is_enabled`] is `false`.
    pub fn disabled() -> Self {
        TelemetrySink::default()
    }

    /// A sink recording metrics from `start` and keeping every trace
    /// event.
    pub fn recording(start: SimTime) -> Self {
        TelemetrySink {
            enabled: true,
            registry: MetricsRegistry::new(start),
            tracer: Tracer::unbounded(),
            tsdb: None,
        }
    }

    /// Same, but the tracer keeps only the most recent `capacity` events.
    pub fn recording_ring(start: SimTime, capacity: usize) -> Self {
        TelemetrySink {
            enabled: true,
            registry: MetricsRegistry::new(start),
            tracer: Tracer::ring(capacity),
            tsdb: None,
        }
    }

    /// A recording sink that additionally samples every series into a
    /// [`tsdb::TimeSeriesDb`] on the `scrape` grid.
    pub fn recording_with_tsdb(start: SimTime, scrape: tsdb::ScrapeConfig) -> Self {
        TelemetrySink {
            tsdb: Some(tsdb::TimeSeriesDb::new(start, scrape)),
            ..TelemetrySink::recording(start)
        }
    }

    /// Whether instrumented code should record at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The windowed sample store, if this sink scrapes.
    pub fn tsdb(&self) -> Option<&tsdb::TimeSeriesDb> {
        self.tsdb.as_ref()
    }

    /// Samples the registry at `now` if a scrape-grid instant has come
    /// due. Drivers call this from periodic work they already do (e.g. a
    /// heartbeat sweep) so observation adds no simulation events. Returns
    /// whether a scrape happened.
    pub fn scrape_due(&mut self, now: SimTime) -> bool {
        match &mut self.tsdb {
            Some(db) if db.due(now) => {
                db.record(&self.registry, now);
                true
            }
            _ => false,
        }
    }

    /// Unconditionally samples the registry at `now` (deduplicated per
    /// instant). Drivers call this at run start and run end so every
    /// series has boundary samples — the anchor of the full-window
    /// exactness guarantees in [`tsdb`].
    pub fn scrape_now(&mut self, now: SimTime) {
        if let Some(db) = &mut self.tsdb {
            db.record(&self.registry, now);
        }
    }

    /// Flattens the registry into a [`MetricsSnapshot`] and appends the
    /// sink's own health series, so every export shows whether the
    /// observation layer itself lost data:
    ///
    /// * `telemetry_series_count` — registry cardinality at snapshot time;
    /// * `telemetry_trace_dropped_total` — events evicted by a ring
    ///   tracer ([`Tracer::dropped`]);
    /// * `telemetry_tsdb_samples_total` / `telemetry_tsdb_bytes_total` —
    ///   scrape volume, present only when the sink scrapes.
    ///
    /// A disabled sink returns the plain (empty) registry snapshot.
    pub fn snapshot(&self, now: SimTime) -> MetricsSnapshot {
        let mut snap = self.registry.snapshot(now);
        if !self.enabled {
            return snap;
        }
        let count = self.registry.len() as f64;
        snap.rows.push(MetricRow {
            key: SeriesKey::new("telemetry_series_count", &[]),
            value: MetricValue::Gauge {
                value: count,
                mean: count,
                min: count,
                max: count,
                integral: 0.0,
            },
        });
        snap.rows.push(MetricRow {
            key: SeriesKey::new("telemetry_trace_dropped_total", &[]),
            value: MetricValue::Counter {
                total: self.tracer.dropped(),
            },
        });
        if let Some(db) = &self.tsdb {
            snap.rows.push(MetricRow {
                key: SeriesKey::new("telemetry_tsdb_samples_total", &[]),
                value: MetricValue::Counter {
                    total: db.samples(),
                },
            });
            snap.rows.push(MetricRow {
                key: SeriesKey::new("telemetry_tsdb_bytes_total", &[]),
                value: MetricValue::Counter {
                    total: db.bytes() as u64,
                },
            });
        }
        snap.rows.sort_by(|a, b| a.key.cmp(&b.key));
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_sort_and_compare() {
        let a = Labels::new(&[("b", "2"), ("a", "1")]);
        let b = Labels::new(&[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.get("a"), Some("1"));
        assert_eq!(a.to_string(), "{a=\"1\",b=\"2\"}");
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_label_keys_panic() {
        Labels::new(&[("a", "1"), ("a", "2")]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_metric_name_panics() {
        MetricsRegistry::new(SimTime::ZERO).counter("has space", &[]);
    }

    #[test]
    fn registry_series_are_independent_per_label() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        reg.counter("req", &[("node", "0")]).add(1);
        reg.counter("req", &[("node", "1")]).add(2);
        assert_eq!(reg.get_counter("req", &[("node", "0")]).unwrap().value(), 1);
        assert_eq!(reg.get_counter("req", &[("node", "1")]).unwrap().value(), 2);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn snapshot_rows_are_sorted_and_deterministic() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        reg.counter("z_total", &[]).add(1);
        reg.gauge("a_watts", &[("node", "1")])
            .set(SimTime::from_secs(1), 2.0);
        reg.histogram("m_ms", &[]).observe(4.0);
        let snap = reg.snapshot(SimTime::from_secs(2));
        let names: Vec<&str> = snap.rows.iter().map(|r| r.key.name.as_str()).collect();
        assert_eq!(names, ["a_watts", "m_ms", "z_total"]);
        assert_eq!(
            snap.to_jsonl(),
            reg.snapshot(SimTime::from_secs(2)).to_jsonl()
        );
    }

    #[test]
    fn exporters_cover_all_kinds() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        reg.counter("requests_total", &[("node", "3")]).add(7);
        reg.gauge("power_watts", &[("node", "3")])
            .set(SimTime::from_secs(5), 3.5);
        reg.histogram("latency_ms", &[]).extend([1.0, 2.0, 3.0]);
        reg.histogram("empty_ms", &[]);
        let snap = reg.snapshot(SimTime::from_secs(10));

        let jsonl = snap.to_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        assert!(jsonl.contains("\"name\":\"requests_total\""));
        assert!(jsonl.contains("\"total\":7"));
        assert!(jsonl.contains("\"p99\":3"));
        assert!(jsonl.contains("\"count\":0"));

        let csv = snap.to_csv();
        assert!(csv.starts_with("name,labels,kind,stat,value\n"));
        assert!(csv.contains("requests_total,\"node=3\",counter,total,7"));
        assert!(csv.contains("power_watts,\"node=3\",gauge,value,3.5"));

        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE requests_total counter"));
        assert!(prom.contains("requests_total{node=\"3\"} 7"));
        assert!(prom.contains("# TYPE latency_ms summary"));
        assert!(prom.contains("latency_ms{quantile=\"0.5\"} 2"));
        assert!(prom.contains("latency_ms_count 3"));
        assert!(prom.contains("empty_ms_count 0"));
    }

    #[test]
    fn gauge_snapshot_reports_time_weighted_mean() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        reg.gauge("u", &[]).set(SimTime::ZERO, 1.0);
        reg.gauge("u", &[]).set(SimTime::from_secs(1), 0.0);
        let snap = reg.snapshot(SimTime::from_secs(10));
        let MetricValue::Gauge { mean, .. } = snap.rows[0].value else {
            panic!("gauge row expected");
        };
        assert!((mean - 0.1).abs() < 1e-12);
    }

    #[test]
    fn tracer_records_in_order_with_fields() {
        let mut t = Tracer::unbounded();
        t.emit(SimTime::from_secs(1), "node_crash", |e| {
            e.u64("node", 3).str("why", "churn");
        });
        t.emit_span(
            SimTime::from_secs(2),
            SimTime::from_secs(4),
            "outage",
            |e| {
                e.str("container", "web-3-0");
            },
        );
        assert_eq!(t.len(), 2);
        let ev: Vec<&TraceEvent> = t.events().collect();
        assert_eq!(ev[0].kind, "node_crash");
        assert_eq!(ev[0].field("node"), Some(&FieldValue::U64(3)));
        assert_eq!(
            ev[1].field("duration_ns"),
            Some(&FieldValue::U64(2_000_000_000))
        );
        let jsonl = t.to_jsonl();
        assert_eq!(
            jsonl.lines().next().unwrap(),
            "{\"seq\":0,\"t_ns\":1000000000,\"kind\":\"node_crash\",\"node\":3,\"why\":\"churn\"}"
        );
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let mut t = Tracer::disabled();
        t.emit(SimTime::ZERO, "never", |_| {
            panic!("field builder must not run when disabled")
        });
        assert!(t.is_empty());
        assert_eq!(t.emitted(), 0);
        assert_eq!(t.to_jsonl(), "");
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut t = Tracer::ring(3);
        for i in 0..10u64 {
            t.emit(SimTime::from_secs(i), "tick", |e| {
                e.u64("i", i);
            });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.emitted(), 10);
        let seqs: Vec<u64> = t.events().map(|e| e.seq).collect();
        assert_eq!(seqs, [7, 8, 9]);
    }

    #[test]
    fn trace_jsonl_escapes_strings() {
        let mut t = Tracer::unbounded();
        t.emit(SimTime::ZERO, "note", |e| {
            e.str("msg", "a \"quoted\"\nline");
        });
        assert!(t.to_jsonl().contains("\"msg\":\"a \\\"quoted\\\"\\nline\""));
    }

    #[test]
    fn prometheus_escapes_label_values() {
        // The exposition format requires \\, \" and \n escapes in label
        // values — including on the quantile series of summaries.
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        let awkward = "a\\b \"c\"\nd";
        reg.counter("c_total", &[("v", awkward)]).add(1);
        reg.histogram("h_ms", &[("v", awkward)]).observe(1.0);
        let prom = reg.snapshot(SimTime::ZERO).to_prometheus();
        let escaped = "a\\\\b \\\"c\\\"\\nd";
        assert!(
            prom.contains(&format!("c_total{{v=\"{escaped}\"}} 1")),
            "{prom}"
        );
        assert!(
            prom.contains(&format!("h_ms{{v=\"{escaped}\",quantile=\"0.5\"}}")),
            "{prom}"
        );
        // With the newline escaped, every record stays on one line.
        assert_eq!(prom.lines().count(), 8, "one record per line: {prom}");
    }

    #[test]
    fn csv_quotes_label_field() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        reg.counter("c_total", &[("v", "say \"hi\", twice")]).add(2);
        let csv = reg.snapshot(SimTime::ZERO).to_csv();
        // The labels field is double-quoted with embedded quotes doubled,
        // so the comma inside the value does not split the row.
        assert!(
            csv.contains("c_total,\"v=say \"\"hi\"\", twice\",counter,total,2"),
            "{csv}"
        );
    }

    #[test]
    fn jsonl_round_trips_field_value_variants() {
        use serde::Content;
        let mut t = Tracer::unbounded();
        t.emit(SimTime::from_secs(1), "kinds", |e| {
            e.u64("u", u64::MAX)
                .i64("i", -42)
                .f64("f", 1.5)
                .f64("nan", f64::NAN)
                .bool("b", true)
                .str("s", "tab\there");
        });
        let jsonl = t.to_jsonl();
        let v: Content = serde_json::from_str(jsonl.trim()).expect("line parses");
        assert_eq!(v.get("u"), Some(&Content::U64(u64::MAX)));
        assert_eq!(v.get("i"), Some(&Content::I64(-42)));
        assert_eq!(v.get("f"), Some(&Content::F64(1.5)));
        assert_eq!(v.get("nan"), Some(&Content::Null), "non-finite → null");
        assert_eq!(v.get("b"), Some(&Content::Bool(true)));
        assert_eq!(v.get("s"), Some(&Content::Str("tab\there".to_owned())));
        assert_eq!(v.get("t_ns"), Some(&Content::U64(1_000_000_000)));
    }

    #[test]
    fn metrics_jsonl_lines_parse_as_json() {
        use serde::Content;
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        reg.counter("c_total", &[("v", "x\"y\\z\nw")]).add(1);
        reg.gauge("g", &[]).set(SimTime::ZERO, f64::INFINITY);
        for line in reg.snapshot(SimTime::from_secs(1)).to_jsonl().lines() {
            let v: Content = serde_json::from_str(line).expect("line parses");
            assert!(v.get("name").is_some());
            // The non-finite gauge value must export as null, not `inf`.
            if v.get("name") == Some(&Content::Str("g".to_owned())) {
                assert_eq!(v.get("value"), Some(&Content::Null));
            } else {
                assert_eq!(
                    v.get("labels").and_then(|l| l.get("v")),
                    Some(&Content::Str("x\"y\\z\nw".to_owned())),
                    "label value must round-trip through the escaping"
                );
            }
        }
    }

    #[test]
    fn series_limit_refuses_new_series_but_keeps_existing_writable() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO).with_series_limit(2);
        reg.counter("a_total", &[]).add(1);
        reg.gauge("b", &[]).set(SimTime::ZERO, 1.0);
        let err = reg
            .try_counter("c_total", &[("shard", "7")])
            .expect_err("the third series must be refused");
        assert_eq!(err.limit, 2);
        assert_eq!(err.series.name, "c_total");
        assert!(err.to_string().contains("c_total"), "{err}");
        assert!(reg.try_histogram("d_seconds", &[]).is_err());
        // Existing series stay writable at the ceiling; raising the cap
        // admits new ones again.
        reg.counter("a_total", &[]).add(1);
        assert_eq!(reg.get_counter("a_total", &[]).map(Counter::value), Some(2));
        reg.set_series_limit(None);
        assert!(reg.try_counter("c_total", &[]).is_ok());
    }

    #[test]
    #[should_panic(expected = "series limit")]
    fn infallible_accessor_panics_at_the_series_ceiling() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO).with_series_limit(1);
        reg.gauge("a", &[]).set(SimTime::ZERO, 1.0);
        reg.gauge("b", &[]).set(SimTime::ZERO, 2.0);
    }
}
