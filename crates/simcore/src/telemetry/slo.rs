//! Service-level objectives: whole-run verdicts and Google-SRE-style
//! multi-window, multi-burn-rate alerting.
//!
//! Two evaluation planes live here:
//!
//! 1. **Whole-run** — an [`SloRule`] reads one statistic out of the final
//!    [`MetricsSnapshot`] and maps its burn to a [`Verdict`]. Cheap and
//!    always available, but blind to transients: a five-minute brownout
//!    that burns half the error budget vanishes into a 90-minute average.
//! 2. **Windowed** — a [`BurnRateAlert`] evaluates an SLI ratio over a
//!    *pair* of trailing windows of the scrape timeline in a
//!    [`TimeSeriesDb`] (the Google SRE
//!    multi-window, multi-burn-rate pattern: the long window gives
//!    significance, the short window makes the alert reset quickly). The
//!    alert walks a `pending → firing → resolved` state machine at every
//!    scrape instant and [`AlertPolicy::evaluate`] exports the resulting
//!    [`AlertTimeline`] byte-deterministically. `tests/tsdb.rs` pins a
//!    gray-fault scenario where the fast window PAGEs while the whole-run
//!    report stays PASS — the whole reason this plane exists.
//!
//! The rule's **burn rate** is how fast the run is consuming its error
//! budget:
//!
//! * [`Objective::UpperBound`] — `burn = observed / target`. At the
//!   target the burn is exactly 1; twice the target burns at 2×.
//! * [`Objective::LowerBound`] — `burn = target / observed`. Falling to
//!   half the target burns at 2×.
//!
//! Burn maps to a [`Verdict`] through the rule's thresholds:
//! `PASS` while `burn < warn_burn`, `WARN` from `warn_burn`, `PAGE` from
//! `page_burn`. A rule whose series (or statistic) is absent from the
//! snapshot reports [`Verdict::NoData`] — missing telemetry is something
//! an operator should see, not silently pass.
//!
//! [`SloPolicy::picloud_default`] carries the testbed-wide objectives
//! (MTTR, SDN convergence, panel staleness); every experiment run through
//! `picloud::telemetry::ExperimentTelemetry` gets its verdict section from
//! it. Evaluation is pure and deterministic: same snapshot, same report,
//! byte for byte.

use super::tsdb::{QueryFn, TimeSeriesDb};
use super::{MetricValue, MetricsSnapshot};
use crate::time::{SimDuration, SimTime};
use std::fmt;

/// Which summarised statistic of a series a rule reads.
///
/// Statistics are kind-specific; reading a statistic the series kind does
/// not expose (e.g. `P99` of a counter) yields no data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stat {
    /// Counter total.
    Total,
    /// Gauge instantaneous value.
    Value,
    /// Gauge time-weighted mean, or histogram mean.
    Mean,
    /// Gauge or histogram maximum.
    Max,
    /// Histogram 99th percentile.
    P99,
}

impl Stat {
    /// Reads this statistic out of a summarised series value, if the
    /// kind exposes it (empty histograms expose nothing).
    pub fn read(self, value: &MetricValue) -> Option<f64> {
        match (self, value) {
            (Stat::Total, MetricValue::Counter { total }) => Some(*total as f64),
            (Stat::Value, MetricValue::Gauge { value, .. }) => Some(*value),
            (Stat::Mean, MetricValue::Gauge { mean, .. }) => Some(*mean),
            (Stat::Max, MetricValue::Gauge { max, .. }) => Some(*max),
            (Stat::Mean, MetricValue::Histogram { summary: Some(s) }) => Some(s.mean),
            (Stat::Max, MetricValue::Histogram { summary: Some(s) }) => Some(s.max),
            (Stat::P99, MetricValue::Histogram { summary: Some(s) }) => Some(s.p99),
            _ => None,
        }
    }

    /// Stable lower-case name used in reports (`p99`, `max`, …).
    pub fn name(self) -> &'static str {
        match self {
            Stat::Total => "total",
            Stat::Value => "value",
            Stat::Mean => "mean",
            Stat::Max => "max",
            Stat::P99 => "p99",
        }
    }
}

/// Which side of the target the observed value must stay on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Observed should stay at or below the target (latencies, staleness).
    UpperBound,
    /// Observed should stay at or above the target (availability ratios).
    LowerBound,
}

/// One service-level objective over one metric statistic.
#[derive(Debug, Clone)]
pub struct SloRule {
    /// Short stable rule name, e.g. `mttr_p99`.
    pub name: &'static str,
    /// Metric series name the rule reads.
    pub metric: &'static str,
    /// Labels the series must carry (subset match; empty matches any).
    pub labels: Vec<(&'static str, &'static str)>,
    /// Which statistic of the series to read.
    pub stat: Stat,
    /// Bound direction.
    pub objective: Objective,
    /// The target value, in the metric's own unit.
    pub target: f64,
    /// Burn rate from which the verdict is [`Verdict::Warn`].
    pub warn_burn: f64,
    /// Burn rate from which the verdict is [`Verdict::Page`].
    pub page_burn: f64,
}

impl SloRule {
    /// Burn rate for one observation (see the module docs for the
    /// formula). Degenerate denominators saturate: over an upper bound of
    /// zero, any positive observation burns infinitely fast; under a
    /// lower bound, an observation of zero does the same.
    pub fn burn(&self, observed: f64) -> f64 {
        match self.objective {
            Objective::UpperBound => {
                if self.target > 0.0 {
                    (observed / self.target).max(0.0)
                } else if observed <= 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            }
            Objective::LowerBound => {
                if observed > 0.0 {
                    (self.target / observed).max(0.0)
                } else if self.target <= 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            }
        }
    }

    fn verdict_for(&self, burn: f64) -> Verdict {
        if burn >= self.page_burn {
            Verdict::Page
        } else if burn >= self.warn_burn {
            Verdict::Warn
        } else {
            Verdict::Pass
        }
    }
}

/// The outcome of one rule evaluation.
///
/// Ordered by severity: `NoData < Pass < Warn < Page`, so the worst
/// verdict of a report is the `max` over its rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// The series or statistic was absent from the snapshot.
    NoData,
    /// Burn below the warn threshold.
    Pass,
    /// Burn at or above `warn_burn` but below `page_burn`.
    Warn,
    /// Burn at or above `page_burn`.
    Page,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::NoData => "NO-DATA",
            Verdict::Pass => "PASS",
            Verdict::Warn => "WARN",
            Verdict::Page => "PAGE",
        })
    }
}

/// One row of an [`SloReport`]: a rule plus what it observed.
#[derive(Debug, Clone)]
pub struct SloResult {
    /// The rule that was evaluated.
    pub rule: SloRule,
    /// The worst observed value over matching series, if any matched.
    pub observed: Option<f64>,
    /// Burn rate of the worst observation.
    pub burn: Option<f64>,
    /// The verdict.
    pub verdict: Verdict,
}

/// A named collection of rules evaluated together.
#[derive(Debug, Clone, Default)]
pub struct SloPolicy {
    /// The rules, evaluated in order.
    pub rules: Vec<SloRule>,
}

impl SloPolicy {
    /// The testbed-wide default policy:
    ///
    /// | rule | metric (stat) | bound |
    /// |---|---|---|
    /// | `mttr_p99` | `recovery_restore_seconds` (p99) | ≤ 60 s |
    /// | `detection_p99` | `recovery_detect_seconds` (p99) | ≤ 30 s |
    /// | `sdn_convergence` | `sdn_migration_convergence_seconds` (value) | ≤ 1 s |
    /// | `panel_staleness` | `mgmt_panel_staleness_seconds` (max) | ≤ 30 s |
    ///
    /// All rules warn at 1× burn (the target itself) and page at 1.5×.
    /// Rules whose series an experiment never records report `NO-DATA`
    /// and are dropped from that experiment's section by
    /// [`SloPolicy::evaluate`] callers that filter on relevance — the
    /// report itself keeps them.
    pub fn picloud_default() -> Self {
        let rule = |name, metric, stat, target| SloRule {
            name,
            metric,
            labels: Vec::new(),
            stat,
            objective: Objective::UpperBound,
            target,
            warn_burn: 1.0,
            page_burn: 1.5,
        };
        SloPolicy {
            rules: vec![
                rule("mttr_p99", "recovery_restore_seconds", Stat::P99, 60.0),
                rule("detection_p99", "recovery_detect_seconds", Stat::P99, 30.0),
                rule(
                    "sdn_convergence",
                    "sdn_migration_convergence_seconds",
                    Stat::Value,
                    1.0,
                ),
                rule(
                    "panel_staleness",
                    "mgmt_panel_staleness_seconds",
                    Stat::Max,
                    30.0,
                ),
            ],
        }
    }

    /// Evaluates every rule against `snapshot`.
    ///
    /// A rule matches all series with its metric name whose labels are a
    /// superset of the rule's; the *worst* (highest-burn) observation
    /// across matches decides the verdict, so one bad node pages even
    /// when the fleet average is fine.
    pub fn evaluate(&self, snapshot: &MetricsSnapshot) -> SloReport {
        let results = self
            .rules
            .iter()
            .map(|rule| {
                let mut worst: Option<(f64, f64)> = None; // (burn, observed)
                for row in &snapshot.rows {
                    if row.key.name != rule.metric {
                        continue;
                    }
                    if !rule
                        .labels
                        .iter()
                        .all(|(k, v)| row.key.labels.get(k) == Some(*v))
                    {
                        continue;
                    }
                    let Some(observed) = rule.stat.read(&row.value) else {
                        continue;
                    };
                    let burn = rule.burn(observed);
                    if worst.is_none_or(|(b, _)| burn > b) {
                        worst = Some((burn, observed));
                    }
                }
                match worst {
                    Some((burn, observed)) => SloResult {
                        rule: rule.clone(),
                        observed: Some(observed),
                        burn: Some(burn),
                        verdict: rule.verdict_for(burn),
                    },
                    None => SloResult {
                        rule: rule.clone(),
                        observed: None,
                        burn: None,
                        verdict: Verdict::NoData,
                    },
                }
            })
            .collect();
        SloReport { results }
    }
}

/// The evaluated policy: one [`SloResult`] per rule, in policy order.
#[derive(Debug, Clone)]
pub struct SloReport {
    /// Per-rule outcomes.
    pub results: Vec<SloResult>,
}

impl SloReport {
    /// The most severe verdict across all rules ([`Verdict::NoData`] for
    /// an empty policy).
    pub fn worst(&self) -> Verdict {
        self.results
            .iter()
            .map(|r| r.verdict)
            .max()
            .unwrap_or(Verdict::NoData)
    }

    /// Rows whose series were present in the snapshot.
    pub fn with_data(&self) -> impl Iterator<Item = &SloResult> {
        self.results.iter().filter(|r| r.verdict != Verdict::NoData)
    }

    /// One JSON object per rule per line:
    /// `{"rule","metric","stat","target","observed","burn","verdict"}`
    /// (`observed`/`burn` are `null` for `NO-DATA` rows).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            let fmt_opt = |v: Option<f64>| match v {
                Some(v) if v.is_finite() => format!("{v}"),
                _ => "null".to_owned(),
            };
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"metric\":\"{}\",\"stat\":\"{}\",\"target\":{},\"observed\":{},\"burn\":{},\"verdict\":\"{}\"}}\n",
                r.rule.name,
                r.rule.metric,
                r.rule.stat.name(),
                r.rule.target,
                fmt_opt(r.observed),
                fmt_opt(r.burn),
                r.verdict,
            ));
        }
        out
    }
}

impl fmt::Display for SloReport {
    /// Deterministic fixed-width table, one rule per line, followed by
    /// the overall (worst) verdict.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:<36} {:>10} {:>10} {:>6}  VERDICT",
            "RULE", "METRIC (STAT)", "TARGET", "OBSERVED", "BURN"
        )?;
        for r in &self.results {
            let metric = format!("{} ({})", r.rule.metric, r.rule.stat.name());
            let obs = r.observed.map_or("-".to_owned(), |v| format!("{v:.3}"));
            let burn = r.burn.map_or("-".to_owned(), |v| {
                if v.is_finite() {
                    format!("{v:.2}")
                } else {
                    "inf".to_owned()
                }
            });
            writeln!(
                f,
                "{:<16} {:<36} {:>10.3} {:>10} {:>6}  {}",
                r.rule.name, metric, r.rule.target, obs, burn, r.verdict
            )?;
        }
        write!(f, "overall: {}", self.worst())
    }
}

/// Selects the series an alert's SLI reads: a metric name plus a label
/// subset. Multiple matching series are summed (PromQL `sum()` style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSelector {
    /// Metric name to match exactly.
    pub metric: String,
    /// Labels a series must carry (subset match; empty matches any).
    pub labels: Vec<(String, String)>,
}

impl SeriesSelector {
    /// Selects every series named `metric`.
    pub fn metric(metric: &str) -> Self {
        SeriesSelector {
            metric: metric.to_owned(),
            labels: Vec::new(),
        }
    }

    /// Sum of `avg_over_time` over all matching series in
    /// `[at − window, at]`; `None` when nothing matched or no window had
    /// samples.
    fn avg(&self, db: &TimeSeriesDb, window: SimDuration, at: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut any = false;
        for key in db.series_matching(&self.metric, &self.labels) {
            if let Some(v) = db.eval_at(&key, QueryFn::AvgOverTime, window, at) {
                sum += v;
                any = true;
            }
        }
        if any {
            Some(sum)
        } else {
            None
        }
    }
}

/// Alert severity, ordered so [`AlertTimeline::worst_fired`] is a `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertSeverity {
    /// Ticket-level: budget is burning but a human can look tomorrow.
    Warn,
    /// Page-level: budget is burning fast enough to exhaust soon.
    Page,
}

impl fmt::Display for AlertSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlertSeverity::Warn => "WARN",
            AlertSeverity::Page => "PAGE",
        })
    }
}

/// One multi-window burn-rate alert (the Google SRE pattern, scaled to sim
/// time).
///
/// The SLI is a bad-fraction ratio: `avg_over_time(numerator)` divided by
/// `avg_over_time(denominator)` (or the raw numerator average when no
/// denominator is configured). Its **burn rate** is the SLI divided by
/// `budget`, the fraction of error budget the objective allows (e.g.
/// `0.005` for a 99.5% availability target). The alert's condition holds
/// at an instant when *both* the long- and short-window burns reach
/// `burn_threshold`; it must hold for `for_duration` before the alert
/// fires.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnRateAlert {
    /// Short stable alert name, e.g. `fleet_availability_page`.
    pub name: String,
    /// The bad-event series (e.g. dark containers).
    pub numerator: SeriesSelector,
    /// The total series (e.g. fleet size); `None` uses the numerator
    /// average as the SLI directly.
    pub denominator: Option<SeriesSelector>,
    /// Error-budget fraction the SLI is allowed to average (`1 − target`).
    pub budget: f64,
    /// The long (significance) window.
    pub long_window: SimDuration,
    /// The short (reset) window.
    pub short_window: SimDuration,
    /// Burn rate both windows must reach for the condition to hold.
    pub burn_threshold: f64,
    /// How long the condition must hold before `pending` becomes
    /// `firing`; zero fires at the first evaluation that holds.
    pub for_duration: SimDuration,
    /// What firing means.
    pub severity: AlertSeverity,
}

impl BurnRateAlert {
    /// Burn rate over one trailing window at `at`, or `None` without data.
    pub fn burn(&self, db: &TimeSeriesDb, window: SimDuration, at: SimTime) -> Option<f64> {
        if self.budget <= 0.0 {
            return None;
        }
        let num = self.numerator.avg(db, window, at)?;
        let sli = match &self.denominator {
            Some(den) => {
                let d = den.avg(db, window, at)?;
                if d <= 0.0 {
                    return None;
                }
                num / d
            }
            None => num,
        };
        Some(sli / self.budget)
    }
}

/// The lifecycle states an alert reports on its timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition holds; waiting out `for_duration`.
    Pending,
    /// Condition held long enough — the alert is active.
    Firing,
    /// Condition stopped holding while firing.
    Resolved,
    /// Condition stopped holding while still pending (never fired).
    Cancelled,
}

impl fmt::Display for AlertState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
            AlertState::Cancelled => "cancelled",
        })
    }
}

/// One state-machine transition on an [`AlertTimeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// The scrape instant the transition happened.
    pub at: SimTime,
    /// Which alert transitioned.
    pub alert: String,
    /// The alert's severity.
    pub severity: AlertSeverity,
    /// The state entered.
    pub state: AlertState,
    /// Long-window burn at the transition instant (`None` without data).
    pub burn_long: Option<f64>,
    /// Short-window burn at the transition instant.
    pub burn_short: Option<f64>,
}

/// A named collection of burn-rate alerts evaluated together over a
/// scrape timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlertPolicy {
    /// The alerts, evaluated in order.
    pub alerts: Vec<BurnRateAlert>,
}

impl AlertPolicy {
    /// The testbed-wide default: fleet availability against a 99.5%
    /// objective (`budget = 0.005`), SLI = dark containers over fleet
    /// size (`container_fleet_dark / container_fleet_size`), two window
    /// pairs scaled to sim time from the SRE workbook's 1h/5m and
    /// 6h/30m pairs:
    ///
    /// | alert | long | short | burn ≥ | for | severity |
    /// |---|---|---|---|---|---|
    /// | `fleet_availability_page` | 120 s | 30 s | 3 | 0 s | PAGE |
    /// | `fleet_availability_warn` | 600 s | 120 s | 1 | 30 s | WARN |
    pub fn picloud_default() -> Self {
        let sli =
            |name: &str, long: u64, short: u64, burn: f64, hold: u64, severity: AlertSeverity| {
                BurnRateAlert {
                    name: name.to_owned(),
                    numerator: SeriesSelector::metric("container_fleet_dark"),
                    denominator: Some(SeriesSelector::metric("container_fleet_size")),
                    budget: 0.005,
                    long_window: SimDuration::from_secs(long),
                    short_window: SimDuration::from_secs(short),
                    burn_threshold: burn,
                    for_duration: SimDuration::from_secs(hold),
                    severity,
                }
            };
        AlertPolicy {
            alerts: vec![
                sli(
                    "fleet_availability_page",
                    120,
                    30,
                    3.0,
                    0,
                    AlertSeverity::Page,
                ),
                sli(
                    "fleet_availability_warn",
                    600,
                    120,
                    1.0,
                    30,
                    AlertSeverity::Warn,
                ),
            ],
        }
    }

    /// Walks every alert's state machine over `db`'s scrape timeline and
    /// returns the transitions, ordered by `(time, policy order)`. Pure
    /// and deterministic: same store, same timeline, byte for byte.
    pub fn evaluate(&self, db: &TimeSeriesDb) -> AlertTimeline {
        let mut transitions = Vec::new();
        let times: Vec<SimTime> = db.scrape_times().to_vec();
        let mut states: Vec<Option<(AlertState, SimTime)>> = vec![None; self.alerts.len()];
        for &now in &times {
            for (i, alert) in self.alerts.iter().enumerate() {
                let burn_long = alert.burn(db, alert.long_window, now);
                let burn_short = alert.burn(db, alert.short_window, now);
                let holds = matches!((burn_long, burn_short), (Some(l), Some(s))
                    if l >= alert.burn_threshold && s >= alert.burn_threshold);
                let mut push = |state: AlertState| {
                    transitions.push(AlertTransition {
                        at: now,
                        alert: alert.name.clone(),
                        severity: alert.severity,
                        state,
                        burn_long,
                        burn_short,
                    });
                };
                states[i] = match (states[i], holds) {
                    (None | Some((AlertState::Resolved | AlertState::Cancelled, _)), true) => {
                        push(AlertState::Pending);
                        if alert.for_duration.is_zero() {
                            push(AlertState::Firing);
                            Some((AlertState::Firing, now))
                        } else {
                            Some((AlertState::Pending, now))
                        }
                    }
                    (Some((AlertState::Pending, since)), true) => {
                        if now.duration_since(since) >= alert.for_duration {
                            push(AlertState::Firing);
                            Some((AlertState::Firing, since))
                        } else {
                            Some((AlertState::Pending, since))
                        }
                    }
                    (Some((AlertState::Pending, _)), false) => {
                        push(AlertState::Cancelled);
                        Some((AlertState::Cancelled, now))
                    }
                    (Some((AlertState::Firing, _)), false) => {
                        push(AlertState::Resolved);
                        Some((AlertState::Resolved, now))
                    }
                    (s, _) => s,
                };
            }
        }
        AlertTimeline {
            evaluated_at: times,
            transitions,
        }
    }
}

/// The byte-deterministic product of [`AlertPolicy::evaluate`]: every
/// state transition of every alert over the scrape timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTimeline {
    /// The scrape instants the policy was evaluated at.
    pub evaluated_at: Vec<SimTime>,
    /// State transitions, ordered by `(time, policy order)`.
    pub transitions: Vec<AlertTransition>,
}

impl AlertTimeline {
    /// Transitions that entered [`AlertState::Firing`].
    pub fn firings(&self) -> impl Iterator<Item = &AlertTransition> {
        self.transitions
            .iter()
            .filter(|t| t.state == AlertState::Firing)
    }

    /// The most severe severity that ever fired, if any alert fired.
    pub fn worst_fired(&self) -> Option<AlertSeverity> {
        self.firings().map(|t| t.severity).max()
    }

    /// Whether any alert of `severity` fired.
    pub fn fired(&self, severity: AlertSeverity) -> bool {
        self.firings().any(|t| t.severity == severity)
    }

    /// One JSON object per transition per line:
    /// `{"t_ns","alert","severity","state","burn_long","burn_short"}`
    /// (burns are `null` without data).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let fmt_opt = |v: Option<f64>| match v {
            Some(v) if v.is_finite() => format!("{v}"),
            _ => "null".to_owned(),
        };
        for t in &self.transitions {
            out.push_str(&format!(
                "{{\"t_ns\":{},\"alert\":\"{}\",\"severity\":\"{}\",\"state\":\"{}\",\"burn_long\":{},\"burn_short\":{}}}\n",
                t.at.as_nanos(),
                t.alert,
                t.severity,
                t.state,
                fmt_opt(t.burn_long),
                fmt_opt(t.burn_short),
            ));
        }
        out
    }
}

impl fmt::Display for AlertTimeline {
    /// Deterministic fixed-width table, one transition per line, followed
    /// by a one-line summary.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:<28} {:<9} {:<10} {:>10} {:>10}",
            "T", "ALERT", "SEVERITY", "STATE", "BURN-LONG", "BURN-SHORT"
        )?;
        let fmt_opt = |v: Option<f64>| {
            v.filter(|v| v.is_finite())
                .map_or("-".to_owned(), |v| format!("{v:.2}"))
        };
        for t in &self.transitions {
            writeln!(
                f,
                "{:<12} {:<28} {:<9} {:<10} {:>10} {:>10}",
                format!("{:.1}s", t.at.as_secs_f64()),
                t.alert,
                t.severity.to_string(),
                t.state.to_string(),
                fmt_opt(t.burn_long),
                fmt_opt(t.burn_short),
            )?;
        }
        let fired = self
            .worst_fired()
            .map_or("none fired".to_owned(), |s| format!("worst fired: {s}"));
        write!(
            f,
            "{} transitions over {} evaluations; {fired}",
            self.transitions.len(),
            self.evaluated_at.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::tsdb::ScrapeConfig;
    use crate::telemetry::MetricsRegistry;
    use crate::time::SimTime;

    fn rule(stat: Stat, objective: Objective, target: f64) -> SloRule {
        SloRule {
            name: "r",
            metric: "m",
            labels: Vec::new(),
            stat,
            objective,
            target,
            warn_burn: 1.0,
            page_burn: 1.5,
        }
    }

    #[test]
    fn burn_rates_scale_with_distance_from_target() {
        let upper = rule(Stat::Value, Objective::UpperBound, 10.0);
        assert_eq!(upper.burn(5.0), 0.5);
        assert_eq!(upper.burn(10.0), 1.0);
        assert_eq!(upper.burn(20.0), 2.0);
        let lower = rule(Stat::Value, Objective::LowerBound, 0.9);
        assert!((lower.burn(0.9) - 1.0).abs() < 1e-12);
        assert!(lower.burn(0.45) > 1.9);
        assert_eq!(lower.burn(0.0), f64::INFINITY);
    }

    #[test]
    fn verdict_thresholds_partition_burn() {
        let r = rule(Stat::Value, Objective::UpperBound, 10.0);
        assert_eq!(r.verdict_for(0.99), Verdict::Pass);
        assert_eq!(r.verdict_for(1.0), Verdict::Warn);
        assert_eq!(r.verdict_for(1.49), Verdict::Warn);
        assert_eq!(r.verdict_for(1.5), Verdict::Page);
    }

    #[test]
    fn evaluation_picks_the_worst_matching_series() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        reg.gauge("m", &[("node", "0")]).set(SimTime::ZERO, 5.0);
        reg.gauge("m", &[("node", "1")]).set(SimTime::ZERO, 20.0);
        let policy = SloPolicy {
            rules: vec![rule(Stat::Value, Objective::UpperBound, 10.0)],
        };
        let report = policy.evaluate(&reg.snapshot(SimTime::ZERO));
        assert_eq!(report.results[0].observed, Some(20.0));
        assert_eq!(report.results[0].verdict, Verdict::Page);
        assert_eq!(report.worst(), Verdict::Page);
    }

    #[test]
    fn label_subset_filters_series() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        reg.gauge("m", &[("node", "0")]).set(SimTime::ZERO, 5.0);
        reg.gauge("m", &[("node", "1")]).set(SimTime::ZERO, 20.0);
        let mut r = rule(Stat::Value, Objective::UpperBound, 10.0);
        r.labels = vec![("node", "0")];
        let report = SloPolicy { rules: vec![r] }.evaluate(&reg.snapshot(SimTime::ZERO));
        assert_eq!(report.results[0].observed, Some(5.0));
        assert_eq!(report.results[0].verdict, Verdict::Pass);
    }

    #[test]
    fn missing_series_reports_no_data() {
        let reg = MetricsRegistry::new(SimTime::ZERO);
        let policy = SloPolicy {
            rules: vec![rule(Stat::P99, Objective::UpperBound, 10.0)],
        };
        let report = policy.evaluate(&reg.snapshot(SimTime::ZERO));
        assert_eq!(report.results[0].verdict, Verdict::NoData);
        assert_eq!(report.worst(), Verdict::NoData);
        assert!(report.with_data().next().is_none());
        assert!(report.to_jsonl().contains("\"observed\":null"));
    }

    #[test]
    fn stat_kind_mismatch_is_no_data() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        reg.counter("m", &[]).add(3);
        let policy = SloPolicy {
            rules: vec![rule(Stat::P99, Objective::UpperBound, 10.0)],
        };
        let report = policy.evaluate(&reg.snapshot(SimTime::ZERO));
        assert_eq!(report.results[0].verdict, Verdict::NoData);
    }

    #[test]
    fn display_and_jsonl_are_deterministic() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        reg.histogram("recovery_restore_seconds", &[])
            .extend([12.0, 18.0, 25.0]);
        let policy = SloPolicy::picloud_default();
        let snap = reg.snapshot(SimTime::ZERO);
        let a = policy.evaluate(&snap);
        let b = policy.evaluate(&snap);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.to_string(), b.to_string());
        assert!(a.to_string().contains("mttr_p99"));
        assert!(a.to_string().ends_with("overall: PASS"));
        // The three never-recorded rules are NO-DATA, not failures.
        assert_eq!(a.with_data().count(), 1);
    }

    #[test]
    fn default_policy_names_real_series() {
        for r in SloPolicy::picloud_default().rules {
            assert!(r.target > 0.0);
            assert!(r.warn_burn <= r.page_burn);
        }
    }

    /// Scrapes a synthetic 10-container fleet on a 10-second grid over
    /// `secs` seconds; `dark_at(s)` is the dark-container gauge value set
    /// at each scrape instant.
    fn fleet_db(secs: u64, dark_at: impl Fn(u64) -> f64) -> TimeSeriesDb {
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        let mut db = TimeSeriesDb::new(
            SimTime::ZERO,
            ScrapeConfig::every(SimDuration::from_secs(10)),
        );
        let mut s = 0u64;
        while s <= secs {
            let now = SimTime::from_secs(s);
            reg.gauge("container_fleet_size", &[]).set(now, 10.0);
            reg.gauge("container_fleet_dark", &[]).set(now, dark_at(s));
            db.record(&reg, now);
            s += 10;
        }
        db
    }

    fn fleet_alert(hold_secs: u64, severity: AlertSeverity) -> BurnRateAlert {
        BurnRateAlert {
            name: "fleet_alert".to_owned(),
            numerator: SeriesSelector::metric("container_fleet_dark"),
            denominator: Some(SeriesSelector::metric("container_fleet_size")),
            budget: 0.005,
            long_window: SimDuration::from_secs(60),
            short_window: SimDuration::from_secs(30),
            burn_threshold: 5.0,
            for_duration: SimDuration::from_secs(hold_secs),
            severity,
        }
    }

    /// One dark container from t=100s to t=200s against a 60s/30s window
    /// pair and burn ≥ 5: the long window crosses threshold at 120s and
    /// the short window un-crosses first at 230s.
    fn blackout(s: u64) -> f64 {
        if (100..200).contains(&s) {
            1.0
        } else {
            0.0
        }
    }

    #[test]
    fn zero_hold_alert_fires_at_threshold_and_resolves() {
        let db = fleet_db(300, blackout);
        let policy = AlertPolicy {
            alerts: vec![fleet_alert(0, AlertSeverity::Page)],
        };
        let timeline = policy.evaluate(&db);
        let states: Vec<(u64, AlertState)> = timeline
            .transitions
            .iter()
            .map(|t| (t.at.as_nanos() / 1_000_000_000, t.state))
            .collect();
        assert_eq!(
            states,
            vec![
                (120, AlertState::Pending),
                (120, AlertState::Firing),
                (230, AlertState::Resolved),
            ]
        );
        assert!(timeline.fired(AlertSeverity::Page));
        assert_eq!(timeline.worst_fired(), Some(AlertSeverity::Page));
        // Transition burns are recorded at the firing instant.
        let firing = timeline.firings().next().unwrap();
        let long = firing.burn_long.unwrap();
        assert!((long - 20.0 / 3.0).abs() < 1e-9, "long burn was {long}");
        for line in timeline.to_jsonl().lines() {
            assert!(line.starts_with("{\"t_ns\":"));
            assert!(line.contains("\"alert\":\"fleet_alert\""));
        }
    }

    #[test]
    fn for_duration_delays_firing_past_the_hold() {
        let db = fleet_db(300, blackout);
        let policy = AlertPolicy {
            alerts: vec![fleet_alert(25, AlertSeverity::Warn)],
        };
        let timeline = policy.evaluate(&db);
        let states: Vec<(u64, AlertState)> = timeline
            .transitions
            .iter()
            .map(|t| (t.at.as_nanos() / 1_000_000_000, t.state))
            .collect();
        // Pending at 120s; the 25s hold is first satisfied at 150s.
        assert_eq!(
            states,
            vec![
                (120, AlertState::Pending),
                (150, AlertState::Firing),
                (230, AlertState::Resolved),
            ]
        );
    }

    #[test]
    fn a_short_burst_cancels_a_pending_alert() {
        // Dark for only 30s: the condition holds from 120s to 150s, which
        // never satisfies a 45s hold — the alert cancels without firing.
        let db = fleet_db(300, |s| if (100..130).contains(&s) { 1.0 } else { 0.0 });
        let policy = AlertPolicy {
            alerts: vec![fleet_alert(45, AlertSeverity::Page)],
        };
        let timeline = policy.evaluate(&db);
        let states: Vec<(u64, AlertState)> = timeline
            .transitions
            .iter()
            .map(|t| (t.at.as_nanos() / 1_000_000_000, t.state))
            .collect();
        assert_eq!(
            states,
            vec![(120, AlertState::Pending), (160, AlertState::Cancelled)]
        );
        assert!(!timeline.fired(AlertSeverity::Page));
        assert_eq!(timeline.worst_fired(), None);
    }

    #[test]
    fn alert_severities_order_and_default_policy_is_sane() {
        assert!(AlertSeverity::Page > AlertSeverity::Warn);
        let p = AlertPolicy::picloud_default();
        assert_eq!(p.alerts.len(), 2);
        assert!(p
            .alerts
            .iter()
            .all(|a| a.budget > 0.0 && a.short_window < a.long_window));
    }
}
