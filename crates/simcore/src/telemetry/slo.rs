//! Service-level objectives evaluated over a [`MetricsSnapshot`].
//!
//! An [`SloRule`] names one statistic of one metric series (e.g. the p99
//! of `recovery_restore_seconds`) and bounds it by a `target`. The rule's
//! **burn rate** is how fast the run is consuming its error budget:
//!
//! * [`Objective::UpperBound`] — `burn = observed / target`. At the
//!   target the burn is exactly 1; twice the target burns at 2×.
//! * [`Objective::LowerBound`] — `burn = target / observed`. Falling to
//!   half the target burns at 2×.
//!
//! Burn maps to a [`Verdict`] through the rule's thresholds:
//! `PASS` while `burn < warn_burn`, `WARN` from `warn_burn`, `PAGE` from
//! `page_burn`. A rule whose series (or statistic) is absent from the
//! snapshot reports [`Verdict::NoData`] — missing telemetry is something
//! an operator should see, not silently pass.
//!
//! [`SloPolicy::picloud_default`] carries the testbed-wide objectives
//! (MTTR, SDN convergence, panel staleness); every experiment run through
//! `picloud::telemetry::ExperimentTelemetry` gets its verdict section from
//! it. Evaluation is pure and deterministic: same snapshot, same report,
//! byte for byte.

use super::{MetricValue, MetricsSnapshot};
use std::fmt;

/// Which summarised statistic of a series a rule reads.
///
/// Statistics are kind-specific; reading a statistic the series kind does
/// not expose (e.g. `P99` of a counter) yields no data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stat {
    /// Counter total.
    Total,
    /// Gauge instantaneous value.
    Value,
    /// Gauge time-weighted mean, or histogram mean.
    Mean,
    /// Gauge or histogram maximum.
    Max,
    /// Histogram 99th percentile.
    P99,
}

impl Stat {
    /// Reads this statistic out of a summarised series value, if the
    /// kind exposes it (empty histograms expose nothing).
    pub fn read(self, value: &MetricValue) -> Option<f64> {
        match (self, value) {
            (Stat::Total, MetricValue::Counter { total }) => Some(*total as f64),
            (Stat::Value, MetricValue::Gauge { value, .. }) => Some(*value),
            (Stat::Mean, MetricValue::Gauge { mean, .. }) => Some(*mean),
            (Stat::Max, MetricValue::Gauge { max, .. }) => Some(*max),
            (Stat::Mean, MetricValue::Histogram { summary: Some(s) }) => Some(s.mean),
            (Stat::Max, MetricValue::Histogram { summary: Some(s) }) => Some(s.max),
            (Stat::P99, MetricValue::Histogram { summary: Some(s) }) => Some(s.p99),
            _ => None,
        }
    }

    /// Stable lower-case name used in reports (`p99`, `max`, …).
    pub fn name(self) -> &'static str {
        match self {
            Stat::Total => "total",
            Stat::Value => "value",
            Stat::Mean => "mean",
            Stat::Max => "max",
            Stat::P99 => "p99",
        }
    }
}

/// Which side of the target the observed value must stay on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Observed should stay at or below the target (latencies, staleness).
    UpperBound,
    /// Observed should stay at or above the target (availability ratios).
    LowerBound,
}

/// One service-level objective over one metric statistic.
#[derive(Debug, Clone)]
pub struct SloRule {
    /// Short stable rule name, e.g. `mttr_p99`.
    pub name: &'static str,
    /// Metric series name the rule reads.
    pub metric: &'static str,
    /// Labels the series must carry (subset match; empty matches any).
    pub labels: Vec<(&'static str, &'static str)>,
    /// Which statistic of the series to read.
    pub stat: Stat,
    /// Bound direction.
    pub objective: Objective,
    /// The target value, in the metric's own unit.
    pub target: f64,
    /// Burn rate from which the verdict is [`Verdict::Warn`].
    pub warn_burn: f64,
    /// Burn rate from which the verdict is [`Verdict::Page`].
    pub page_burn: f64,
}

impl SloRule {
    /// Burn rate for one observation (see the module docs for the
    /// formula). Degenerate denominators saturate: over an upper bound of
    /// zero, any positive observation burns infinitely fast; under a
    /// lower bound, an observation of zero does the same.
    pub fn burn(&self, observed: f64) -> f64 {
        match self.objective {
            Objective::UpperBound => {
                if self.target > 0.0 {
                    (observed / self.target).max(0.0)
                } else if observed <= 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            }
            Objective::LowerBound => {
                if observed > 0.0 {
                    (self.target / observed).max(0.0)
                } else if self.target <= 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            }
        }
    }

    fn verdict_for(&self, burn: f64) -> Verdict {
        if burn >= self.page_burn {
            Verdict::Page
        } else if burn >= self.warn_burn {
            Verdict::Warn
        } else {
            Verdict::Pass
        }
    }
}

/// The outcome of one rule evaluation.
///
/// Ordered by severity: `NoData < Pass < Warn < Page`, so the worst
/// verdict of a report is the `max` over its rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// The series or statistic was absent from the snapshot.
    NoData,
    /// Burn below the warn threshold.
    Pass,
    /// Burn at or above `warn_burn` but below `page_burn`.
    Warn,
    /// Burn at or above `page_burn`.
    Page,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::NoData => "NO-DATA",
            Verdict::Pass => "PASS",
            Verdict::Warn => "WARN",
            Verdict::Page => "PAGE",
        })
    }
}

/// One row of an [`SloReport`]: a rule plus what it observed.
#[derive(Debug, Clone)]
pub struct SloResult {
    /// The rule that was evaluated.
    pub rule: SloRule,
    /// The worst observed value over matching series, if any matched.
    pub observed: Option<f64>,
    /// Burn rate of the worst observation.
    pub burn: Option<f64>,
    /// The verdict.
    pub verdict: Verdict,
}

/// A named collection of rules evaluated together.
#[derive(Debug, Clone, Default)]
pub struct SloPolicy {
    /// The rules, evaluated in order.
    pub rules: Vec<SloRule>,
}

impl SloPolicy {
    /// The testbed-wide default policy:
    ///
    /// | rule | metric (stat) | bound |
    /// |---|---|---|
    /// | `mttr_p99` | `recovery_restore_seconds` (p99) | ≤ 60 s |
    /// | `detection_p99` | `recovery_detect_seconds` (p99) | ≤ 30 s |
    /// | `sdn_convergence` | `sdn_migration_convergence_seconds` (value) | ≤ 1 s |
    /// | `panel_staleness` | `mgmt_panel_staleness_seconds` (max) | ≤ 30 s |
    ///
    /// All rules warn at 1× burn (the target itself) and page at 1.5×.
    /// Rules whose series an experiment never records report `NO-DATA`
    /// and are dropped from that experiment's section by
    /// [`SloPolicy::evaluate`] callers that filter on relevance — the
    /// report itself keeps them.
    pub fn picloud_default() -> Self {
        let rule = |name, metric, stat, target| SloRule {
            name,
            metric,
            labels: Vec::new(),
            stat,
            objective: Objective::UpperBound,
            target,
            warn_burn: 1.0,
            page_burn: 1.5,
        };
        SloPolicy {
            rules: vec![
                rule("mttr_p99", "recovery_restore_seconds", Stat::P99, 60.0),
                rule("detection_p99", "recovery_detect_seconds", Stat::P99, 30.0),
                rule(
                    "sdn_convergence",
                    "sdn_migration_convergence_seconds",
                    Stat::Value,
                    1.0,
                ),
                rule(
                    "panel_staleness",
                    "mgmt_panel_staleness_seconds",
                    Stat::Max,
                    30.0,
                ),
            ],
        }
    }

    /// Evaluates every rule against `snapshot`.
    ///
    /// A rule matches all series with its metric name whose labels are a
    /// superset of the rule's; the *worst* (highest-burn) observation
    /// across matches decides the verdict, so one bad node pages even
    /// when the fleet average is fine.
    pub fn evaluate(&self, snapshot: &MetricsSnapshot) -> SloReport {
        let results = self
            .rules
            .iter()
            .map(|rule| {
                let mut worst: Option<(f64, f64)> = None; // (burn, observed)
                for row in &snapshot.rows {
                    if row.key.name != rule.metric {
                        continue;
                    }
                    if !rule
                        .labels
                        .iter()
                        .all(|(k, v)| row.key.labels.get(k) == Some(*v))
                    {
                        continue;
                    }
                    let Some(observed) = rule.stat.read(&row.value) else {
                        continue;
                    };
                    let burn = rule.burn(observed);
                    if worst.is_none_or(|(b, _)| burn > b) {
                        worst = Some((burn, observed));
                    }
                }
                match worst {
                    Some((burn, observed)) => SloResult {
                        rule: rule.clone(),
                        observed: Some(observed),
                        burn: Some(burn),
                        verdict: rule.verdict_for(burn),
                    },
                    None => SloResult {
                        rule: rule.clone(),
                        observed: None,
                        burn: None,
                        verdict: Verdict::NoData,
                    },
                }
            })
            .collect();
        SloReport { results }
    }
}

/// The evaluated policy: one [`SloResult`] per rule, in policy order.
#[derive(Debug, Clone)]
pub struct SloReport {
    /// Per-rule outcomes.
    pub results: Vec<SloResult>,
}

impl SloReport {
    /// The most severe verdict across all rules ([`Verdict::NoData`] for
    /// an empty policy).
    pub fn worst(&self) -> Verdict {
        self.results
            .iter()
            .map(|r| r.verdict)
            .max()
            .unwrap_or(Verdict::NoData)
    }

    /// Rows whose series were present in the snapshot.
    pub fn with_data(&self) -> impl Iterator<Item = &SloResult> {
        self.results.iter().filter(|r| r.verdict != Verdict::NoData)
    }

    /// One JSON object per rule per line:
    /// `{"rule","metric","stat","target","observed","burn","verdict"}`
    /// (`observed`/`burn` are `null` for `NO-DATA` rows).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            let fmt_opt = |v: Option<f64>| match v {
                Some(v) if v.is_finite() => format!("{v}"),
                _ => "null".to_owned(),
            };
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"metric\":\"{}\",\"stat\":\"{}\",\"target\":{},\"observed\":{},\"burn\":{},\"verdict\":\"{}\"}}\n",
                r.rule.name,
                r.rule.metric,
                r.rule.stat.name(),
                r.rule.target,
                fmt_opt(r.observed),
                fmt_opt(r.burn),
                r.verdict,
            ));
        }
        out
    }
}

impl fmt::Display for SloReport {
    /// Deterministic fixed-width table, one rule per line, followed by
    /// the overall (worst) verdict.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:<36} {:>10} {:>10} {:>6}  VERDICT",
            "RULE", "METRIC (STAT)", "TARGET", "OBSERVED", "BURN"
        )?;
        for r in &self.results {
            let metric = format!("{} ({})", r.rule.metric, r.rule.stat.name());
            let obs = r.observed.map_or("-".to_owned(), |v| format!("{v:.3}"));
            let burn = r.burn.map_or("-".to_owned(), |v| {
                if v.is_finite() {
                    format!("{v:.2}")
                } else {
                    "inf".to_owned()
                }
            });
            writeln!(
                f,
                "{:<16} {:<36} {:>10.3} {:>10} {:>6}  {}",
                r.rule.name, metric, r.rule.target, obs, burn, r.verdict
            )?;
        }
        write!(f, "overall: {}", self.worst())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::MetricsRegistry;
    use crate::time::SimTime;

    fn rule(stat: Stat, objective: Objective, target: f64) -> SloRule {
        SloRule {
            name: "r",
            metric: "m",
            labels: Vec::new(),
            stat,
            objective,
            target,
            warn_burn: 1.0,
            page_burn: 1.5,
        }
    }

    #[test]
    fn burn_rates_scale_with_distance_from_target() {
        let upper = rule(Stat::Value, Objective::UpperBound, 10.0);
        assert_eq!(upper.burn(5.0), 0.5);
        assert_eq!(upper.burn(10.0), 1.0);
        assert_eq!(upper.burn(20.0), 2.0);
        let lower = rule(Stat::Value, Objective::LowerBound, 0.9);
        assert!((lower.burn(0.9) - 1.0).abs() < 1e-12);
        assert!(lower.burn(0.45) > 1.9);
        assert_eq!(lower.burn(0.0), f64::INFINITY);
    }

    #[test]
    fn verdict_thresholds_partition_burn() {
        let r = rule(Stat::Value, Objective::UpperBound, 10.0);
        assert_eq!(r.verdict_for(0.99), Verdict::Pass);
        assert_eq!(r.verdict_for(1.0), Verdict::Warn);
        assert_eq!(r.verdict_for(1.49), Verdict::Warn);
        assert_eq!(r.verdict_for(1.5), Verdict::Page);
    }

    #[test]
    fn evaluation_picks_the_worst_matching_series() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        reg.gauge("m", &[("node", "0")]).set(SimTime::ZERO, 5.0);
        reg.gauge("m", &[("node", "1")]).set(SimTime::ZERO, 20.0);
        let policy = SloPolicy {
            rules: vec![rule(Stat::Value, Objective::UpperBound, 10.0)],
        };
        let report = policy.evaluate(&reg.snapshot(SimTime::ZERO));
        assert_eq!(report.results[0].observed, Some(20.0));
        assert_eq!(report.results[0].verdict, Verdict::Page);
        assert_eq!(report.worst(), Verdict::Page);
    }

    #[test]
    fn label_subset_filters_series() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        reg.gauge("m", &[("node", "0")]).set(SimTime::ZERO, 5.0);
        reg.gauge("m", &[("node", "1")]).set(SimTime::ZERO, 20.0);
        let mut r = rule(Stat::Value, Objective::UpperBound, 10.0);
        r.labels = vec![("node", "0")];
        let report = SloPolicy { rules: vec![r] }.evaluate(&reg.snapshot(SimTime::ZERO));
        assert_eq!(report.results[0].observed, Some(5.0));
        assert_eq!(report.results[0].verdict, Verdict::Pass);
    }

    #[test]
    fn missing_series_reports_no_data() {
        let reg = MetricsRegistry::new(SimTime::ZERO);
        let policy = SloPolicy {
            rules: vec![rule(Stat::P99, Objective::UpperBound, 10.0)],
        };
        let report = policy.evaluate(&reg.snapshot(SimTime::ZERO));
        assert_eq!(report.results[0].verdict, Verdict::NoData);
        assert_eq!(report.worst(), Verdict::NoData);
        assert!(report.with_data().next().is_none());
        assert!(report.to_jsonl().contains("\"observed\":null"));
    }

    #[test]
    fn stat_kind_mismatch_is_no_data() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        reg.counter("m", &[]).add(3);
        let policy = SloPolicy {
            rules: vec![rule(Stat::P99, Objective::UpperBound, 10.0)],
        };
        let report = policy.evaluate(&reg.snapshot(SimTime::ZERO));
        assert_eq!(report.results[0].verdict, Verdict::NoData);
    }

    #[test]
    fn display_and_jsonl_are_deterministic() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        reg.histogram("recovery_restore_seconds", &[])
            .extend([12.0, 18.0, 25.0]);
        let policy = SloPolicy::picloud_default();
        let snap = reg.snapshot(SimTime::ZERO);
        let a = policy.evaluate(&snap);
        let b = policy.evaluate(&snap);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.to_string(), b.to_string());
        assert!(a.to_string().contains("mttr_p99"));
        assert!(a.to_string().ends_with("overall: PASS"));
        // The three never-recorded rules are NO-DATA, not failures.
        assert_eq!(a.with_data().count(), 1);
    }

    #[test]
    fn default_policy_names_real_series() {
        for r in SloPolicy::picloud_default().rules {
            assert!(r.target > 0.0);
            assert!(r.warn_burn <= r.page_burn);
        }
    }
}
