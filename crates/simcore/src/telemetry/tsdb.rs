//! An in-memory, delta-encoded time-series database fed by a sim-clock
//! scrape loop.
//!
//! The whole-run [`MetricsSnapshot`](super::MetricsSnapshot) collapses a
//! 90-minute churn run to one number per series, so a transient brownout
//! that burns half the error budget in five minutes is invisible if the
//! run-average recovers. This module is the windowed signal plane that the
//! paper's live `pimaster` panel (Fig. 4) implies and the multi-window
//! burn-rate alerts of [`super::slo`] require:
//!
//! * [`TimeSeriesDb`] — periodic samples of every series in a
//!   [`MetricsRegistry`], stored as delta-encoded byte streams (LEB128
//!   varint time deltas; zigzag varint deltas for integers; XOR-with-
//!   previous bit patterns for floats). Unchanged samples cost ~2 bytes.
//! * [`QueryFn`] — a deterministic query layer: `rate()`, `increase()`,
//!   `avg_over_time`, `max_over_time`, `min_over_time` and windowed
//!   quantiles, evaluated at sample-aligned instants.
//!
//! # Exactness
//!
//! Scraping stores each gauge's running *integral* (value × seconds)
//! alongside its instantaneous value. `avg_over_time` divides an integral
//! difference by the elapsed time between the window's boundary samples,
//! which makes it **bitwise identical** to the snapshot's time-weighted
//! `mean` when the window spans the whole run — the float expressions are
//! the same. Likewise `increase` over a full-run window reproduces a
//! counter's snapshot `total` exactly. `tests/tsdb.rs` pins both
//! identities with property tests.
//!
//! # Determinism
//!
//! Everything here is a pure function of the scrape sequence: `BTreeMap`
//! keyed streams, no wall clock, no ambient randomness. Two same-seed runs
//! produce byte-identical query and alert output.
//!
//! # Example
//!
//! ```
//! use picloud_simcore::telemetry::tsdb::{QueryFn, ScrapeConfig, TimeSeriesDb};
//! use picloud_simcore::telemetry::MetricsRegistry;
//! use picloud_simcore::{SimDuration, SimTime};
//!
//! let mut reg = MetricsRegistry::new(SimTime::ZERO);
//! let mut db = TimeSeriesDb::new(SimTime::ZERO, ScrapeConfig::default());
//! for s in 0..=60u64 {
//!     reg.counter("req_total", &[]).add(2);
//!     db.record(&reg, SimTime::from_secs(s));
//! }
//! let keys = db.series_matching("req_total", &[]);
//! let v = db
//!     .eval_at(
//!         &keys[0],
//!         QueryFn::Increase,
//!         SimDuration::from_secs(30),
//!         SimTime::from_secs(60),
//!     )
//!     .unwrap();
//! // The window base is the last sample *strictly before* t=30 (t=29,
//! // value 60), so the increase covers the 31 scrapes at t=30..=60.
//! assert_eq!(v, 62.0);
//! ```

use super::{MetricsRegistry, SeriesKey};
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// How often the scrape loop samples the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrapeConfig {
    /// Sim-time distance between scheduled scrapes.
    pub interval: SimDuration,
}

impl ScrapeConfig {
    /// The default scrape cadence: every 15 simulated seconds — Prometheus'
    /// default, which the sim can afford exactly because scraping costs no
    /// simulated time.
    pub const DEFAULT_INTERVAL: SimDuration = SimDuration::from_secs(15);

    /// A config scraping every `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn every(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "scrape interval must be positive");
        ScrapeConfig { interval }
    }
}

impl Default for ScrapeConfig {
    fn default() -> Self {
        ScrapeConfig {
            interval: ScrapeConfig::DEFAULT_INTERVAL,
        }
    }
}

/// Which sampled facet of a series a stream stores.
///
/// One registry series fans out into one or two streams: counters store
/// their running `Total`; gauges store the instantaneous `Value` *and* the
/// running time `Integral` (the latter is what makes `avg_over_time`
/// exact); histograms store their observation `Count` and `Sum`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SampleField {
    /// Counter running total (integer stream).
    Total,
    /// Gauge instantaneous value (float stream).
    Value,
    /// Gauge running integral, value × seconds (float stream).
    Integral,
    /// Histogram observation count (integer stream).
    Count,
    /// Histogram observation sum (float stream).
    Sum,
}

impl SampleField {
    /// Stable lower-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SampleField::Total => "total",
            SampleField::Value => "value",
            SampleField::Integral => "integral",
            SampleField::Count => "count",
            SampleField::Sum => "sum",
        }
    }
}

/// The identity of one stored stream: series plus sampled facet.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct StreamKey {
    /// The registry series the stream samples.
    pub series: SeriesKey,
    /// Which facet of the series it stores.
    pub field: SampleField,
}

/// How a stream's 64-bit payloads are interpreted and delta-encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SampleKind {
    /// Payload is a `u64`; deltas are zigzag-varint encoded.
    U64,
    /// Payload is `f64` bits; deltas are XOR-with-previous, varint encoded.
    F64,
}

/// Appends `v` to `out` as an LEB128 varint (7 bits per byte, high bit =
/// continuation).
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `data` starting at `*pos`, advancing it.
/// Returns `None` on truncated input (indicates stream corruption).
fn get_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Zigzag-encodes a signed delta so small magnitudes of either sign
/// varint-encode into few bytes.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// One series facet's sample history, delta-encoded.
///
/// Layout per sample: `varint(t_ns - prev_t_ns)` followed by the payload
/// delta — `varint(zigzag(v - prev))` for integer streams,
/// `varint(bits ^ prev_bits)` for float streams. Both `prev` registers
/// start at zero.
#[derive(Debug, Clone, PartialEq)]
struct Stream {
    kind: SampleKind,
    len: u32,
    prev_t: u64,
    prev_bits: u64,
    data: Vec<u8>,
    /// Undo register for the most recent push: byte offset where its
    /// encoding starts plus the `prev` registers it replaced. One level is
    /// enough — amendment only ever rewrites the final sample.
    undo_start: usize,
    undo_prev_t: u64,
    undo_prev_bits: u64,
}

impl Stream {
    fn new(kind: SampleKind) -> Self {
        Stream {
            kind,
            len: 0,
            prev_t: 0,
            prev_bits: 0,
            data: Vec::new(),
            undo_start: 0,
            undo_prev_t: 0,
            undo_prev_bits: 0,
        }
    }

    /// Appends a sample; `bits` is the raw 64-bit payload.
    fn push(&mut self, t_ns: u64, bits: u64) {
        self.undo_start = self.data.len();
        self.undo_prev_t = self.prev_t;
        self.undo_prev_bits = self.prev_bits;
        put_varint(&mut self.data, t_ns.wrapping_sub(self.prev_t));
        match self.kind {
            SampleKind::U64 => put_varint(
                &mut self.data,
                zigzag(bits.wrapping_sub(self.prev_bits) as i64),
            ),
            SampleKind::F64 => put_varint(&mut self.data, bits ^ self.prev_bits),
        }
        self.prev_t = t_ns;
        self.prev_bits = bits;
        self.len += 1;
    }

    /// Records a sample at `t_ns`, amending the final sample in place when
    /// the stream already ends at that instant. A boundary scrape (run
    /// end) can land on the same tick as a periodic grid scrape after more
    /// recording happened in between; the later observation must win or
    /// the exactness identity breaks. Returns whether a new sample was
    /// appended (amendment keeps the count unchanged).
    fn record_at(&mut self, t_ns: u64, bits: u64) -> bool {
        if self.len > 0 && self.prev_t == t_ns {
            if self.prev_bits != bits {
                self.data.truncate(self.undo_start);
                self.prev_t = self.undo_prev_t;
                self.prev_bits = self.undo_prev_bits;
                self.len -= 1;
                self.push(t_ns, bits);
            }
            return false;
        }
        self.push(t_ns, bits);
        true
    }

    /// Decodes every sample as `(t_ns, payload bits)`, oldest first.
    fn decode(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.len as usize);
        let mut pos = 0usize;
        let mut t: u64 = 0;
        let mut bits: u64 = 0;
        for _ in 0..self.len {
            let Some(dt) = get_varint(&self.data, &mut pos) else {
                debug_assert!(false, "truncated stream");
                return out;
            };
            let Some(dv) = get_varint(&self.data, &mut pos) else {
                debug_assert!(false, "truncated stream");
                return out;
            };
            t = t.wrapping_add(dt);
            bits = match self.kind {
                SampleKind::U64 => bits.wrapping_add(unzigzag(dv) as u64),
                SampleKind::F64 => bits ^ dv,
            };
            out.push((t, bits));
        }
        out
    }
}

/// A windowed query over one series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryFn {
    /// Counter increase over the window (`v(end) − v(before start)`).
    Increase,
    /// [`QueryFn::Increase`] divided by the window length in seconds.
    Rate,
    /// Time-weighted average over the window. For gauges this is exact:
    /// an integral difference divided by the elapsed time between the
    /// window's boundary samples. For other kinds it is the arithmetic
    /// mean of the samples in the window.
    AvgOverTime,
    /// Largest sample in the window.
    MaxOverTime,
    /// Smallest sample in the window.
    MinOverTime,
    /// Nearest-rank quantile of the samples in the window; the argument
    /// must be in `[0, 1]`.
    QuantileOverTime(f64),
}

impl QueryFn {
    /// Parses the CLI spelling: `rate`, `increase`, `avg_over_time`,
    /// `max_over_time`, `min_over_time` or `quantile:<q>` (e.g.
    /// `quantile:0.99`).
    pub fn parse(s: &str) -> Option<QueryFn> {
        match s {
            "rate" => Some(QueryFn::Rate),
            "increase" => Some(QueryFn::Increase),
            "avg_over_time" => Some(QueryFn::AvgOverTime),
            "max_over_time" => Some(QueryFn::MaxOverTime),
            "min_over_time" => Some(QueryFn::MinOverTime),
            _ => {
                let q = s.strip_prefix("quantile:")?.parse::<f64>().ok()?;
                if (0.0..=1.0).contains(&q) {
                    Some(QueryFn::QuantileOverTime(q))
                } else {
                    None
                }
            }
        }
    }

    /// Stable name used in exports (`quantile:<q>` keeps its argument).
    pub fn label(&self) -> String {
        match self {
            QueryFn::Increase => "increase".to_owned(),
            QueryFn::Rate => "rate".to_owned(),
            QueryFn::AvgOverTime => "avg_over_time".to_owned(),
            QueryFn::MaxOverTime => "max_over_time".to_owned(),
            QueryFn::MinOverTime => "min_over_time".to_owned(),
            QueryFn::QuantileOverTime(q) => format!("quantile:{q}"),
        }
    }
}

/// One evaluated query instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryPoint {
    /// The window's right edge.
    pub at: SimTime,
    /// The query value, `None` when the window holds no samples.
    pub value: Option<f64>,
}

/// The in-memory time-series store: one delta-encoded `Stream` per
/// `(series, facet)`, plus the shared scrape timeline.
///
/// Populate it by calling [`TimeSeriesDb::record`] (or letting a
/// [`TelemetrySink`](super::TelemetrySink) drive it via its scrape hooks),
/// then query with [`TimeSeriesDb::eval_at`] / [`TimeSeriesDb::eval_range`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesDb {
    /// The instant the observation window opened (gauge integrals measure
    /// from here).
    epoch: SimTime,
    interval: SimDuration,
    /// Next scheduled scrape instant for [`TimeSeriesDb::due`].
    next_due: SimTime,
    /// Every instant a scrape happened, ascending, deduplicated.
    times: Vec<SimTime>,
    streams: BTreeMap<StreamKey, Stream>,
    samples: u64,
}

impl TimeSeriesDb {
    /// An empty store whose scrape grid starts at `epoch`.
    pub fn new(epoch: SimTime, config: ScrapeConfig) -> Self {
        assert!(
            !config.interval.is_zero(),
            "scrape interval must be positive"
        );
        TimeSeriesDb {
            epoch,
            interval: config.interval,
            next_due: epoch,
            times: Vec::new(),
            streams: BTreeMap::new(),
            samples: 0,
        }
    }

    /// The configured scrape interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The instant the observation window opened.
    pub fn epoch(&self) -> SimTime {
        self.epoch
    }

    /// Whether the scrape grid has a scheduled instant at or before `now`.
    /// Drivers poll this from their existing periodic work (heartbeat
    /// sweeps) so scraping adds no simulation events of its own.
    pub fn due(&self, now: SimTime) -> bool {
        now >= self.next_due
    }

    /// Samples every series of `registry` at `now` and advances the scrape
    /// grid past `now`. Calling twice at the same instant records the
    /// instant once but *amends*: series created or updated between the
    /// two calls overwrite their final sample, so a forced boundary scrape
    /// (run start / end) composes with a periodic grid scrape that landed
    /// on the same tick — the last observation wins.
    pub fn record(&mut self, registry: &MetricsRegistry, now: SimTime) {
        let fresh_instant = self.times.last() != Some(&now);
        debug_assert!(
            self.times.last().is_none_or(|&t| t <= now),
            "scrape time moved backwards"
        );
        let t_ns = now.as_nanos();
        for (key, c) in registry.counters() {
            self.push_sample(key, SampleField::Total, SampleKind::U64, t_ns, c.value());
        }
        for (key, g) in registry.gauges() {
            self.push_sample(
                key,
                SampleField::Value,
                SampleKind::F64,
                t_ns,
                g.value().to_bits(),
            );
            self.push_sample(
                key,
                SampleField::Integral,
                SampleKind::F64,
                t_ns,
                g.integral(now).to_bits(),
            );
        }
        for (key, h) in registry.histograms() {
            self.push_sample(
                key,
                SampleField::Count,
                SampleKind::U64,
                t_ns,
                h.len() as u64,
            );
            self.push_sample(
                key,
                SampleField::Sum,
                SampleKind::F64,
                t_ns,
                h.sum().to_bits(),
            );
        }
        if fresh_instant {
            self.times.push(now);
        }
        while self.next_due <= now {
            self.next_due = self.next_due.saturating_add(self.interval);
        }
    }

    fn push_sample(
        &mut self,
        series: &SeriesKey,
        field: SampleField,
        kind: SampleKind,
        t_ns: u64,
        bits: u64,
    ) {
        let appended = self
            .streams
            .entry(StreamKey {
                series: series.clone(),
                field,
            })
            .or_insert_with(|| Stream::new(kind))
            .record_at(t_ns, bits);
        if appended {
            self.samples += 1;
        }
    }

    /// Every scrape instant, ascending.
    pub fn scrape_times(&self) -> &[SimTime] {
        &self.times
    }

    /// Number of distinct `(series, facet)` streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Number of distinct registry series with at least one sample.
    pub fn series_count(&self) -> usize {
        let mut n = 0usize;
        let mut last: Option<&SeriesKey> = None;
        for key in self.streams.keys() {
            if last != Some(&key.series) {
                n += 1;
                last = Some(&key.series);
            }
        }
        n
    }

    /// Total samples stored across all streams.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Total encoded payload bytes across all streams.
    pub fn bytes(&self) -> usize {
        self.streams.values().map(|s| s.data.len()).sum()
    }

    /// Mean encoded bytes per stored sample (`0.0` when empty).
    pub fn bytes_per_sample(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.bytes() as f64 / self.samples as f64
        }
    }

    /// Series whose metric name is `metric` and whose labels are a
    /// superset of `labels`, in `(name, labels)` order.
    pub fn series_matching(&self, metric: &str, labels: &[(String, String)]) -> Vec<SeriesKey> {
        let mut out: Vec<SeriesKey> = Vec::new();
        for key in self.streams.keys() {
            if key.series.name != metric {
                continue;
            }
            if !labels
                .iter()
                .all(|(k, v)| key.series.labels.get(k) == Some(v.as_str()))
            {
                continue;
            }
            if out.last() != Some(&key.series) {
                out.push(key.series.clone());
            }
        }
        out
    }

    /// Every distinct series with at least one sample, in order.
    pub fn all_series(&self) -> Vec<SeriesKey> {
        let mut out: Vec<SeriesKey> = Vec::new();
        for key in self.streams.keys() {
            if out.last() != Some(&key.series) {
                out.push(key.series.clone());
            }
        }
        out
    }

    fn stream(&self, series: &SeriesKey, field: SampleField) -> Option<&Stream> {
        self.streams.get(&StreamKey {
            series: series.clone(),
            field,
        })
    }

    /// The series' "natural" instantaneous stream: gauge `Value`, counter
    /// `Total` or histogram `Count`, whichever exists.
    fn natural(&self, series: &SeriesKey) -> Option<(&Stream, SampleKind)> {
        for field in [SampleField::Value, SampleField::Total, SampleField::Count] {
            if let Some(s) = self.stream(series, field) {
                return Some((s, s.kind));
            }
        }
        None
    }

    /// Evaluates `f` over the window `[at − window, at]`.
    ///
    /// Windows are *sample-aligned*: boundary lookups resolve to the
    /// nearest stored sample at or before the boundary, so results are a
    /// pure function of the scrape sequence. Returns `None` when the
    /// series is absent or the window holds no usable samples.
    pub fn eval_at(
        &self,
        series: &SeriesKey,
        f: QueryFn,
        window: SimDuration,
        at: SimTime,
    ) -> Option<f64> {
        let start = SimTime::from_nanos(at.as_nanos().saturating_sub(window.as_nanos()));
        match f {
            QueryFn::Increase => self.increase(series, start, at),
            QueryFn::Rate => {
                let secs = window.as_secs_f64();
                if secs <= 0.0 {
                    return None;
                }
                Some(self.increase(series, start, at)? / secs)
            }
            QueryFn::AvgOverTime => self.avg_over_time(series, start, at),
            QueryFn::MaxOverTime => self
                .window_values(series, start, at)?
                .into_iter()
                .reduce(f64::max),
            QueryFn::MinOverTime => self
                .window_values(series, start, at)?
                .into_iter()
                .reduce(f64::min),
            QueryFn::QuantileOverTime(q) => {
                let mut vs = self.window_values(series, start, at)?;
                if vs.is_empty() {
                    return None;
                }
                vs.sort_by(f64::total_cmp);
                let rank = ((q * vs.len() as f64).ceil() as usize).clamp(1, vs.len());
                vs.get(rank - 1).copied()
            }
        }
    }

    /// Evaluates `f` at every instant of the scrape timeline (or a coarser
    /// `step` grid anchored at the epoch), oldest first.
    pub fn eval_range(
        &self,
        series: &SeriesKey,
        f: QueryFn,
        window: SimDuration,
        step: Option<SimDuration>,
    ) -> Vec<QueryPoint> {
        let instants: Vec<SimTime> = match step {
            None => self.times.clone(),
            Some(step) if !step.is_zero() => {
                let mut out = Vec::new();
                let Some(&last) = self.times.last() else {
                    return Vec::new();
                };
                let mut t = self.epoch;
                while t <= last {
                    out.push(t);
                    t = t.saturating_add(step);
                }
                out
            }
            Some(_) => return Vec::new(),
        };
        instants
            .into_iter()
            .map(|at| QueryPoint {
                at,
                value: self.eval_at(series, f, window, at),
            })
            .collect()
    }

    /// Counter increase over `(start, at]`: the last sample at or before
    /// `at`, minus the last sample *strictly before* `start` (zero when the
    /// stream begins inside the window — a counter is born at zero). The
    /// strict lower bound is what makes a full-run `increase` reproduce the
    /// snapshot `total` even when increments land at the epoch itself.
    fn increase(&self, series: &SeriesKey, start: SimTime, at: SimTime) -> Option<f64> {
        let stream = self
            .stream(series, SampleField::Total)
            .or_else(|| self.stream(series, SampleField::Count))?;
        let samples = stream.decode();
        let end = last_at_or_before(&samples, at)?;
        let base = samples
            .iter()
            .rev()
            .find(|(t, _)| *t < start.as_nanos())
            .map_or(0, |(_, bits)| *bits);
        Some(end.1.saturating_sub(base) as f64)
    }

    /// Gauge time-weighted average via the integral stream; arithmetic
    /// sample mean for other kinds.
    fn avg_over_time(&self, series: &SeriesKey, start: SimTime, at: SimTime) -> Option<f64> {
        if let Some(stream) = self.stream(series, SampleField::Integral) {
            let samples = stream.decode();
            let (e_t, e_bits) = last_at_or_before(&samples, at)?;
            // The window-start boundary resolves to the last sample at or
            // before it; if none exists the gauge's whole history is inside
            // the window and the epoch (integral zero) is the boundary.
            let (s_t, s_bits) = samples
                .iter()
                .rev()
                .find(|(t, _)| *t <= start.as_nanos())
                .copied()
                .unwrap_or((self.epoch.as_nanos(), 0.0f64.to_bits()));
            if e_t <= s_t {
                return None;
            }
            let secs = SimDuration::from_nanos(e_t - s_t).as_secs_f64();
            return Some((f64::from_bits(e_bits) - f64::from_bits(s_bits)) / secs);
        }
        let vs = self.window_values(series, start, at)?;
        if vs.is_empty() {
            None
        } else {
            Some(vs.iter().sum::<f64>() / vs.len() as f64)
        }
    }

    /// The natural-stream sample values with `t` in `[start, at]`, as
    /// floats. `None` when the series has no natural stream; an empty vec
    /// when it has one but no samples land in the window.
    fn window_values(&self, series: &SeriesKey, start: SimTime, at: SimTime) -> Option<Vec<f64>> {
        let (stream, kind) = self.natural(series)?;
        Some(
            stream
                .decode()
                .into_iter()
                .filter(|(t, _)| *t >= start.as_nanos() && *t <= at.as_nanos())
                .map(|(_, bits)| match kind {
                    SampleKind::U64 => bits as f64,
                    SampleKind::F64 => f64::from_bits(bits),
                })
                .collect(),
        )
    }
}

/// The last `(t_ns, bits)` sample with `t ≤ at`, if any.
fn last_at_or_before(samples: &[(u64, u64)], at: SimTime) -> Option<(u64, u64)> {
    samples
        .iter()
        .rev()
        .find(|(t, _)| *t <= at.as_nanos())
        .copied()
}

impl fmt::Display for TimeSeriesDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tsdb: {} series, {} streams, {} scrapes, {} samples, {} bytes ({:.2} B/sample)",
            self.series_count(),
            self.stream_count(),
            self.times.len(),
            self.samples,
            self.bytes(),
            self.bytes_per_sample(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{MetricsRegistry, SeriesKey};

    #[test]
    fn varints_and_zigzag_round_trip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 35, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0usize;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len(), "decoder consumed exactly the encoding");
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        let mut pos = 0usize;
        assert_eq!(get_varint(&[0x80], &mut pos), None, "truncated input");
    }

    #[test]
    fn streams_decode_what_they_encoded() {
        let mut f = Stream::new(SampleKind::F64);
        let floats = [
            (0u64, 1.5f64),
            (1_000_000_000, 1.5),
            (2_500_000_000, -3.25),
            (4_000_000_000, 0.0),
        ];
        for (t, v) in floats {
            f.push(t, v.to_bits());
        }
        let want: Vec<(u64, u64)> = floats.iter().map(|(t, v)| (*t, v.to_bits())).collect();
        assert_eq!(f.decode(), want);

        let mut u = Stream::new(SampleKind::U64);
        let counts = [(0u64, 0u64), (5, 3), (9, 3), (12, 40)];
        for (t, v) in counts {
            u.push(t, v);
        }
        assert_eq!(u.decode(), counts.to_vec());
    }

    #[test]
    fn same_instant_rerecord_amends_instead_of_dropping() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        let mut db = TimeSeriesDb::new(SimTime::ZERO, ScrapeConfig::default());
        let t = SimTime::from_secs(5);
        reg.gauge("g", &[]).set(t, 1.0);
        reg.counter("c", &[]).add(2);
        db.record(&reg, t);
        // The end-of-run pattern: a grid scrape already landed at `t`, then
        // more recording happens at the same instant — a new series appears
        // and the counter moves — before the forced boundary scrape.
        reg.counter("c", &[]).add(3);
        reg.gauge("late", &[]).set(t, 7.0);
        db.record(&reg, t);
        assert_eq!(db.scrape_times(), &[t], "the instant is stored once");
        let key = |name| SeriesKey::new(name, &[]);
        let w = SimDuration::from_secs(5);
        assert_eq!(db.eval_at(&key("c"), QueryFn::Increase, w, t), Some(5.0));
        assert_eq!(
            db.eval_at(&key("late"), QueryFn::MaxOverTime, w, t),
            Some(7.0)
        );
        let before = db.samples();
        db.record(&reg, t);
        assert_eq!(db.samples(), before, "an identical re-record adds nothing");
    }

    #[test]
    fn the_scrape_grid_advances_past_each_record() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        reg.gauge("g", &[]).set(SimTime::ZERO, 1.0);
        let mut db = TimeSeriesDb::new(
            SimTime::ZERO,
            ScrapeConfig::every(SimDuration::from_secs(15)),
        );
        assert!(db.due(SimTime::ZERO));
        db.record(&reg, SimTime::ZERO);
        assert!(!db.due(SimTime::from_secs(14)));
        assert!(db.due(SimTime::from_secs(15)));
        // An off-grid forced scrape advances the grid past itself.
        db.record(&reg, SimTime::from_secs(47));
        assert!(!db.due(SimTime::from_secs(59)));
        assert!(db.due(SimTime::from_secs(60)));
    }

    #[test]
    fn windowed_queries_agree_on_a_simple_staircase() {
        let mut reg = MetricsRegistry::new(SimTime::ZERO);
        let mut db = TimeSeriesDb::new(SimTime::ZERO, ScrapeConfig::default());
        for s in 0..=10u64 {
            let now = SimTime::from_secs(s);
            reg.gauge("g", &[]).set(now, s as f64);
            db.record(&reg, now);
            reg.counter("c", &[]).add(2);
        }
        let at = SimTime::from_secs(10);
        let w = SimDuration::from_secs(10);
        let key = |name| SeriesKey::new(name, &[]);
        assert_eq!(db.eval_at(&key("c"), QueryFn::Increase, w, at), Some(20.0));
        assert_eq!(db.eval_at(&key("c"), QueryFn::Rate, w, at), Some(2.0));
        assert_eq!(
            db.eval_at(&key("g"), QueryFn::MinOverTime, w, at),
            Some(0.0)
        );
        assert_eq!(
            db.eval_at(&key("g"), QueryFn::MaxOverTime, w, at),
            Some(10.0)
        );
        assert_eq!(
            db.eval_at(&key("g"), QueryFn::QuantileOverTime(0.5), w, at),
            Some(5.0)
        );
        // A window that trails the data entirely evaluates to nothing.
        assert_eq!(
            db.eval_at(&key("g"), QueryFn::MaxOverTime, w, SimTime::from_secs(30)),
            None
        );
        // eval_range visits every scrape instant when no step is given.
        let pts = db.eval_range(&key("g"), QueryFn::MaxOverTime, w, None);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts.last().and_then(|p| p.value), Some(10.0));
    }

    #[test]
    fn query_fn_parses_the_cli_spellings() {
        assert_eq!(QueryFn::parse("rate"), Some(QueryFn::Rate));
        assert_eq!(QueryFn::parse("increase"), Some(QueryFn::Increase));
        assert_eq!(QueryFn::parse("avg_over_time"), Some(QueryFn::AvgOverTime));
        assert_eq!(QueryFn::parse("max_over_time"), Some(QueryFn::MaxOverTime));
        assert_eq!(QueryFn::parse("min_over_time"), Some(QueryFn::MinOverTime));
        assert_eq!(
            QueryFn::parse("quantile:0.99"),
            Some(QueryFn::QuantileOverTime(0.99))
        );
        assert_eq!(QueryFn::parse("quantile:1.5"), None);
        assert_eq!(QueryFn::parse("stddev"), None);
    }
}
