//! End-to-end rule tests over the fixture workspace in
//! `tests/fixtures/ws`. The fixtures are a miniature `crates/*/src`
//! tree with one deliberate violation (and one allow-marker negative)
//! per rule; the expected `(rule, file, line)` triples below are pinned
//! to exact fixture lines, so edits to the fixtures must append rather
//! than reorder.

use picloud_lint::baseline::{Baseline, Ratchet};
use picloud_lint::Workspace;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn scan() -> picloud_lint::report::Report {
    Workspace::discover(Some(&fixture_root()))
        .expect("fixture workspace")
        .scan()
        .expect("scan succeeds")
}

const ALIASES: &str = "crates/aliases/src/lib.rs";
const APP: &str = "crates/app/src/lib.rs";
const FLOATS: &str = "crates/floats/src/lib.rs";
const POOLAPP: &str = "crates/poolapp/src/lib.rs";
const SIMCORE: &str = "crates/simcore/src/lib.rs";
const TAINT: &str = "crates/taintchain/src/lib.rs";

#[test]
fn every_rule_fires_exactly_where_expected() {
    let report = scan();
    let got: Vec<(&str, &str, usize)> = report
        .findings
        .iter()
        .map(|f| (f.rule.as_str(), f.file.as_str(), f.line))
        .collect();
    let expected = vec![
        ("D1", ALIASES, 5),  // use … HashMap as Map (literal name at decl)
        ("D1", ALIASES, 6),  // use … {BTreeMap, HashSet as Set}
        ("D2", ALIASES, 7),  // use … Instant as Clock
        ("D3", ALIASES, 8),  // use … OsRng as Entropy
        ("D1", ALIASES, 11), // Map::new() — alias use site
        ("D1", ALIASES, 16), // Set::new() — grouped alias use site
        ("D2", ALIASES, 20), // Clock::now() — alias use site
        ("D3", ALIASES, 25), // Entropy — alias use site
        ("D1", APP, 5),      // use std::collections::HashMap
        ("D2", APP, 11),     // Instant::now()
        ("D3", APP, 16),     // thread_rng()
        ("P1", APP, 21),     // .unwrap()
        ("P1", APP, 22),     // .expect("..")
        ("P1", APP, 24),     // panic!
        ("P1", APP, 26),     // v[0]
        ("P1", APP, 41),     // marker without reason= does not suppress
        ("F1", FLOATS, 6),   // partial_cmp inside sort_by
        ("F1", FLOATS, 12),  // partial_cmp in a multi-line comparator
        ("F1", FLOATS, 27),  // partial_cmp in the private kernel (D5 seed)
        ("D5", FLOATS, 30),  // pub run_stats -> kernel -> F1 source
        ("D4", POOLAPP, 6),  // std::thread::spawn
        ("D4", POOLAPP, 10), // thread::scope
        ("O1", SIMCORE, 6),  // undocumented pub fn in a contract crate
        ("D2", TAINT, 6),    // Instant::now() — the taint seed
        ("D5", TAINT, 14),   // pub entry -> mid -> clock_source
        ("D5", TAINT, 35),   // pub Sampler::read -> sample -> clock_source
    ];
    assert_eq!(got, expected, "full report:\n{}", report.to_text());
    assert_eq!(report.files_scanned, 7);
}

#[test]
fn justified_markers_suppress_and_are_counted() {
    let report = scan();
    // app: D1 line 8, P1 lines 31 and 36 (trailing form);
    // poolapp: D4 line 15; simcore: O1 line 19; floats: F1 line 23;
    // taintchain: D2 line 20 (the severed source).
    assert_eq!(report.allowed, 7, "full report:\n{}", report.to_text());
}

#[test]
fn taint_chain_reports_exact_witness_path() {
    let report = scan();
    let entry = report
        .findings
        .iter()
        .find(|f| f.rule == "D5" && f.file == TAINT && f.line == 14)
        .expect("D5 at taintchain entry");
    assert_eq!(
        entry.path,
        vec![
            "taintchain::entry".to_string(),
            "taintchain::mid".to_string(),
            "taintchain::clock_source".to_string(),
        ],
        "full report:\n{}",
        report.to_text()
    );
    assert!(
        entry
            .message
            .contains("D2 at crates/taintchain/src/lib.rs:6"),
        "{}",
        entry.message
    );
    let method_hop = report
        .findings
        .iter()
        .find(|f| f.rule == "D5" && f.file == TAINT && f.line == 35)
        .expect("D5 at Sampler::read");
    assert_eq!(
        method_hop.path,
        vec![
            "taintchain::Sampler::read".to_string(),
            "taintchain::Sampler::sample".to_string(),
            "taintchain::clock_source".to_string(),
        ]
    );
}

#[test]
fn marker_at_source_severs_the_whole_chain() {
    let report = scan();
    // `severed_entry` (line 24) reaches a wall-clock source that carries
    // a justified allow(D2) marker: no D5 anywhere on that chain.
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == "D5" && f.file == TAINT && f.line == 24),
        "severed chain must not produce D5:\n{}",
        report.to_text()
    );
}

#[test]
fn distance_zero_sources_are_not_double_reported() {
    let report = scan();
    // `sort_latencies` (floats line 5) is itself the F1 source: the local
    // rule owns distance 0, D5 only fires for transitive callers.
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == "D5" && f.file == FLOATS && f.line == 5),
        "distance-0 D5 duplicate:\n{}",
        report.to_text()
    );
}

#[test]
fn attribute_docs_satisfy_o1() {
    let report = scan();
    // simcore line 26 is documented via `#[doc = "…"]` — no O1 finding.
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == "O1" && f.file == SIMCORE && f.line == 26),
        "#[doc] attribute must count as documentation:\n{}",
        report.to_text()
    );
}

#[test]
fn bench_crate_is_exempt_from_wall_clock_and_panic_rules() {
    let report = scan();
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.file.starts_with("crates/bench/")),
        "bench must be exempt from D2/P1:\n{}",
        report.to_text()
    );
}

#[test]
fn test_modules_are_exempt() {
    let report = scan();
    // HashMap + unwrap inside `#[cfg(test)] mod tests` (app lines 53-54)
    // must not fire.
    assert!(
        !report.findings.iter().any(|f| f.line >= 49),
        "findings inside the fixture test module:\n{}",
        report.to_text()
    );
}

#[test]
fn reports_are_byte_identical_across_runs() {
    let a = scan();
    let b = scan();
    assert_eq!(a.to_text(), b.to_text());
    assert_eq!(a.to_jsonl(), b.to_jsonl());
    assert_eq!(a.to_jsonl().lines().count(), a.findings.len());
    // JSONL lines carry the fixed field order the telemetry exporters
    // use, so byte-level diffs stay stable across runs.
    for line in a.to_jsonl().lines() {
        assert!(line.starts_with("{\"rule\":\""), "{line}");
        // Per-line findings close after the snippet; D5 findings carry a
        // trailing witness-path array.
        assert!(line.ends_with("\"}") || line.ends_with("\"]}"), "{line}");
        for field in [
            "\",\"file\":\"",
            "\",\"line\":",
            ",\"message\":\"",
            "\",\"snippet\":\"",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }
}

#[test]
fn ratchet_clean_grow_shrink() {
    let report = scan();
    let anchored = Baseline::from_report(&report);

    // Same tree, same baseline: clean.
    assert_eq!(anchored.ratchet(&report), Ratchet::Clean);

    // Tolerating one fewer P1 in app simulates a new violation: grow.
    let mut tighter = anchored.clone();
    let p1_app = tighter
        .entries
        .iter_mut()
        .find(|e| e.rule == "P1" && e.file == APP)
        .expect("P1 bucket for app fixture");
    p1_app.count -= 1;
    match tighter.ratchet(&report) {
        Ratchet::Grew(regs) => {
            assert_eq!(regs.len(), 1);
            assert_eq!((regs[0].rule.as_str(), regs[0].file.as_str()), ("P1", APP));
            assert_eq!(regs[0].current, regs[0].baselined + 1);
        }
        other => panic!("expected growth, got {other:?}"),
    }

    // Tolerating one extra P1 simulates a fixed violation: the ratchet
    // auto-shrinks back to exactly the current tree.
    let mut looser = anchored.clone();
    looser
        .entries
        .iter_mut()
        .find(|e| e.rule == "P1" && e.file == APP)
        .expect("P1 bucket for app fixture")
        .count += 1;
    match looser.ratchet(&report) {
        Ratchet::Shrunk(smaller) => assert_eq!(smaller, anchored),
        other => panic!("expected shrink, got {other:?}"),
    }
}

#[test]
fn baseline_save_load_round_trip() {
    let report = scan();
    let b = Baseline::from_report(&report);
    let path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-fixture-baseline.json");
    b.save(&path).expect("save");
    let back = Baseline::load(&path).expect("load");
    assert_eq!(back, b);
    // Serialisation itself is deterministic.
    assert_eq!(b.to_json(), back.to_json());
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_baseline_means_zero_debt() {
    let report = scan();
    let empty = Baseline::load(Path::new("/nonexistent/lint-baseline.json")).expect("empty");
    match empty.ratchet(&report) {
        Ratchet::Grew(regs) => assert!(!regs.is_empty()),
        other => panic!("fixture violations must regress an empty baseline, got {other:?}"),
    }
}
