// Fixture: crates/bench is exempt from D2 (wall clock) and P1 (panic
// paths) — benchmarks time the real machine and may assert hard.

pub fn measure() -> u128 {
    let start = Instant::now(); // D2 exempt in bench
    let elapsed = start.elapsed().as_nanos();
    assert!(elapsed > 0);
    elapsed
}

pub fn hard_assert(v: &[u64]) -> u64 {
    v.first().copied().unwrap() // P1 exempt in bench
}
