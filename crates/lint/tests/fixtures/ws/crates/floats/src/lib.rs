// Fixture: F1 — non-total float ordering in sort comparators, plus a
// D5 chain seeded by an F1 source. Line numbers are asserted by
// crates/lint/tests/lint_rules.rs — append only.

pub fn sort_latencies(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal)); // line 6: F1
}

pub fn sort_multiline(v: &mut [(f64, u32)]) {
    v.sort_unstable_by(|a, b| {
        a.0
            .partial_cmp(&b.0) // line 12: F1 — the context spans the closure
            .unwrap_or(core::cmp::Ordering::Equal)
    });
}

pub fn sort_total(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b)); // total order: no finding
}

pub fn sort_waived(v: &mut [f64]) {
    // lint: allow(F1) reason=fixture: inputs are checked finite upstream
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal)); // allowed
}

fn kernel(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal)); // line 27: F1 seed
}

pub fn run_stats(v: &mut [f64]) {
    kernel(v); // D5 fires at the `pub fn` line above (line 30)
}
