// Fixture: exercises D4 (thread-spawn quarantine) positives and the
// justified-allow negative. Line numbers are asserted by
// crates/lint/tests/lint_rules.rs — append, don't reorder.

pub fn rogue_spawn() {
    std::thread::spawn(|| {}); // line 6: D4 positive (std::thread)
}

pub fn rogue_scope() {
    thread::scope(|_s| {}); // line 10: D4 positive (thread::scope)
}

pub fn quarantined_pool() {
    // lint: allow(D4) reason=fixture pool: scoped, clock-free, order-restoring
    std::thread::scope(|_s| {}); // line 15: D4 allowed by marker above
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        std::thread::spawn(|| {}).join().unwrap(); // D4/P1 exempt here
    }
}
