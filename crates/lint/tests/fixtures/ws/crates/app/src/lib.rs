// Fixture: exercises D1 / D2 / D3 / P1 positives, allow-marker
// negatives, and test-module exclusion. Line numbers are asserted by
// crates/lint/tests/lint_rules.rs — append, don't reorder.

use std::collections::HashMap; // line 5: D1 positive

// lint: allow(D1) reason=fixture shows a justified ordered-iteration wrapper
use std::collections::HashSet; // line 8: D1 allowed by marker above

pub fn wall_clock() -> u64 {
    let _t = Instant::now(); // line 11: D2 positive
    0
}

pub fn ambient() -> u64 {
    let x: u64 = thread_rng().gen(); // line 16: D3 positive
    x
}

pub fn panics(v: &[u64]) -> u64 {
    let a = v.first().unwrap(); // line 21: P1 positive (unwrap)
    let b = v.get(1).expect("two elements"); // line 22: P1 positive (expect)
    if *a > *b {
        panic!("unordered"); // line 24: P1 positive (panic!)
    }
    v[0] // line 26: P1 positive (literal index)
}

pub fn justified(v: &[u64]) -> u64 {
    // lint: allow(P1) reason=fixture invariant: caller guarantees non-empty
    let a = v.first().unwrap(); // line 31: P1 allowed by marker above
    *a // trailing-marker form below must also work:
}

pub fn trailing(v: &[u64]) -> u64 {
    v.first().copied().unwrap() // lint: allow(P1) reason=fixture trailing marker
}

pub fn unjustified(v: &[u64]) -> u64 {
    // lint: allow(P1)
    v.first().copied().unwrap() // line 41: P1 positive — marker above has no reason
}

pub fn not_code() -> &'static str {
    // HashMap unwrap() panic! Instant::now — comments never match
    "HashMap unwrap() panic! thread_rng Instant::now" // strings never match
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let m = std::collections::HashMap::new(); // D1 exempt here
        let _ = m.get("k").unwrap(); // P1 exempt here
    }
}
