// Fixture: D5 — interprocedural determinism taint. A 3-hop chain from
// a public entry point to a wall-clock source, a marker-severed twin,
// and a method hop. Line numbers are asserted by lint_rules.rs.

fn clock_source() -> u64 {
    let _t = Instant::now(); // line 6: D2 positive — the taint seed
    0
}

fn mid() -> u64 {
    clock_source()
}

pub fn entry() -> u64 {
    mid() // D5 fires at the `pub fn` line above (line 14)
}

fn severed_source() -> u64 {
    // lint: allow(D2) reason=fixture: a marker at the source severs every caller
    let _t = Instant::now();
    0
}

pub fn severed_entry() -> u64 {
    severed_source() // no D5: the chain is severed at its source
}

pub struct Sampler;

impl Sampler {
    fn sample(&self) -> u64 {
        clock_source()
    }

    pub fn read(&self) -> u64 {
        self.sample() // D5 fires at the `pub fn` line above (line 35)
    }
}
