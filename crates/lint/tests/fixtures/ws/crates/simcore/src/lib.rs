// Fixture: O1 — public items in the contract crates must carry docs.
// Line numbers are asserted by lint_rules.rs — append, don't reorder.

pub mod submodule; // line 4: `pub mod name;` is exempt (docs live in-file)

pub fn undocumented() {} // line 6: O1 positive

/// Documented — no finding.
pub fn documented() {}

/// Documented through attributes and blank lines.
#[derive(
    Debug,
    Clone,
)]
pub struct Spanning; // multi-line attribute between doc and item: fine

// lint: allow(O1) reason=fixture: intentionally undocumented probe
pub fn waived() {} // line 19: O1 allowed by marker above

pub(crate) fn internal() {} // pub(crate) is not public API

pub use std::time::Duration; // re-exports are exempt

#[doc = "Documented through an attribute — O1 must accept this."]
pub fn attr_documented() {} // line 26: `#[doc = ..]` counts as docs
