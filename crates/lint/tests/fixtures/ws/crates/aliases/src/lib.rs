// Fixture: D1/D2/D3 alias evasion — `use … as` renames are resolved
// back to the banned name and flagged at every use site. Line numbers
// are asserted by crates/lint/tests/lint_rules.rs — append only.

use std::collections::HashMap as Map; // line 5: literal D1 (decl); alias flagged at use sites
use std::collections::{BTreeMap, HashSet as Set}; // line 6: literal D1; grouped alias
use std::time::Instant as Clock; // line 7: literal D2
use rand::rngs::OsRng as Entropy; // line 8: literal D3

pub fn hidden_map() -> usize {
    let m: Map<u32, u32> = Map::new(); // line 11: D1 via alias
    m.len()
}

pub fn hidden_set() -> usize {
    Set::<u32>::new().len() // line 16: D1 via grouped alias
}

pub fn hidden_clock() -> u64 {
    let _t = Clock::now(); // line 20: D2 via alias
    0
}

pub fn hidden_rng() -> u64 {
    let _r = Entropy; // line 25: D3 via alias
    0
}

pub fn ordered_fine() -> usize {
    BTreeMap::<u32, u32>::new().len() // BTreeMap is ordered: no finding
}
