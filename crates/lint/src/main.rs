//! `picloud-lint` binary — scan, report, ratchet.
//!
//! ```sh
//! cargo run -p picloud-lint                     # full report (text)
//! cargo run -p picloud-lint -- --format jsonl   # machine-readable
//! cargo run -p picloud-lint -- --format github  # PR annotations
//! cargo run -p picloud-lint -- --check-baseline # CI gate: fail on growth
//! cargo run -p picloud-lint -- --write-baseline # re-anchor the ratchet
//! cargo run -p picloud-lint -- --rules          # list the rule book
//! ```

use picloud_lint::baseline::{Baseline, Ratchet};
use picloud_lint::rules::Rule;
use picloud_lint::Workspace;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    format: String,
    out: Option<PathBuf>,
    check_baseline: bool,
    write_baseline: bool,
    list_rules: bool,
}

fn usage() {
    eprintln!(
        "picloud-lint — determinism & panic-safety static analysis\n\n\
         usage: picloud-lint [--root DIR] [--baseline FILE] [--format text|jsonl|github]\n\
                [--out FILE] [--check-baseline | --write-baseline] [--rules]\n\n\
         --check-baseline  compare against the committed lint-baseline.json:\n\
                           new violations fail (exit 1), fixed ones shrink the file\n\
         --write-baseline  re-anchor the baseline to the current tree\n\
         --rules           print the rule book and exit\n\n\
         See LINTS.md for the rules and the allow-marker syntax."
    );
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        baseline: None,
        format: "text".to_string(),
        out: None,
        check_baseline: false,
        write_baseline: false,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                opts.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?))
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    it.next().ok_or("--baseline needs a file path")?,
                ))
            }
            "--format" => {
                let f = it
                    .next()
                    .ok_or("--format needs one of text, jsonl, github")?;
                if f != "text" && f != "jsonl" && f != "github" {
                    return Err(format!("unknown --format '{f}' (text, jsonl, github)"));
                }
                opts.format = f.clone();
            }
            "--out" => opts.out = Some(PathBuf::from(it.next().ok_or("--out needs a file path")?)),
            "--check-baseline" => opts.check_baseline = true,
            "--write-baseline" => opts.write_baseline = true,
            "--rules" => opts.list_rules = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("picloud-lint: {msg}\n");
            }
            usage();
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        for rule in Rule::ALL {
            println!("{}  {}", rule.name(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }
    match run(&opts) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("picloud-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Options) -> Result<bool, String> {
    let ws = Workspace::discover(opts.root.as_deref())?;
    let report = ws.scan()?;
    let rendered = match opts.format.as_str() {
        "jsonl" => report.to_jsonl(),
        "github" => report.to_github(),
        _ => report.to_text(),
    };
    match &opts.out {
        None => print!("{rendered}"),
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("wrote {} bytes to {}", rendered.len(), path.display());
        }
    }
    let baseline_path = opts.baseline.clone().unwrap_or_else(|| ws.baseline_path());
    if opts.write_baseline {
        let b = Baseline::from_report(&report);
        b.save(&baseline_path)?;
        eprintln!(
            "picloud-lint: wrote {} ({} tolerated bucket(s))",
            baseline_path.display(),
            b.entries.len()
        );
        return Ok(true);
    }
    if opts.check_baseline {
        return check_baseline(&report, &baseline_path);
    }
    Ok(true)
}

fn check_baseline(
    report: &picloud_lint::report::Report,
    baseline_path: &Path,
) -> Result<bool, String> {
    let committed = Baseline::load(baseline_path)?;
    match committed.ratchet(report) {
        Ratchet::Clean => {
            eprintln!("picloud-lint: baseline clean (no new violations)");
            Ok(true)
        }
        Ratchet::Shrunk(smaller) => {
            smaller.save(baseline_path)?;
            eprintln!(
                "picloud-lint: violations fixed — baseline auto-shrunk to {} bucket(s); \
                 commit the updated {}",
                smaller.entries.len(),
                baseline_path.display()
            );
            Ok(true)
        }
        Ratchet::Grew(regressions) => {
            eprintln!(
                "picloud-lint: {} (rule, file) bucket(s) grew past the baseline:",
                regressions.len()
            );
            for r in &regressions {
                eprintln!(
                    "  {} {}: {} finding(s), baseline tolerates {}",
                    r.rule, r.file, r.current, r.baselined
                );
            }
            eprintln!(
                "fix the new violation, add a justified `// lint: allow(..) reason=..` \
                 marker, or (exceptionally) re-anchor with --write-baseline"
            );
            Ok(false)
        }
    }
}
