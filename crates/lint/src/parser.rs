//! A recursive-descent *item* parser over the lexer's code shadow.
//!
//! The taint pass ([`crate::taint`]) needs three things the per-line
//! rules cannot see: which `use` declarations bring which paths into
//! scope (and under which aliases), where each function's body starts
//! and ends, and which functions each body calls. This module extracts
//! exactly that — no expressions, no types, no generics — from the
//! comment/string-blanked code shadow produced by [`crate::lexer::lex`].
//!
//! The grammar subset is deliberately small:
//!
//! * `use` trees with groups and aliases
//!   (`use a::b::{C as D, e::F};`) flatten into [`UseDecl`]s;
//! * `fn` items — free functions and the methods of `impl Type` /
//!   `impl Trait for Type` blocks — become [`FnDecl`]s with their
//!   brace-matched body extent;
//! * identifier-followed-by-`(` and `.ident(` inside a body become
//!   [`CallRef`]s (macros, keywords and struct literals are excluded).
//!
//! Everything is resolved later by [`crate::symgraph`]; the parser
//! itself never guesses. Parsing is total: malformed input degrades to
//! fewer recognised items, never to an error.

use crate::lexer::FileMap;

/// One flattened `use` binding: `segments` is the full path, `alias`
/// the name it is bound to in this file (the last segment unless
/// `as` renamed it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// Full path segments, e.g. `["std", "collections", "HashMap"]`.
    pub segments: Vec<String>,
    /// Local binding name (`Map` for `… as Map`, else the last segment).
    pub alias: String,
    /// 0-based line of the `use` keyword.
    pub line: usize,
    /// 0-based line of the terminating `;` (declarations may span lines).
    pub end_line: usize,
}

/// One function item (free function or method) with its body extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDecl {
    /// The function's bare name.
    pub name: String,
    /// `Some(type name)` for methods of an `impl` block.
    pub owner: Option<String>,
    /// Whether the item is `pub` (plain `pub` only; `pub(crate)` and
    /// narrower are not public API).
    pub is_pub: bool,
    /// 0-based line of the `fn` keyword.
    pub decl_line: usize,
    /// 0-based first line of the body (the `{`), equal to `body_end`
    /// for bodyless trait-method signatures.
    pub body_start: usize,
    /// 0-based last line of the body (the matching `}`).
    pub body_end: usize,
    /// Whether the declaration sits in `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
    /// Calls made from the body, in source order.
    pub calls: Vec<CallRef>,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallRef {
    /// Path segments as written: `["helper"]`, `["Type", "method"]`,
    /// `["crate", "module", "f"]`. A method call `.m(` has one segment.
    pub segments: Vec<String>,
    /// True for `.m(…)` receiver-method syntax.
    pub is_method: bool,
    /// 0-based call-site line.
    pub line: usize,
}

/// Everything the symbol/graph layer needs from one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileModel {
    /// Flattened `use` bindings.
    pub uses: Vec<UseDecl>,
    /// Function items, in source order.
    pub fns: Vec<FnDecl>,
}

/// One shadow token: an identifier (with its line) or a punctuation
/// character (with its line).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String, usize),
    Punct(char, usize),
}

impl Tok {
    fn line(&self) -> usize {
        match self {
            Tok::Ident(_, l) | Tok::Punct(_, l) => *l,
        }
    }
}

/// Rust keywords that look like call heads but never are.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "in",
    "as", "move", "ref", "mut", "fn", "impl", "trait", "struct", "enum", "union", "mod", "use",
    "pub", "where", "unsafe", "async", "await", "dyn", "const", "static", "type", "crate", "self",
    "Self", "super", "extern", "true", "false",
];

fn tokenize(map: &FileMap) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (line_no, code) in map.code.iter().enumerate() {
        let chars: Vec<char> = code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok::Ident(chars[start..i].iter().collect(), line_no));
            } else if c.is_whitespace() {
                i += 1;
            } else {
                toks.push(Tok::Punct(c, line_no));
                i += 1;
            }
        }
    }
    toks
}

/// Parses one file's shadow into its [`FileModel`].
pub fn parse(map: &FileMap) -> FileModel {
    let toks = tokenize(map);
    let mut model = FileModel::default();
    let mut p = Parser {
        toks: &toks,
        map,
        pos: 0,
    };
    p.items(&mut model, None);
    model
}

struct Parser<'a> {
    toks: &'a [Tok],
    map: &'a FileMap,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + off)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }

    fn is_ident(&self, off: usize, s: &str) -> bool {
        matches!(self.peek_at(off), Some(Tok::Ident(i, _)) if i == s)
    }

    fn is_punct(&self, off: usize, c: char) -> bool {
        matches!(self.peek_at(off), Some(Tok::Punct(p, _)) if *p == c)
    }

    /// Skips one balanced `<…>` group if the cursor sits on `<`.
    /// `>>` closers arrive as two `>` puncts, which balance naturally.
    fn skip_generics(&mut self) {
        if !self.is_punct(0, '<') {
            return;
        }
        let mut depth = 0i64;
        while let Some(t) = self.peek() {
            match t {
                Tok::Punct('<', _) => depth += 1,
                Tok::Punct('>', _) => {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        return;
                    }
                }
                // `->` and `=>` never appear inside a type-generic list
                // we care about; a `{` or `;` means we mis-guessed (e.g.
                // a `<` comparison) — bail without consuming it.
                Tok::Punct('{', _) | Tok::Punct(';', _) => return,
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Skips tokens until just past the matching `}` of the `{` the
    /// cursor must currently sit on. Returns the closing line.
    fn skip_balanced_braces(&mut self) -> usize {
        let mut depth = 0i64;
        let mut last_line = self.peek().map(Tok::line).unwrap_or(0);
        while let Some(t) = self.bump() {
            last_line = t.line();
            match t {
                Tok::Punct('{', _) => depth += 1,
                Tok::Punct('}', _) => {
                    depth -= 1;
                    if depth == 0 {
                        return last_line;
                    }
                }
                _ => {}
            }
        }
        last_line
    }

    /// Parses a brace-delimited item region (`None` owner = module
    /// level). Recognises `use`, `impl`, `trait`, `mod` and `fn`;
    /// anything else is skipped token-wise.
    fn items(&mut self, model: &mut FileModel, owner: Option<&str>) {
        while let Some(t) = self.peek() {
            match t {
                Tok::Punct('}', _) => {
                    self.pos += 1;
                    return;
                }
                Tok::Ident(w, _) if w == "use" => {
                    self.parse_use(model);
                }
                Tok::Ident(w, _) if w == "impl" => {
                    self.parse_impl(model);
                }
                Tok::Ident(w, _) if w == "trait" => {
                    // `trait Name { … }`: default method bodies are real
                    // code; parse them with the trait as owner.
                    self.pos += 1;
                    let name = match self.peek() {
                        Some(Tok::Ident(n, _)) => n.clone(),
                        _ => String::new(),
                    };
                    self.advance_to_block_or_semi();
                    if self.is_punct(0, '{') {
                        self.pos += 1;
                        self.items(model, Some(&name));
                    }
                }
                Tok::Ident(w, _) if w == "mod" => {
                    // `mod name { … }` — recurse; `mod name;` — skip.
                    self.pos += 1;
                    self.advance_to_block_or_semi();
                    if self.is_punct(0, '{') {
                        self.pos += 1;
                        self.items(model, owner);
                    } else if self.is_punct(0, ';') {
                        self.pos += 1;
                    }
                }
                Tok::Ident(w, _) if w == "fn" => {
                    self.parse_fn(model, owner, self.saw_pub_before());
                }
                Tok::Punct('{', _) => {
                    // A brace group of an item we don't model (struct,
                    // enum, const initialiser…) — skip it balanced so
                    // its `}` cannot end our region.
                    self.skip_balanced_braces();
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    /// Whether the tokens immediately before the cursor (`fn` keyword)
    /// carry a plain `pub` visibility, looking back across modifiers
    /// (`const`, `async`, `unsafe`, `extern ""`). `pub ( … )`
    /// restrictions are not public API.
    fn saw_pub_before(&self) -> bool {
        let mut i = self.pos;
        let mut steps = 0;
        while i > 0 && steps < 6 {
            i -= 1;
            steps += 1;
            match &self.toks[i] {
                Tok::Ident(w, _)
                    if w == "const" || w == "async" || w == "unsafe" || w == "extern" =>
                {
                    continue
                }
                Tok::Punct('"', _) => continue, // blanked extern ABI string
                Tok::Ident(w, _) if w == "pub" => return true,
                Tok::Punct(')', _) => {
                    // Possible `pub(crate)` — find its `(` then check
                    // for `pub` just before; restricted vis is not pub.
                    return false;
                }
                _ => return false,
            }
        }
        false
    }

    /// Advances to the next `{` or `;` at angle-bracket depth 0 —
    /// used to jump over generics / where-clauses / signatures.
    fn advance_to_block_or_semi(&mut self) {
        let mut angle = 0i64;
        while let Some(t) = self.peek() {
            match t {
                Tok::Punct('<', _) => angle += 1,
                Tok::Punct('>', _) => angle = (angle - 1).max(0),
                Tok::Punct('{', _) | Tok::Punct(';', _) if angle == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// `use a::b::{C as D, e::F, *};` → flattened [`UseDecl`]s.
    fn parse_use(&mut self, model: &mut FileModel) {
        let start_line = self.peek().map(Tok::line).unwrap_or(0);
        self.pos += 1; // `use`
        let mut prefix: Vec<String> = Vec::new();
        self.parse_use_tree(&mut prefix, model, start_line);
        // Consume through the terminating `;` if still pending.
        while let Some(t) = self.peek() {
            if matches!(t, Tok::Punct(';', _)) {
                self.pos += 1;
                break;
            }
            self.pos += 1;
        }
    }

    fn parse_use_tree(&mut self, prefix: &mut Vec<String>, model: &mut FileModel, start: usize) {
        let depth_at_entry = prefix.len();
        loop {
            match self.peek() {
                Some(Tok::Ident(seg, _)) => {
                    let seg = seg.clone();
                    self.pos += 1;
                    if seg == "as" {
                        // alias for the path accumulated so far
                        if let Some(Tok::Ident(alias, l)) = self.peek() {
                            let alias = alias.clone();
                            let end = *l;
                            self.pos += 1;
                            if !prefix.is_empty() {
                                model.uses.push(UseDecl {
                                    segments: prefix.clone(),
                                    alias,
                                    line: start,
                                    end_line: end,
                                });
                            }
                            prefix.truncate(depth_at_entry);
                        }
                        continue;
                    }
                    prefix.push(seg);
                }
                Some(Tok::Punct(':', _)) => {
                    self.pos += 1; // `::` arrives as two `:`
                }
                Some(Tok::Punct('{', _)) => {
                    self.pos += 1;
                    // Each comma-separated subtree shares the prefix.
                    loop {
                        let before = prefix.len();
                        self.parse_use_tree(prefix, model, start);
                        self.finish_use_leaf(prefix, before, model, start);
                        prefix.truncate(before);
                        match self.peek() {
                            Some(Tok::Punct(',', _)) => {
                                self.pos += 1;
                            }
                            Some(Tok::Punct('}', _)) => {
                                self.pos += 1;
                                return;
                            }
                            _ => return,
                        }
                    }
                }
                Some(Tok::Punct('*', _)) => {
                    // Glob: nothing nameable to record.
                    self.pos += 1;
                    prefix.truncate(depth_at_entry);
                    return;
                }
                Some(Tok::Punct(',', _)) | Some(Tok::Punct('}', _)) => return,
                Some(Tok::Punct(';', _)) => {
                    self.finish_use_leaf(prefix, depth_at_entry, model, start);
                    prefix.truncate(depth_at_entry);
                    return;
                }
                _ => return,
            }
        }
    }

    /// Records a plain (un-aliased) leaf accumulated beyond `base`.
    fn finish_use_leaf(&self, prefix: &[String], base: usize, model: &mut FileModel, start: usize) {
        if prefix.len() > base {
            let last = prefix.last().cloned().unwrap_or_default();
            if last == "self" {
                // `a::b::{self}` binds `b`.
                let segs: Vec<String> = prefix[..prefix.len() - 1].to_vec();
                if let Some(alias) = segs.last().cloned() {
                    model.uses.push(UseDecl {
                        segments: segs,
                        alias,
                        line: start,
                        end_line: self.peek().map(Tok::line).unwrap_or(start),
                    });
                }
            } else {
                model.uses.push(UseDecl {
                    segments: prefix.to_vec(),
                    alias: last,
                    line: start,
                    end_line: self.peek().map(Tok::line).unwrap_or(start),
                });
            }
        }
    }

    /// `impl <…>? Path (for Path)? { items }` — methods get the
    /// implementing type (the `for` type when present) as owner.
    fn parse_impl(&mut self, model: &mut FileModel) {
        self.pos += 1; // `impl`
        self.skip_generics();
        let first = self.parse_type_path_tail();
        let mut owner = first;
        if self.is_ident(0, "for") {
            self.pos += 1;
            owner = self.parse_type_path_tail();
        }
        // Jump over where-clauses to the block.
        self.advance_to_block_or_semi();
        if self.is_punct(0, '{') {
            self.pos += 1;
            self.items(model, owner.as_deref());
        } else if self.is_punct(0, ';') {
            self.pos += 1;
        }
    }

    /// Reads a type path (`a::b::Name<…>`), returning the last plain
    /// segment. Stops before `for`, `where`, `{` or `;`.
    fn parse_type_path_tail(&mut self) -> Option<String> {
        let mut last: Option<String> = None;
        loop {
            match self.peek() {
                Some(Tok::Ident(w, _)) if w == "for" || w == "where" => return last,
                Some(Tok::Ident(w, _)) => {
                    last = Some(w.clone());
                    self.pos += 1;
                    self.skip_generics();
                }
                Some(Tok::Punct(':', _)) | Some(Tok::Punct('&', _)) => {
                    self.pos += 1;
                }
                Some(Tok::Punct('<', _)) => self.skip_generics(),
                _ => return last,
            }
        }
    }

    /// `fn name <generics>? ( args ) (-> ret)? (where …)? { body }`.
    fn parse_fn(&mut self, model: &mut FileModel, owner: Option<&str>, is_pub: bool) {
        let decl_line = self.peek().map(Tok::line).unwrap_or(0);
        self.pos += 1; // `fn`
        let name = match self.peek() {
            Some(Tok::Ident(n, _)) => {
                let n = n.clone();
                self.pos += 1;
                n
            }
            _ => return,
        };
        self.advance_to_block_or_semi();
        let is_test = self.map.test.get(decl_line).copied().unwrap_or(false);
        match self.peek() {
            Some(Tok::Punct('{', l)) => {
                let body_start = *l;
                let (calls, body_end) = self.parse_body_calls();
                model.fns.push(FnDecl {
                    name,
                    owner: owner.map(str::to_string),
                    is_pub,
                    decl_line,
                    body_start,
                    body_end,
                    is_test,
                    calls,
                });
            }
            Some(Tok::Punct(';', _)) => {
                // Bodyless trait signature — record for completeness.
                self.pos += 1;
                model.fns.push(FnDecl {
                    name,
                    owner: owner.map(str::to_string),
                    is_pub,
                    decl_line,
                    body_start: decl_line,
                    body_end: decl_line,
                    is_test,
                    calls: Vec::new(),
                });
            }
            _ => {}
        }
    }

    /// Consumes the brace-balanced body at the cursor, extracting call
    /// references. Nested items (closures are transparent; nested `fn`s
    /// are rare and folded into the enclosing body) keep brace balance.
    fn parse_body_calls(&mut self) -> (Vec<CallRef>, usize) {
        let mut calls = Vec::new();
        let mut depth = 0i64;
        let mut end_line = self.peek().map(Tok::line).unwrap_or(0);
        // A path accumulator: `a :: b :: c (` becomes a call to a::b::c.
        let mut path: Vec<String> = Vec::new();
        let mut path_is_method = false;
        while let Some(t) = self.peek() {
            end_line = t.line();
            match t {
                Tok::Punct('{', _) => {
                    depth += 1;
                    path.clear();
                    self.pos += 1;
                }
                Tok::Punct('}', _) => {
                    depth -= 1;
                    path.clear();
                    self.pos += 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Punct('.', _) => {
                    path.clear();
                    path_is_method = true;
                    self.pos += 1;
                }
                Tok::Punct(':', _) => {
                    // keep the path alive across `::`
                    self.pos += 1;
                }
                Tok::Ident(w, line) => {
                    let line = *line;
                    let w = w.clone();
                    self.pos += 1;
                    if NON_CALL_KEYWORDS.contains(&w.as_str()) {
                        path.clear();
                        path_is_method = false;
                        continue;
                    }
                    path.push(w);
                    match self.peek() {
                        Some(Tok::Punct('(', _)) => {
                            calls.push(CallRef {
                                segments: if path_is_method {
                                    vec![path.last().cloned().unwrap_or_default()]
                                } else {
                                    path.clone()
                                },
                                is_method: path_is_method,
                                line,
                            });
                            path.clear();
                            path_is_method = false;
                        }
                        Some(Tok::Punct('!', _)) => {
                            // macro — not a call edge
                            path.clear();
                            path_is_method = false;
                        }
                        Some(Tok::Punct(':', _)) => {
                            // path continues (`a::b`)
                            path_is_method = false;
                        }
                        _ => {
                            path.clear();
                            path_is_method = false;
                        }
                    }
                }
                _ => {
                    path.clear();
                    path_is_method = false;
                    self.pos += 1;
                }
            }
        }
        (calls, end_line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> FileModel {
        parse(&lex(src))
    }

    #[test]
    fn flattens_use_trees_with_aliases() {
        let m = model(
            "use std::collections::HashMap as Map;\n\
             use std::collections::{BTreeMap, HashSet as Set};\n\
             use a::b::{self, c::D};\n",
        );
        let pairs: Vec<(String, String)> = m
            .uses
            .iter()
            .map(|u| (u.segments.join("::"), u.alias.clone()))
            .collect();
        assert_eq!(
            pairs,
            vec![
                ("std::collections::HashMap".into(), "Map".into()),
                ("std::collections::BTreeMap".into(), "BTreeMap".into()),
                ("std::collections::HashSet".into(), "Set".into()),
                ("a::b".into(), "b".into()),
                ("a::b::c::D".into(), "D".into()),
            ]
        );
    }

    #[test]
    fn fns_and_impl_methods_with_bodies() {
        let m = model(
            "pub fn free() {\n    helper();\n}\n\
             struct S;\n\
             impl S {\n    fn method(&self) -> u32 {\n        free();\n        0\n    }\n}\n\
             impl Clone for S {\n    fn clone(&self) -> S {\n        S\n    }\n}\n",
        );
        let names: Vec<(String, Option<String>, bool)> = m
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None, true),
                ("method".into(), Some("S".into()), false),
                ("clone".into(), Some("S".into()), false),
            ]
        );
        assert_eq!(m.fns[0].calls.len(), 1);
        assert_eq!(m.fns[0].calls[0].segments, vec!["helper".to_string()]);
        assert_eq!(m.fns[1].calls[0].segments, vec!["free".to_string()]);
    }

    #[test]
    fn method_and_qualified_calls() {
        let m = model(
            "fn f(x: &T) {\n    x.sample();\n    mod_a::g();\n    Type::assoc(1);\n    mac!(h());\n}\n",
        );
        let calls = &m.fns[0].calls;
        assert!(calls
            .iter()
            .any(|c| c.is_method && c.segments == vec!["sample".to_string()]));
        assert!(calls
            .iter()
            .any(|c| !c.is_method && c.segments == vec!["mod_a".to_string(), "g".to_string()]));
        assert!(calls
            .iter()
            .any(|c| c.segments == vec!["Type".to_string(), "assoc".to_string()]));
    }

    #[test]
    fn test_fns_are_flagged() {
        let m = model(
            "#[cfg(test)]\nmod tests {\n    fn t() {\n        x.unwrap();\n    }\n}\nfn lib() {}\n",
        );
        assert!(m.fns[0].is_test);
        assert!(!m.fns[1].is_test);
    }

    #[test]
    fn body_extents_cover_nested_braces() {
        let m = model("fn f() {\n    if a {\n        g();\n    }\n}\nfn h() {}\n");
        assert_eq!(m.fns[0].body_start, 0);
        assert_eq!(m.fns[0].body_end, 4);
        assert_eq!(m.fns[1].decl_line, 5);
    }
}
