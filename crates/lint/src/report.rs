//! Deterministic finding reports: sorted text and JSONL renderings.
//!
//! The JSONL form follows the `simcore::telemetry` exporter conventions:
//! one JSON object per line, fields in a fixed order, strings escaped by
//! hand — so two runs over the same tree are byte-identical and the file
//! diffs cleanly in CI artifacts.

use std::collections::BTreeMap;

/// One rule violation at one source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule short name (`D1` … `O1`).
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// What is wrong and what to do about it.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// The outcome of scanning a workspace.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings suppressed by justified `// lint: allow(..)` markers.
    pub allowed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Sorts findings into canonical report order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    }

    /// Aggregates findings per `(rule, file)` — the ratchet unit.
    pub fn counts(&self) -> BTreeMap<(String, String), usize> {
        let mut out = BTreeMap::new();
        for f in &self.findings {
            *out.entry((f.rule.clone(), f.file.clone())).or_insert(0) += 1;
        }
        out
    }

    /// Human-readable report: one `file:line: RULE message` per finding
    /// plus a summary trailer.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: {} {}\n    {}\n",
                f.file, f.line, f.rule, f.message, f.snippet
            ));
        }
        out.push_str(&format!(
            "picloud-lint: {} finding(s) in {} file(s) scanned, {} allowed by marker\n",
            self.findings.len(),
            self.files_scanned,
            self.allowed
        ));
        out
    }

    /// Machine-readable report: one JSON object per finding per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str("{\"rule\":\"");
            json_escape(&f.rule, &mut out);
            out.push_str("\",\"file\":\"");
            json_escape(&f.file, &mut out);
            out.push_str(&format!("\",\"line\":{},\"message\":\"", f.line));
            json_escape(&f.message, &mut out);
            out.push_str("\",\"snippet\":\"");
            json_escape(&f.snippet, &mut out);
            out.push_str("\"}\n");
        }
        out
    }
}

/// Minimal JSON string escaping (same dialect as the telemetry exporters).
pub fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str, line: usize) -> Finding {
        Finding {
            rule: rule.into(),
            file: file.into(),
            line,
            message: "m".into(),
            snippet: "s".into(),
        }
    }

    #[test]
    fn sorted_and_counted() {
        let mut r = Report {
            findings: vec![
                finding("P1", "b.rs", 9),
                finding("D1", "a.rs", 3),
                finding("P1", "a.rs", 3),
            ],
            allowed: 1,
            files_scanned: 2,
        };
        r.sort();
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.findings[0].rule, "D1");
        let c = r.counts();
        assert_eq!(c[&("P1".to_string(), "a.rs".to_string())], 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn jsonl_escapes_and_terminates_lines() {
        let r = Report {
            findings: vec![finding("D1", "a\"b.rs", 1)],
            allowed: 0,
            files_scanned: 1,
        };
        let j = r.to_jsonl();
        assert!(j.ends_with('\n'));
        assert!(j.contains("a\\\"b.rs"));
    }
}
