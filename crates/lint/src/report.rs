//! Deterministic finding reports: sorted text and JSONL renderings.
//!
//! The JSONL form follows the `simcore::telemetry` exporter conventions:
//! one JSON object per line, fields in a fixed order, strings escaped by
//! hand — so two runs over the same tree are byte-identical and the file
//! diffs cleanly in CI artifacts.

use std::collections::BTreeMap;

/// One rule violation at one source line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Finding {
    /// Rule short name (`D1` … `O1`, `D5`, `F1`).
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// What is wrong and what to do about it.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// For interprocedural findings (D5): the shortest witness call
    /// path, public entry first, source function last. Empty for the
    /// per-line rules.
    pub path: Vec<String>,
}

/// The outcome of scanning a workspace.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings suppressed by justified `// lint: allow(..)` markers.
    pub allowed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Sorts findings into canonical report order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    }

    /// Aggregates findings per `(rule, file)` — the ratchet unit.
    pub fn counts(&self) -> BTreeMap<(String, String), usize> {
        let mut out = BTreeMap::new();
        for f in &self.findings {
            *out.entry((f.rule.clone(), f.file.clone())).or_insert(0) += 1;
        }
        out
    }

    /// Human-readable report: one `file:line: RULE message` per finding
    /// plus a summary trailer.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: {} {}\n    {}\n",
                f.file, f.line, f.rule, f.message, f.snippet
            ));
            if !f.path.is_empty() {
                out.push_str(&format!("    witness: {}\n", f.path.join(" -> ")));
            }
        }
        out.push_str(&format!(
            "picloud-lint: {} finding(s) in {} file(s) scanned, {} allowed by marker\n",
            self.findings.len(),
            self.files_scanned,
            self.allowed
        ));
        out
    }

    /// Machine-readable report: one JSON object per finding per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str("{\"rule\":\"");
            json_escape(&f.rule, &mut out);
            out.push_str("\",\"file\":\"");
            json_escape(&f.file, &mut out);
            out.push_str(&format!("\",\"line\":{},\"message\":\"", f.line));
            json_escape(&f.message, &mut out);
            out.push_str("\",\"snippet\":\"");
            json_escape(&f.snippet, &mut out);
            out.push('"');
            if !f.path.is_empty() {
                out.push_str(",\"path\":[");
                for (i, hop) in f.path.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    json_escape(hop, &mut out);
                    out.push('"');
                }
                out.push(']');
            }
            out.push_str("}\n");
        }
        out
    }

    /// GitHub Actions workflow-command annotations: one
    /// `::error file=…,line=…,title=…::message` per finding, so lint
    /// findings surface inline on pull requests.
    pub fn to_github(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let mut message = f.message.clone();
            if !f.path.is_empty() {
                message.push_str(&format!(" [witness: {}]", f.path.join(" -> ")));
            }
            out.push_str(&format!(
                "::error file={},line={},title=picloud-lint {}::{}\n",
                gh_escape_property(&f.file),
                f.line,
                gh_escape_property(&f.rule),
                gh_escape_data(&message)
            ));
        }
        out
    }
}

/// Escapes workflow-command message data (`%`, CR, LF).
fn gh_escape_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escapes workflow-command property values (data escapes plus `:`, `,`).
fn gh_escape_property(s: &str) -> String {
    gh_escape_data(s).replace(':', "%3A").replace(',', "%2C")
}

/// Minimal JSON string escaping (same dialect as the telemetry exporters).
pub fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str, line: usize) -> Finding {
        Finding {
            rule: rule.into(),
            file: file.into(),
            line,
            message: "m".into(),
            snippet: "s".into(),
            path: Vec::new(),
        }
    }

    #[test]
    fn sorted_and_counted() {
        let mut r = Report {
            findings: vec![
                finding("P1", "b.rs", 9),
                finding("D1", "a.rs", 3),
                finding("P1", "a.rs", 3),
            ],
            allowed: 1,
            files_scanned: 2,
        };
        r.sort();
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.findings[0].rule, "D1");
        let c = r.counts();
        assert_eq!(c[&("P1".to_string(), "a.rs".to_string())], 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn jsonl_escapes_and_terminates_lines() {
        let r = Report {
            findings: vec![finding("D1", "a\"b.rs", 1)],
            allowed: 0,
            files_scanned: 1,
        };
        let j = r.to_jsonl();
        assert!(j.ends_with('\n'));
        assert!(j.contains("a\\\"b.rs"));
    }

    #[test]
    fn witness_paths_render_in_every_format() {
        let mut f = finding("D5", "a.rs", 2);
        f.path = vec!["a::entry".into(), "a::mid".into(), "a::source".into()];
        let r = Report {
            findings: vec![f],
            allowed: 0,
            files_scanned: 1,
        };
        assert!(r
            .to_text()
            .contains("witness: a::entry -> a::mid -> a::source"));
        assert!(r
            .to_jsonl()
            .contains(",\"path\":[\"a::entry\",\"a::mid\",\"a::source\"]}"));
        assert!(r
            .to_github()
            .contains("[witness: a::entry -> a::mid -> a::source]"));
    }

    #[test]
    fn github_annotations_escape_workflow_metacharacters() {
        let mut f = finding("D1", "a.rs", 3);
        f.message = "50% of\nruns".into();
        let r = Report {
            findings: vec![f],
            allowed: 0,
            files_scanned: 1,
        };
        let gh = r.to_github();
        assert!(gh.starts_with("::error file=a.rs,line=3,title=picloud-lint D1::"));
        assert!(gh.contains("50%25 of%0Aruns"));
    }
}
