//! The ratcheting baseline: `lint-baseline.json`.
//!
//! The committed baseline records, per `(rule, file)`, how many findings
//! are tolerated. The ratchet only turns one way:
//!
//! * a finding count **above** its baselined count is a regression and
//!   fails the check;
//! * a count **below** it means violations were fixed — the baseline is
//!   rewritten (auto-shrunk) so the fix can never regress silently;
//! * the baseline may never grow: new tolerated debt requires either a
//!   justified `// lint: allow(..) reason=..` marker at the call site or
//!   an explicit `--write-baseline` in the same change, which reviewers
//!   see as a diff to this file.

use crate::report::Report;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// One tolerated `(rule, file)` bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// Rule short name.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Tolerated finding count.
    pub count: usize,
}

/// The committed ratchet state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Baseline {
    /// Schema version (currently 1).
    pub version: u32,
    /// Tolerated buckets, sorted by (rule, file).
    pub entries: Vec<BaselineEntry>,
}

/// A `(rule, file)` bucket that exceeds its baselined count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// Rule short name.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Findings in the working tree.
    pub current: usize,
    /// Findings tolerated by the committed baseline.
    pub baselined: usize,
}

/// Outcome of comparing a fresh scan against the committed baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ratchet {
    /// Scan matches the baseline exactly.
    Clean,
    /// Violations were fixed; the shrunk baseline should replace the
    /// committed one.
    Shrunk(Baseline),
    /// New violations appeared — the check fails.
    Grew(Vec<Regression>),
}

impl Baseline {
    /// An empty baseline (a fully clean tree).
    pub fn empty() -> Baseline {
        Baseline {
            version: 1,
            entries: Vec::new(),
        }
    }

    /// Builds a baseline from a scan, sorted by (rule, file).
    pub fn from_report(report: &Report) -> Baseline {
        let mut entries: Vec<BaselineEntry> = report
            .counts()
            .into_iter()
            .map(|((rule, file), count)| BaselineEntry { rule, file, count })
            .collect();
        entries.sort_by(|a, b| (&a.rule, &a.file).cmp(&(&b.rule, &b.file)));
        Baseline {
            version: 1,
            entries,
        }
    }

    /// Loads a committed baseline. A missing file is an empty baseline so
    /// a fresh checkout ratchets from zero debt.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        if !path.exists() {
            return Ok(Baseline::empty());
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
    }

    /// Serialises deterministically (pretty JSON + trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).unwrap_or_default();
        s.push('\n');
        s
    }

    /// Writes the baseline file.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    fn as_map(&self) -> BTreeMap<(String, String), usize> {
        self.entries
            .iter()
            .map(|e| ((e.rule.clone(), e.file.clone()), e.count))
            .collect()
    }

    /// Compares a fresh scan against `self` (the committed ratchet).
    pub fn ratchet(&self, report: &Report) -> Ratchet {
        let current = Baseline::from_report(report);
        let committed = self.as_map();
        let now = current.as_map();
        let mut regressions = Vec::new();
        for ((rule, file), n) in &now {
            let tolerated = committed.get(&(rule.clone(), file.clone())).copied();
            if *n > tolerated.unwrap_or(0) {
                regressions.push(Regression {
                    rule: rule.clone(),
                    file: file.clone(),
                    current: *n,
                    baselined: tolerated.unwrap_or(0),
                });
            }
        }
        if !regressions.is_empty() {
            regressions.sort_by(|a, b| (&a.rule, &a.file).cmp(&(&b.rule, &b.file)));
            return Ratchet::Grew(regressions);
        }
        if now != committed {
            return Ratchet::Shrunk(current);
        }
        Ratchet::Clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Finding;

    fn report(entries: &[(&str, &str, usize)]) -> Report {
        let mut findings = Vec::new();
        for (rule, file, count) in entries {
            for i in 0..*count {
                findings.push(Finding {
                    rule: rule.to_string(),
                    file: file.to_string(),
                    line: i + 1,
                    message: "m".into(),
                    snippet: "s".into(),
                    path: Vec::new(),
                });
            }
        }
        Report {
            findings,
            allowed: 0,
            files_scanned: 1,
        }
    }

    #[test]
    fn clean_when_equal() {
        let r = report(&[("P1", "a.rs", 2)]);
        let b = Baseline::from_report(&r);
        assert_eq!(b.ratchet(&r), Ratchet::Clean);
    }

    #[test]
    fn growth_fails() {
        let b = Baseline::from_report(&report(&[("P1", "a.rs", 1)]));
        let r = report(&[("P1", "a.rs", 2), ("D1", "b.rs", 1)]);
        match b.ratchet(&r) {
            Ratchet::Grew(regs) => {
                assert_eq!(regs.len(), 2);
                assert_eq!(regs[0].rule, "D1");
                assert_eq!(regs[1].baselined, 1);
            }
            other => panic!("expected growth, got {other:?}"),
        }
    }

    #[test]
    fn shrink_rewrites() {
        let b = Baseline::from_report(&report(&[("P1", "a.rs", 3), ("D1", "b.rs", 1)]));
        let r = report(&[("P1", "a.rs", 1)]);
        match b.ratchet(&r) {
            Ratchet::Shrunk(nb) => {
                assert_eq!(nb.entries.len(), 1);
                assert_eq!(nb.entries[0].count, 1);
            }
            other => panic!("expected shrink, got {other:?}"),
        }
    }

    #[test]
    fn round_trips_through_json() {
        let b = Baseline::from_report(&report(&[("P1", "a.rs", 2), ("O1", "b.rs", 1)]));
        let back: Baseline = serde_json::from_str(&b.to_json()).expect("parses");
        assert_eq!(back, b);
    }
}
