//! Interprocedural determinism taint (rule **D5**).
//!
//! The per-line rules (D1–D4, F1) flag a nondeterminism *source* where
//! it is written; this pass follows the call graph to where it is
//! *felt*. Every unsevered source seeds taint at its enclosing
//! function; taint then propagates caller-ward along
//! [`crate::symgraph::CallGraph`] edges, and every **public**,
//! non-test, simulation-facing function that *transitively* reaches a
//! source (at least one call away — the source function itself is
//! already flagged by the local rule) earns a D5 finding carrying the
//! shortest witness call path.
//!
//! Severing: a justified `// lint: allow(..) reason=..` marker at the
//! source line — either for the source's own rule (D1–D4, F1) or for
//! D5 itself — severs taint for *all* transitive callers; the
//! quarantine is reviewed once, where the code is. A D5 finding can
//! also be waived individually with an `allow(D5)` marker at the
//! public function's declaration line.
//!
//! Propagation is a multi-seed BFS over the reverse graph with seeds
//! and neighbours visited in sorted node order, so the chosen witness
//! path — and therefore the rendered report — is byte-deterministic.

use crate::report::Finding;
use crate::rules::Rule;
use crate::symgraph::CallGraph;
use std::collections::{BTreeSet, VecDeque};

/// One nondeterminism source found by the per-line rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintSource {
    /// The local rule that matched (D1–D4 or F1).
    pub rule: Rule,
    /// 0-based source line.
    pub line: usize,
    /// Short human label, e.g. `wall-clock Instant`.
    pub what: String,
    /// True when a justified allow marker at the source severs taint.
    pub severed: bool,
}

/// Crates whose public functions are not simulation-facing: `bench`
/// times the real machine by design and `lint` is this tool itself.
const D5_EXEMPT_CRATES: &[&str] = &["bench", "lint"];

/// One file's input to the taint pass: workspace-relative path, the
/// sources the per-line rules found, and the per-line allow sets
/// (index = 0-based line).
pub type FileTaint = (String, Vec<TaintSource>, Vec<BTreeSet<Rule>>);

struct Seed<'a> {
    node: usize,
    source: &'a TaintSource,
    file: &'a str,
}

/// Runs taint propagation. `files` pairs each workspace-relative path
/// with its sources and per-line allow sets (index = 0-based line).
/// Returns the D5 findings (unsorted — the caller merges and sorts)
/// plus the number suppressed by `allow(D5)` markers.
pub fn propagate(
    graph: &CallGraph,
    files: &[FileTaint],
    original_lines: &dyn Fn(&str, usize) -> String,
) -> (Vec<Finding>, usize) {
    // ---- seed -----------------------------------------------------
    let mut seeds: Vec<Seed<'_>> = Vec::new();
    for (file, sources, _) in files {
        for s in sources {
            if s.severed {
                continue;
            }
            if let Some(node) = graph.enclosing_fn(file, s.line) {
                seeds.push(Seed {
                    node,
                    source: s,
                    file,
                });
            }
        }
    }
    // Deterministic seed order: by node id, then line.
    seeds.sort_by_key(|s| (s.node, s.source.line));

    // ---- BFS over the reverse graph -------------------------------
    let callers = graph.callers();
    let n = graph.nodes.len();
    // For each node: (distance, next hop toward the source, seed idx).
    let mut dist: Vec<Option<(usize, usize, usize)>> = vec![None; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (si, seed) in seeds.iter().enumerate() {
        if dist[seed.node].is_none() {
            dist[seed.node] = Some((0, seed.node, si));
            queue.push_back(seed.node);
        }
    }
    while let Some(u) = queue.pop_front() {
        let Some((d, _, si)) = dist[u] else {
            continue;
        };
        for &caller in &callers[u] {
            if dist[caller].is_none() {
                dist[caller] = Some((d + 1, u, si));
                queue.push_back(caller);
            }
        }
    }

    // ---- report ---------------------------------------------------
    let mut findings = Vec::new();
    let mut allowed = 0usize;
    for node in &graph.nodes {
        let Some((d, _, si)) = dist[node.id] else {
            continue;
        };
        if d == 0 || !node.is_pub || node.is_test {
            continue;
        }
        if D5_EXEMPT_CRATES.contains(&node.crate_name.as_str()) {
            continue;
        }
        let seed = &seeds[si];
        // Walk the witness path: this node → … → source function.
        let mut path = vec![node.display()];
        let mut cur = node.id;
        while let Some((dd, next, _)) = dist[cur] {
            if dd == 0 {
                break;
            }
            path.push(graph.nodes[next].display());
            cur = next;
        }
        // allow(D5) at the declaration line waives this finding only.
        let decl_allows = files
            .iter()
            .find(|(f, _, _)| f == &node.file)
            .and_then(|(_, _, allows)| allows.get(node.decl_line))
            .map(|set| set.contains(&Rule::D5))
            .unwrap_or(false);
        if decl_allows {
            allowed += 1;
            continue;
        }
        findings.push(Finding {
            rule: Rule::D5.name().to_string(),
            file: node.file.clone(),
            line: node.decl_line + 1,
            message: format!(
                "public fn `{}` transitively reaches {} ({} at {}:{}); fix the source \
                 or sever the chain with a justified marker there",
                node.name,
                seed.source.what,
                seed.source.rule.name(),
                seed.file,
                seed.source.line + 1
            ),
            snippet: original_lines(&node.file, node.decl_line),
            path,
        });
    }
    (findings, allowed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::symgraph::CallGraph;

    fn run(src: &str, sources: Vec<TaintSource>) -> (Vec<Finding>, usize) {
        let rel = "crates/a/src/lib.rs".to_string();
        let model = parse(&lex(src));
        let graph = CallGraph::build(&[(rel.clone(), model)]);
        let allows = vec![BTreeSet::new(); src.lines().count()];
        let files = vec![(rel, sources, allows)];
        let lines: Vec<String> = src.lines().map(|l| l.trim().to_string()).collect();
        let get = move |_f: &str, l: usize| lines.get(l).cloned().unwrap_or_default();
        propagate(&graph, &files, &get)
    }

    const CHAIN: &str = "fn source() -> u64 {\n    0\n}\nfn mid() -> u64 {\n    source()\n}\npub fn entry() -> u64 {\n    mid()\n}\n";

    #[test]
    fn taint_reaches_public_callers_with_shortest_path() {
        let (findings, allowed) = run(
            CHAIN,
            vec![TaintSource {
                rule: Rule::D2,
                line: 1,
                what: "wall-clock Instant".into(),
                severed: false,
            }],
        );
        assert_eq!(allowed, 0);
        assert_eq!(findings.len(), 1);
        let f = &findings[0];
        assert_eq!(f.rule, "D5");
        assert_eq!(f.line, 7); // `pub fn entry` decl line, 1-based
        assert_eq!(f.path, vec!["a::entry", "a::mid", "a::source"]);
        assert!(f.message.contains("D2 at crates/a/src/lib.rs:2"));
    }

    #[test]
    fn severed_sources_do_not_seed() {
        let (findings, _) = run(
            CHAIN,
            vec![TaintSource {
                rule: Rule::D2,
                line: 1,
                what: "wall-clock Instant".into(),
                severed: true,
            }],
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn the_source_function_itself_is_not_reflagged() {
        let (findings, _) = run(
            "pub fn direct() -> u64 {\n    0\n}\n",
            vec![TaintSource {
                rule: Rule::D2,
                line: 1,
                what: "wall-clock Instant".into(),
                severed: false,
            }],
        );
        assert!(
            findings.is_empty(),
            "distance-0 nodes are the local rule's job"
        );
    }
}
