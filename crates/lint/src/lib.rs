//! `picloud-lint` — determinism & panic-safety static analysis for the
//! PiCloud workspace.
//!
//! The emulator's headline guarantee is that every experiment, telemetry
//! export and span forest is byte-deterministic for a fixed seed. The
//! end-to-end suites (`tests/determinism.rs`, `tests/telemetry.rs`,
//! `tests/spans.rs`) catch violations *after* they flake; this crate
//! makes the contract statically checkable on every commit. It walks
//! every `crates/*/src/**/*.rs` file with a comment/string-aware lexer
//! (see [`lexer`]) and enforces the named rules in [`rules`]:
//!
//! * **D1** — no `std::collections::{HashMap,HashSet}` outside tests;
//! * **D2** — no wall-clock time outside `crates/bench`;
//! * **D3** — no ambient randomness;
//! * **D4** — no thread spawning outside `crates/bench` and the
//!   quarantined `flowsim::partition` pool;
//! * **F1** — no non-total float ordering (`partial_cmp` comparators)
//!   in sim-visible code;
//! * **P1** — no `unwrap`/`expect`/`panic!`/literal-indexing in
//!   non-test, non-bench library code;
//! * **O1** — public items in `simcore`/`mgmt`/`faults` carry docs.
//!
//! On top of the per-line rules sits a lightweight front-end: a
//! recursive-descent item parser ([`parser`]) feeds per-crate symbol
//! tables and a workspace-wide call graph ([`symgraph`]), over which
//! the interprocedural **D5** determinism-taint pass ([`taint`])
//! reports every public simulation-facing function that transitively
//! reaches a D1–D4/F1 source, with the shortest witness call path.
//!
//! Findings are reported deterministically ([`report`]) and ratcheted
//! against the committed `lint-baseline.json` ([`baseline`]): new
//! violations fail, fixed ones auto-shrink the baseline, and the
//! baseline never grows. See `LINTS.md` at the workspace root for the
//! full rule book and marker syntax.

#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod symgraph;
pub mod taint;

use report::Report;
use std::path::{Path, PathBuf};

/// The committed ratchet file, relative to the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// A scan rooted at the workspace checkout.
#[derive(Debug, Clone)]
pub struct Workspace {
    root: PathBuf,
}

impl Workspace {
    /// Opens the workspace at `root`, or at this crate's compile-time
    /// checkout (two levels above `crates/lint`) when `None` — which is
    /// correct for `cargo run -p picloud-lint` from anywhere in the tree.
    pub fn discover(root: Option<&Path>) -> Result<Workspace, String> {
        let root = match root {
            Some(r) => r.to_path_buf(),
            None => Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .map(Path::to_path_buf)
                .ok_or_else(|| "cannot locate workspace root".to_string())?,
        };
        if !root.join("crates").is_dir() {
            return Err(format!(
                "{} does not look like the workspace root (no crates/)",
                root.display()
            ));
        }
        Ok(Workspace { root })
    }

    /// The workspace root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The default baseline path (`<root>/lint-baseline.json`).
    pub fn baseline_path(&self) -> PathBuf {
        self.root.join(BASELINE_FILE)
    }

    /// Every `crates/*/src/**/*.rs` file, workspace-relative with forward
    /// slashes, sorted — the scan order and therefore the report order is
    /// independent of filesystem iteration order.
    pub fn source_files(&self) -> Result<Vec<String>, String> {
        let crates_dir = self.root.join("crates");
        let mut crate_dirs: Vec<PathBuf> = read_dir_sorted(&crates_dir)?
            .into_iter()
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        let mut files = Vec::new();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
        let mut rel: Vec<String> = files
            .into_iter()
            .filter_map(|p| {
                p.strip_prefix(&self.root).ok().map(|r| {
                    r.components()
                        .map(component_str)
                        .collect::<Vec<_>>()
                        .join("/")
                })
            })
            .collect();
        rel.sort();
        Ok(rel)
    }

    /// Scans the whole workspace: the per-line rules file by file, then
    /// the interprocedural D5 taint pass over the assembled call graph.
    /// Returns the sorted report.
    pub fn scan(&self) -> Result<Report, String> {
        let mut report = Report::default();
        let mut models: Vec<(String, parser::FileModel)> = Vec::new();
        let mut taints: Vec<taint::FileTaint> = Vec::new();
        let mut sources_text: std::collections::BTreeMap<String, Vec<String>> =
            std::collections::BTreeMap::new();
        for rel in self.source_files()? {
            let full = self.root.join(&rel);
            let src = std::fs::read_to_string(&full)
                .map_err(|e| format!("cannot read {}: {e}", full.display()))?;
            let scan = rules::check_file(&rel, &src);
            report.findings.extend(scan.findings);
            report.allowed += scan.allowed;
            report.files_scanned += 1;
            models.push((rel.clone(), scan.model));
            taints.push((rel.clone(), scan.sources, scan.allows));
            sources_text.insert(rel, src.lines().map(|l| l.trim().to_string()).collect());
        }
        let graph = symgraph::CallGraph::build(&models);
        let snippet = |file: &str, line: usize| -> String {
            sources_text
                .get(file)
                .and_then(|lines| lines.get(line))
                .cloned()
                .unwrap_or_default()
        };
        let (d5, d5_allowed) = taint::propagate(&graph, &taints, &snippet);
        report.findings.extend(d5);
        report.allowed += d5_allowed;
        report.sort();
        Ok(report)
    }
}

fn component_str(c: std::path::Component<'_>) -> String {
    c.as_os_str().to_string_lossy().into_owned()
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_own_workspace() {
        let ws = Workspace::discover(None).expect("workspace");
        let files = ws.source_files().expect("files");
        assert!(
            files.iter().any(|f| f == "crates/lint/src/lib.rs"),
            "{files:?}"
        );
        // Sorted ⇒ deterministic report order.
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
