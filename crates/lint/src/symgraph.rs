//! Per-crate symbol tables and the workspace-wide call graph.
//!
//! [`CallGraph::build`] takes every file's [`crate::parser::FileModel`] and
//! links call sites to function items *resolvable by name*:
//!
//! * `use` aliases expand first (`use crate::util as u; u::tick()`
//!   resolves through the alias to `crate::util::tick`), which is the
//!   same table that closes the D1–D3 alias-evasion hole in
//!   [`crate::rules`];
//! * paths rooted at `crate`, a workspace crate directory name, or its
//!   `picloud_*` package name narrow the candidate set to that crate;
//! * a `Type::name` qualifier narrows to inherent/trait methods of
//!   `Type`;
//! * remaining ambiguity is resolved by proximity: same file (all
//!   candidates), then same crate (free calls: all; method calls: only
//!   if unique), then workspace-wide only if unique. Unresolvable calls
//!   produce no edge — the graph under-approximates rather than
//!   connecting everything named `get` to everything else;
//! * bare method calls named after std prelude methods (`STD_METHODS`:
//!   `.collect()`, `.len()`, …) never resolve by name alone — a
//!   workspace fn that shares the name would otherwise become a false
//!   hub collecting every iterator call in the tree.
//!
//! The node and edge orders are fully determined by the sorted file
//! walk, so every downstream report stays byte-deterministic.

use crate::parser::{CallRef, FileModel};
use std::collections::{BTreeMap, BTreeSet};

/// One function item in the workspace graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index into [`CallGraph::nodes`].
    pub id: usize,
    /// Crate directory name (`crates/<name>/…`).
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Bare function name.
    pub name: String,
    /// Implementing type for methods.
    pub owner: Option<String>,
    /// Plain `pub` visibility.
    pub is_pub: bool,
    /// 0-based line of the `fn` keyword.
    pub decl_line: usize,
    /// 0-based body extent (inclusive).
    pub body_start: usize,
    /// 0-based body extent (inclusive).
    pub body_end: usize,
    /// Declared inside `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
}

impl FnNode {
    /// `crate::Type::name` / `crate::name` — the witness-path label.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(t) => format!("{}::{}::{}", self.crate_name, t, self.name),
            None => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

/// The workspace call graph: nodes plus forward edges.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// All function items, in sorted-file source order.
    pub nodes: Vec<FnNode>,
    /// `callees[id]` — sorted, deduplicated callee ids.
    pub callees: Vec<Vec<usize>>,
}

/// Method names from the std prelude (iterators, collections, `Option`
/// / `Result` combinators, numeric helpers). A bare `.collect()` or
/// `.len()` is almost always the std trait method, not a workspace
/// item that happens to share the name — resolving such calls by
/// global uniqueness would create false hub edges (every iterator
/// `.collect()` binding to the one workspace fn named `collect`), so
/// bare method calls with these names never resolve by name alone.
/// Qualified forms (`Telemetry::collect(..)`) still resolve.
const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "append",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "binary_search_by",
    "bytes",
    "ceil",
    "chain",
    "chars",
    "checked_add",
    "checked_div",
    "checked_mul",
    "checked_sub",
    "chunks",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "end",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fmt",
    "fold",
    "for_each",
    "from",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "map",
    "map_err",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_else",
    "parse",
    "partial_cmp",
    "pop",
    "pop_front",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "push_back",
    "push_str",
    "read",
    "remove",
    "repeat",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "round",
    "saturating_add",
    "saturating_sub",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "split",
    "split_at",
    "split_whitespace",
    "sqrt",
    "start",
    "starts_with",
    "step_by",
    "sum",
    "swap",
    "take",
    "take_while",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "wrapping_add",
    "wrapping_sub",
    "write",
    "zip",
];

/// The crate a workspace-relative path belongs to (`crates/<name>/…`).
pub fn crate_of(rel_path: &str) -> &str {
    let mut parts = rel_path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name,
        _ => "",
    }
}

impl CallGraph {
    /// Builds the graph from `(rel_path, model)` pairs in sorted-path
    /// order (the order [`crate::Workspace::source_files`] produces).
    pub fn build(files: &[(String, FileModel)]) -> CallGraph {
        // ---- nodes -------------------------------------------------
        let mut nodes: Vec<FnNode> = Vec::new();
        let mut file_nodes: Vec<Vec<usize>> = vec![Vec::new(); files.len()];
        for (fi, (rel, model)) in files.iter().enumerate() {
            for f in &model.fns {
                let id = nodes.len();
                nodes.push(FnNode {
                    id,
                    crate_name: crate_of(rel).to_string(),
                    file: rel.clone(),
                    name: f.name.clone(),
                    owner: f.owner.clone(),
                    is_pub: f.is_pub,
                    decl_line: f.decl_line,
                    body_start: f.body_start,
                    body_end: f.body_end,
                    is_test: f.is_test,
                });
                file_nodes[fi].push(id);
            }
        }
        // ---- name index --------------------------------------------
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for n in &nodes {
            by_name.entry(n.name.as_str()).or_default().push(n.id);
        }
        // Crate-name aliases: dir name, `picloud_<dir>`, and the
        // `picloud` package that lives in `crates/core`.
        let mut crate_alias: BTreeMap<String, String> = BTreeMap::new();
        for (rel, _) in files {
            let c = crate_of(rel).to_string();
            if c.is_empty() {
                continue;
            }
            crate_alias.insert(c.clone(), c.clone());
            crate_alias.insert(format!("picloud_{c}"), c.clone());
            if c == "core" {
                crate_alias.insert("picloud".to_string(), c.clone());
            }
        }
        // ---- edges -------------------------------------------------
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (fi, (rel, model)) in files.iter().enumerate() {
            let caller_crate = crate_of(rel);
            // Alias table for this file: binding name → full segments.
            let aliases: BTreeMap<&str, &[String]> = model
                .uses
                .iter()
                .map(|u| (u.alias.as_str(), u.segments.as_slice()))
                .collect();
            for (local_idx, f) in model.fns.iter().enumerate() {
                let caller_id = file_nodes[fi][local_idx];
                let mut out: BTreeSet<usize> = BTreeSet::new();
                for call in &f.calls {
                    for id in resolve(
                        call,
                        fi,
                        caller_crate,
                        &aliases,
                        &by_name,
                        &crate_alias,
                        &nodes,
                        &file_nodes,
                    ) {
                        if id != caller_id {
                            out.insert(id);
                        }
                    }
                }
                callees[caller_id] = out.into_iter().collect();
            }
        }
        CallGraph { nodes, callees }
    }

    /// Reverse adjacency (`callers[id]`), sorted.
    pub fn callers(&self) -> Vec<Vec<usize>> {
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (caller, outs) in self.callees.iter().enumerate() {
            for &callee in outs {
                rev[callee].push(caller);
            }
        }
        rev
    }

    /// The innermost function whose body contains `line` of `file`
    /// (closures and nested blocks fold into the enclosing item).
    pub fn enclosing_fn(&self, file: &str, line: usize) -> Option<usize> {
        self.nodes
            .iter()
            .filter(|n| n.file == file && n.body_start <= line && line <= n.body_end)
            .max_by_key(|n| n.body_start)
            .map(|n| n.id)
    }
}

/// Resolves one call site to candidate node ids (possibly empty).
#[allow(clippy::too_many_arguments)] // internal plumbing, not API
fn resolve(
    call: &CallRef,
    caller_file: usize,
    caller_crate: &str,
    aliases: &BTreeMap<&str, &[String]>,
    by_name: &BTreeMap<&str, Vec<usize>>,
    crate_alias: &BTreeMap<String, String>,
    nodes: &[FnNode],
    file_nodes: &[Vec<usize>],
) -> Vec<usize> {
    if call.segments.is_empty() {
        return Vec::new();
    }
    // Bare method calls named after std prelude methods (`.collect()`,
    // `.len()`, …) are overwhelmingly the std trait method; never bind
    // them to same-named workspace items.
    if call.is_method
        && call.segments.len() == 1
        && call
            .segments
            .first()
            .is_some_and(|s| STD_METHODS.binary_search(&s.as_str()).is_ok())
    {
        return Vec::new();
    }
    // Expand a leading alias: `u::tick()` where `use crate::util as u`,
    // or a bare aliased call `g()` where `use a::b::f as g`.
    let mut segments: Vec<&str> = call.segments.iter().map(String::as_str).collect();
    let mut expanded: Vec<&str>;
    if !call.is_method {
        if let Some(full) = segments.first().and_then(|s| aliases.get(s)) {
            expanded = full.iter().map(String::as_str).collect();
            expanded.extend_from_slice(&segments[1..]);
            segments = expanded;
        }
    }
    let Some(&name) = segments.last() else {
        return Vec::new();
    };
    let Some(all) = by_name.get(name) else {
        return Vec::new();
    };

    // A crate-qualified head narrows the crate; `crate`/`self`/`super`
    // stay in the caller's crate.
    let mut target_crate: Option<&str> = None;
    let head = segments.first().copied().unwrap_or("");
    if segments.len() > 1 {
        if head == "crate" || head == "self" || head == "super" {
            target_crate = Some(caller_crate);
        } else if let Some(c) = crate_alias.get(head) {
            target_crate = Some(c.as_str());
        }
    }
    // A `Type::name` qualifier (uppercase head of the last pair) means
    // an associated call on that type.
    let type_qualifier = if segments.len() > 1 {
        let q = segments[segments.len() - 2];
        if q.chars().next().is_some_and(char::is_uppercase) {
            Some(q)
        } else {
            None
        }
    } else {
        None
    };

    let bare_free_call = !call.is_method && segments.len() == 1;
    let matches = |id: &usize| -> bool {
        let n = &nodes[*id];
        if call.is_method && n.owner.is_none() {
            return false;
        }
        // A bare `f(..)` cannot name an inherent or trait method — those
        // need a receiver or a `Type::` qualifier — so only free
        // functions are candidates (locals/closures shadowing a method
        // name must not bind to it).
        if bare_free_call && n.owner.is_some() {
            return false;
        }
        if let Some(t) = type_qualifier {
            if n.owner.as_deref() != Some(t) {
                return false;
            }
        }
        if let Some(c) = target_crate {
            if n.crate_name != c {
                return false;
            }
        }
        true
    };
    let cands: Vec<usize> = all.iter().filter(|id| matches(id)).copied().collect();
    if cands.is_empty() {
        return Vec::new();
    }
    // Explicitly crate-qualified (or type-qualified) calls are already
    // narrow: accept the whole candidate set.
    if target_crate.is_some() || type_qualifier.is_some() {
        return cands;
    }
    // Proximity: same file (all), then same crate (free calls: all;
    // method calls only when unique), then workspace-wide when unique.
    let same_file: Vec<usize> = cands
        .iter()
        .filter(|id| file_nodes[caller_file].contains(id))
        .copied()
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<usize> = cands
        .iter()
        .filter(|id| nodes[**id].crate_name == caller_crate)
        .copied()
        .collect();
    if !same_crate.is_empty() {
        if call.is_method && same_crate.len() > 1 {
            return Vec::new();
        }
        return same_crate;
    }
    if cands.len() == 1 {
        return cands;
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let models: Vec<(String, FileModel)> = files
            .iter()
            .map(|(rel, src)| (rel.to_string(), parse(&lex(src))))
            .collect();
        CallGraph::build(&models)
    }

    fn node<'g>(g: &'g CallGraph, name: &str) -> &'g FnNode {
        g.nodes
            .iter()
            .find(|n| n.name == name)
            .unwrap_or_else(|| panic!("no node {name}"))
    }

    #[test]
    fn same_file_free_call_resolves() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn leaf() {}\nfn mid() {\n    leaf();\n}\n",
        )]);
        let mid = node(&g, "mid");
        assert_eq!(g.callees[mid.id], vec![node(&g, "leaf").id]);
    }

    #[test]
    fn cross_crate_qualified_call_resolves() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "pub fn tick() {}\n"),
            (
                "crates/b/src/lib.rs",
                "fn drive() {\n    picloud_a::tick();\n}\n",
            ),
        ]);
        let drive = node(&g, "drive");
        assert_eq!(g.callees[drive.id], vec![node(&g, "tick").id]);
    }

    #[test]
    fn alias_expanded_call_resolves() {
        let g = graph(&[
            ("crates/a/src/util.rs", "pub fn tick() {}\n"),
            (
                "crates/b/src/lib.rs",
                "use picloud_a as u;\nfn drive() {\n    u::tick();\n}\n",
            ),
        ]);
        let drive = node(&g, "drive");
        assert_eq!(g.callees[drive.id], vec![node(&g, "tick").id]);
    }

    #[test]
    fn type_qualified_and_method_calls() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub struct S;\nimpl S {\n    pub fn new() -> S { S }\n    fn go(&self) {}\n}\n\
             fn f(s: &S) {\n    let s2 = S::new();\n    s.go();\n}\n",
        )]);
        let f = node(&g, "f");
        let new_id = node(&g, "new").id;
        let go_id = node(&g, "go").id;
        assert_eq!(g.callees[f.id], vec![new_id, go_id]);
    }

    #[test]
    fn ambiguous_method_calls_make_no_edge() {
        let g = graph(&[
            (
                "crates/a/src/x.rs",
                "pub struct A;\nimpl A { pub fn run(&self) {} }\n",
            ),
            (
                "crates/a/src/y.rs",
                "pub struct B;\nimpl B { pub fn run(&self) {} }\n",
            ),
            ("crates/a/src/z.rs", "fn f(t: &T) {\n    t.run();\n}\n"),
        ]);
        let f = node(&g, "f");
        assert!(g.callees[f.id].is_empty());
    }

    #[test]
    fn bare_free_calls_never_bind_to_methods() {
        // A local closure named `run` shadows nothing: the bare call
        // cannot reach `S::run`, which needs a receiver or `S::`.
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub struct S;\nimpl S {\n    pub fn run(&self) {}\n}\n\
             fn f() {\n    let run = || 1;\n    run();\n}\n",
        )]);
        let f = node(&g, "f");
        assert!(g.callees[f.id].is_empty());
    }

    #[test]
    fn std_method_names_never_bind_bare_method_calls() {
        // `collect` is unique in this workspace, but `.collect()` is the
        // iterator method — no edge. The qualified form still resolves.
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub struct T;\nimpl T {\n    pub fn collect(&self) {}\n}\n\
             fn f(xs: &[u32], t: &T) {\n    let v: Vec<u32> = xs.iter().collect();\n    \
             T::collect(t);\n}\n",
        )]);
        let f = node(&g, "f");
        assert_eq!(g.callees[f.id], vec![node(&g, "collect").id]);
    }

    #[test]
    fn std_method_table_is_sorted_for_binary_search() {
        let mut sorted = STD_METHODS.to_vec();
        sorted.sort_unstable();
        assert_eq!(STD_METHODS, sorted.as_slice());
    }

    #[test]
    fn enclosing_fn_picks_innermost_body() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn outer() {\n    let c = || {\n        1\n    };\n}\n",
        )]);
        assert_eq!(
            g.enclosing_fn("crates/a/src/lib.rs", 2),
            Some(node(&g, "outer").id)
        );
        assert_eq!(g.enclosing_fn("crates/a/src/lib.rs", 40), None);
    }
}
