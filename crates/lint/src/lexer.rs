//! A small comment/string-aware lexer for Rust sources.
//!
//! The rules in this crate do not need a full AST: every pattern they
//! look for (`HashMap`, `.unwrap()`, `Instant::now`, `pub fn` without a
//! doc comment, …) is a token-level property. What they *do* need is to
//! never match inside a string literal, a char literal, or a comment —
//! `format!("no HashMap here")` must not trip D1 — and to know which
//! lines are doc comments, which lines carry `// lint: allow(..)`
//! markers, and which lines live inside `#[cfg(test)]` / `#[test]`
//! items. [`lex`] produces exactly that: a per-line *code shadow* of the
//! file with comments removed and literal bodies blanked, plus parallel
//! per-line comment text, doc-comment flags and test-code flags.

/// Per-line decomposition of one source file.
#[derive(Debug, Clone)]
pub struct FileMap {
    /// The code content of each line: comments stripped, string/char
    /// literal bodies blanked (quotes are kept so tokens stay separated).
    pub code: Vec<String>,
    /// The comment content of each line (both `//` and `/* */` text),
    /// used for allow-marker detection.
    pub comments: Vec<String>,
    /// Whether the line is (part of) a doc comment (`///`, `//!`,
    /// `/** */`, `/*! */`).
    pub doc: Vec<bool>,
    /// Whether the line is inside a `#[cfg(test)]` or `#[test]` item.
    pub test: Vec<bool>,
}

impl FileMap {
    /// Number of lines in the file.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True for an empty file.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Ordinary code.
    Code,
    /// Inside a `//` comment; the flag records doc-ness.
    Line(bool),
    /// Inside a (possibly nested) block comment: depth + doc-ness.
    Block(u32, bool),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string literal closed by `"` + this many `#`s.
    RawStr(u32),
    /// Inside a `'…'` char (or byte-char) literal.
    Char,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Splits `src` into per-line code / comment / doc-flag streams.
pub fn lex(src: &str) -> FileMap {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut code_lines: Vec<String> = Vec::new();
    let mut comment_lines: Vec<String> = Vec::new();
    let mut doc_flags: Vec<bool> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut doc = false;
    let mut state = State::Code;
    let mut i = 0usize;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            if let State::Line(_) = state {
                state = State::Code;
            }
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
            doc_flags.push(doc);
            doc = matches!(state, State::Block(_, true));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    // `///` and `//!` are doc comments; `////…` is not.
                    let c2 = chars.get(i + 2).copied();
                    let c3 = chars.get(i + 3).copied();
                    let is_doc = (c2 == Some('/') && c3 != Some('/')) || c2 == Some('!');
                    state = State::Line(is_doc);
                    doc = doc || is_doc;
                    comment.push_str("//");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    let c2 = chars.get(i + 2).copied();
                    let c3 = chars.get(i + 3).copied();
                    let is_doc =
                        (c2 == Some('*') && c3 != Some('/') && c3 != Some('*')) || c2 == Some('!');
                    state = State::Block(1, is_doc);
                    doc = doc || is_doc;
                    comment.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && !i
                        .checked_sub(1)
                        .map(|p| is_ident(chars[p]))
                        .unwrap_or(false)
                {
                    // Possible raw/byte literal prefix: r" r#" b" b' br" br#".
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j).copied() == Some('r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j).copied() == Some('#') {
                        hashes += 1;
                        j += 1;
                    }
                    let raw = c == 'r' || (c == 'b' && chars.get(i + 1).copied() == Some('r'));
                    match chars.get(j).copied() {
                        Some('"') if raw => {
                            for &ch in chars.iter().take(j + 1).skip(i) {
                                code.push(ch);
                            }
                            state = State::RawStr(hashes);
                            i = j + 1;
                        }
                        Some('"') if c == 'b' && hashes == 0 => {
                            code.push('b');
                            code.push('"');
                            state = State::Str;
                            i = j + 1;
                        }
                        Some('\'') if c == 'b' && hashes == 0 => {
                            code.push('b');
                            code.push('\'');
                            state = State::Char;
                            i = j + 1;
                        }
                        _ => {
                            code.push(c);
                            i += 1;
                        }
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: escapes are always chars;
                    // `'x'` is a char; `'ident` with no closing quote is a
                    // lifetime.
                    if next == Some('\\') || chars.get(i + 2).copied() == Some('\'') {
                        code.push('\'');
                        state = State::Char;
                        i += 1;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::Line(_) => {
                comment.push(c);
                i += 1;
            }
            State::Block(depth, is_doc) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    comment.push_str("*/");
                    if depth == 1 {
                        state = State::Code;
                        doc = doc || is_doc;
                    } else {
                        state = State::Block(depth - 1, is_doc);
                    }
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    comment.push_str("/*");
                    state = State::Block(depth + 1, is_doc);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped character (may be a quote)
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1; // blank the body
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut k = 0u32;
                    while (k as usize) < n - i - 1 && chars[i + 1 + k as usize] == '#' && k < hashes
                    {
                        k += 1;
                    }
                    if k == hashes {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        state = State::Code;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() || code_lines.is_empty() {
        code_lines.push(code);
        comment_lines.push(comment);
        doc_flags.push(doc);
    }
    let test = mark_test_lines(&code_lines);
    FileMap {
        code: code_lines,
        comments: comment_lines,
        doc: doc_flags,
        test,
    }
}

/// Marks every line belonging to a `#[cfg(test)]` or `#[test]` item.
///
/// Works on the code shadow (strings already blanked), so brace counting
/// is literal-safe: from the attribute, the next `{` opens the item and
/// its matching `}` closes it.
fn mark_test_lines(code_lines: &[String]) -> Vec<bool> {
    let mut test = vec![false; code_lines.len()];
    let mut line = 0usize;
    while line < code_lines.len() {
        let l = &code_lines[line];
        let is_test_attr = l.contains("#[cfg(test)]")
            || l.contains("cfg(test)")
            || l.trim_start().starts_with("#[test]");
        if !is_test_attr || test[line] {
            line += 1;
            continue;
        }
        // Find the opening brace of the annotated item, then its match.
        let mut depth = 0i64;
        let mut opened = false;
        let mut end = code_lines.len() - 1;
        let mut scan = line;
        'outer: while scan < code_lines.len() {
            for ch in code_lines[scan].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            end = scan;
                            break 'outer;
                        }
                    }
                    ';' if !opened && depth == 0 => {
                        // `#[cfg(test)] mod tests;` — out-of-line module;
                        // only the declaration line is in scope here.
                        end = scan;
                        break 'outer;
                    }
                    _ => {}
                }
            }
            scan += 1;
        }
        for t in test.iter_mut().take(end + 1).skip(line) {
            *t = true;
        }
        line = end + 1;
    }
    test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = "let x = \"HashMap\"; // HashMap in comment\nlet y = 1;\n";
        let m = lex(src);
        assert!(!m.code[0].contains("HashMap"));
        assert!(m.comments[0].contains("HashMap"));
        assert!(m.code[1].contains("let y"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"unwrap() panic!\"#;\nlet t = 2;\n";
        let m = lex(src);
        assert!(!m.code[0].contains("unwrap"));
        assert!(!m.code[0].contains("panic"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { '{' }\nlet n = 0;\n";
        let m = lex(src);
        assert!(!m.code[0].contains('{') || m.code[0].matches('{').count() == 1);
        assert!(m.code[0].contains("fn f"));
    }

    #[test]
    fn doc_lines_flagged() {
        let src = "/// docs\npub fn f() {}\n// plain\n";
        let m = lex(src);
        assert!(m.doc[0]);
        assert!(!m.doc[1]);
        assert!(!m.doc[2]);
    }

    #[test]
    fn test_modules_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { v.unwrap(); }\n}\nfn after() {}\n";
        let m = lex(src);
        assert!(!m.test[0]);
        assert!(m.test[1] && m.test[2] && m.test[3] && m.test[4]);
        assert!(!m.test[5]);
    }
}
