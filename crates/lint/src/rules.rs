//! The named lint rules and their per-file checker.
//!
//! | rule | meaning |
//! |------|---------|
//! | D1   | no `std::collections::{HashMap,HashSet}` outside tests — iteration order leaks nondeterminism into simulation state |
//! | D2   | no wall-clock time (`Instant`, `SystemTime`, `UNIX_EPOCH`) outside `crates/bench` — sim time must come from the engine clock |
//! | D3   | no ambient randomness (`thread_rng`, `rand::random`, `from_entropy`, `OsRng`) — all RNG flows through the experiment seed |
//! | D4   | no thread spawning (`std::thread`, `thread::spawn/scope/Builder`) outside `crates/bench` — concurrency must go through the quarantined, order-restoring solver pool |
//! | D5   | no public simulation-facing function may *transitively* reach a D1–D4/F1 source along the call graph (see [`crate::taint`]) |
//! | F1   | no non-total float ordering (`partial_cmp` inside a `sort_by`-family comparator) in sim-visible code — NaN breaks the order |
//! | P1   | no `.unwrap()` / `.expect(..)` / `panic!`-family macros / indexing-by-integer-literal in non-test, non-bench library code |
//! | O1   | public items in `simcore` / `mgmt` / `faults` must carry doc comments (`///` or `#[doc = "…"]`) |
//!
//! D1–D3 match both the literal names and any `use … as` alias the
//! file binds to them ([`crate::parser`] resolves the import table),
//! so `use std::collections::HashMap as Map; Map::new()` is flagged at
//! the use site too. Any finding can be suppressed in place with a
//! justified marker: `// lint: allow(P1) reason=why this is a true
//! invariant`. A marker on a code line covers that line; a marker on
//! its own line covers the next code line. Markers without a non-empty
//! `reason=` are ignored. A marker at a D1–D4/F1 *source* line also
//! severs D5 taint for every transitive caller.

use crate::lexer::{lex, FileMap};
use crate::parser::{self, FileModel};
use crate::report::Finding;
use crate::symgraph::crate_of;
use crate::taint::TaintSource;
use std::collections::BTreeSet;

/// The checkable rules, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Unordered std hash collections in simulation-visible state.
    D1,
    /// Wall-clock time outside `crates/bench`.
    D2,
    /// Ambient (unseeded) randomness.
    D3,
    /// Thread spawning outside the quarantined worker pool.
    D4,
    /// Public functions transitively reaching a nondeterminism source.
    D5,
    /// Non-total float ordering in sort comparators.
    F1,
    /// Panic paths in library code.
    P1,
    /// Undocumented public items in the contract crates.
    O1,
}

impl Rule {
    /// All rules, in canonical order.
    pub const ALL: [Rule; 8] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::D4,
        Rule::D5,
        Rule::F1,
        Rule::P1,
        Rule::O1,
    ];

    /// The short name used in reports, markers and the baseline.
    pub fn name(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::F1 => "F1",
            Rule::P1 => "P1",
            Rule::O1 => "O1",
        }
    }

    /// Parses a rule name as written inside an allow marker.
    pub fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "D4" => Some(Rule::D4),
            "D5" => Some(Rule::D5),
            "F1" => Some(Rule::F1),
            "P1" => Some(Rule::P1),
            "O1" => Some(Rule::O1),
            _ => None,
        }
    }

    /// One-line description for `--rules` output and docs.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D1 => "no std HashMap/HashSet outside tests (iteration order nondeterminism)",
            Rule::D2 => "no wall-clock time (Instant/SystemTime/UNIX_EPOCH) outside crates/bench",
            Rule::D3 => "no ambient randomness; RNG must flow from the experiment seed",
            Rule::D4 => "no thread spawning outside crates/bench; use the quarantined solver pool",
            Rule::D5 => {
                "no public sim-facing fn may transitively reach a D1-D4/F1 source (call graph)"
            }
            Rule::F1 => "no partial_cmp in sort comparators on sim-visible floats; use total_cmp",
            Rule::P1 => "no unwrap/expect/panic!/literal-indexing in non-test library code",
            Rule::O1 => "public items in simcore/mgmt/faults must carry doc comments",
        }
    }
}

/// Crates whose public items must be documented (mirrors their
/// `#![warn(missing_docs)]`, but cross-crate and non-bypassable).
const DOC_CONTRACT_CRATES: &[&str] = &["simcore", "mgmt", "faults"];

/// Item keywords that O1 requires docs on (after `pub` + modifiers).
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union",
];

/// Method names whose comparator closure establishes an ordering —
/// the F1 scan looks for `partial_cmp` inside their argument list.
const SORT_CONTEXT_FNS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "binary_search_by",
    "max_by",
    "min_by",
];

/// Per-file scan outcome: surfaced findings, marker-suppression count,
/// and everything the interprocedural pass needs (the parsed item
/// model, the taint sources, and the per-line allow sets).
#[derive(Debug, Default)]
pub struct FileScan {
    /// Findings that survived marker filtering.
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by `// lint: allow(..) reason=..`.
    pub allowed: usize,
    /// Nondeterminism sources (D1–D4, F1) for the taint pass, severed
    /// or not.
    pub sources: Vec<TaintSource>,
    /// The parsed `use`/`fn`/call model for the call-graph layer.
    pub model: FileModel,
    /// Per-line allow sets (0-based), for D5 marker filtering.
    pub allows: Vec<BTreeSet<Rule>>,
}

/// Runs every per-line rule over one file. `rel_path` is
/// workspace-relative with forward slashes, e.g.
/// `crates/network/src/routing.rs`. The interprocedural D5 rule runs
/// afterwards, over all files at once, in [`crate::taint`].
pub fn check_file(rel_path: &str, src: &str) -> FileScan {
    let map = lex(src);
    let crate_name = crate_of(rel_path);
    let allows = allow_markers(&map);
    let model = parser::parse(&map);
    let mut scan = FileScan::default();
    // `what` labels a D1–D4/F1 match as a taint source; a marker for
    // the rule itself or for D5 at the same line severs the seed.
    let push = |scan: &mut FileScan,
                rule: Rule,
                line: usize,
                message: String,
                what: Option<String>,
                map: &FileMap| {
        let line_allows = allows.get(line);
        let allowed = line_allows.map(|set| set.contains(&rule)).unwrap_or(false);
        if let Some(what) = what {
            let d5_severed = line_allows
                .map(|set| set.contains(&Rule::D5))
                .unwrap_or(false);
            scan.sources.push(TaintSource {
                rule,
                line,
                what,
                severed: allowed || d5_severed,
            });
        }
        if allowed {
            scan.allowed += 1;
        } else {
            scan.findings.push(Finding {
                rule: rule.name().to_string(),
                file: rel_path.to_string(),
                line: line + 1,
                message,
                snippet: snippet_of(src, line, map),
                path: Vec::new(),
            });
        }
    };

    // Aliased bindings of the banned D1–D3 names: `use std::time::
    // Instant as Clock` makes every later `Clock` a wall-clock read.
    // The `use` line itself still matches the literal name, so only
    // use *sites* are attributed to the alias (decl lines are skipped).
    let mut alias_bans: Vec<(&str, Rule, String)> = Vec::new();
    let mut use_decl_lines: BTreeSet<usize> = BTreeSet::new();
    for u in &model.uses {
        for l in u.line..=u.end_line {
            use_decl_lines.insert(l);
        }
        let Some(tail) = u.segments.last() else {
            continue;
        };
        if u.alias == *tail {
            continue;
        }
        let rule = match tail.as_str() {
            "HashMap" | "HashSet" => Some(Rule::D1),
            "Instant" | "SystemTime" | "UNIX_EPOCH" => Some(Rule::D2),
            "thread_rng" | "OsRng" => Some(Rule::D3),
            _ => None,
        };
        if let Some(rule) = rule {
            if rule == Rule::D2 && crate_name == "bench" {
                continue;
            }
            alias_bans.push((u.alias.as_str(), rule, u.segments.join("::")));
        }
    }

    // F1 sort-comparator context: >0 while inside the still-open
    // argument list of a `sort_by`-family call.
    let mut sort_depth: i64 = 0;

    for (i, code) in map.code.iter().enumerate() {
        if map.test[i] {
            sort_depth = 0;
            continue;
        }
        // D1 — unordered hash collections.
        for word in ["HashMap", "HashSet"] {
            if has_word(code, word) {
                push(
                    &mut scan,
                    Rule::D1,
                    i,
                    format!(
                        "std {word} iterates in nondeterministic order; use the BTree \
                         equivalent in simulation-visible state"
                    ),
                    Some(format!("hash-ordered {word} iteration")),
                    &map,
                );
            }
        }
        // D2 — wall clock (bench crate is the one place allowed to time
        // the real machine).
        if crate_name != "bench" {
            for word in ["Instant", "SystemTime", "UNIX_EPOCH"] {
                if has_word(code, word) {
                    push(
                        &mut scan,
                        Rule::D2,
                        i,
                        format!("wall-clock {word} in simulation code; use the sim clock"),
                        Some(format!("wall-clock {word}")),
                        &map,
                    );
                }
            }
        }
        // D3 — ambient randomness.
        for pat in ["thread_rng", "from_entropy", "OsRng"] {
            if has_word(code, pat) {
                push(
                    &mut scan,
                    Rule::D3,
                    i,
                    format!("ambient randomness ({pat}); seed all RNG via simcore::rng"),
                    Some(format!("ambient randomness ({pat})")),
                    &map,
                );
            }
        }
        if code.contains("rand::random") {
            push(
                &mut scan,
                Rule::D3,
                i,
                "ambient randomness (rand::random); seed all RNG via simcore::rng".to_string(),
                Some("ambient randomness (rand::random)".to_string()),
                &map,
            );
        }
        // D1–D3 via `use … as` aliases (use sites only; the declaration
        // line already matches the literal name).
        if !use_decl_lines.contains(&i) {
            for (alias, rule, resolved) in &alias_bans {
                if has_word(code, alias) {
                    push(
                        &mut scan,
                        *rule,
                        i,
                        format!(
                            "`{alias}` is `{resolved}` (aliased import); the alias does not \
                             launder the nondeterminism"
                        ),
                        Some(format!("aliased {resolved}")),
                        &map,
                    );
                }
            }
        }
        // D4 — thread spawning. Concurrency in simulation code must go
        // through the quarantined, order-restoring pool in
        // `flowsim::partition` (itself carrying justified markers); a
        // rogue spawn can leak scheduling order into results.
        if crate_name != "bench" {
            for pat in [
                "std::thread",
                "thread::spawn",
                "thread::scope",
                "thread::Builder",
                "scope.spawn",
            ] {
                if code.contains(pat) {
                    push(
                        &mut scan,
                        Rule::D4,
                        i,
                        format!(
                            "thread spawning ({pat}) in simulation code; route concurrency \
                             through the quarantined flowsim::partition pool"
                        ),
                        Some(format!("ad-hoc thread spawn ({pat})")),
                        &map,
                    );
                    break;
                }
            }
        }
        // F1 — non-total float ordering in sort comparators. The
        // comparator may span lines, so the open-paren balance of the
        // sort call keeps the context alive until its list closes.
        if crate_name != "bench" {
            let in_context = sort_depth > 0;
            let opens_context = SORT_CONTEXT_FNS.iter().any(|f| has_word(code, f));
            if (in_context || opens_context)
                && has_word(code, "partial_cmp")
                && !has_word(code, "total_cmp")
            {
                push(
                    &mut scan,
                    Rule::F1,
                    i,
                    "partial_cmp is not a total order on floats (NaN): the sort can panic \
                     or reorder; use total_cmp"
                        .to_string(),
                    Some("non-total float ordering (partial_cmp)".to_string()),
                    &map,
                );
            }
            if opens_context {
                let from = SORT_CONTEXT_FNS
                    .iter()
                    .filter_map(|f| find_word(code, f))
                    .min()
                    .unwrap_or(0);
                sort_depth = paren_balance(&code[from..]).max(0);
            } else if in_context {
                sort_depth = (sort_depth + paren_balance(code)).max(0);
            }
        }
        // P1 — panic paths in library code.
        if crate_name != "bench" {
            if has_method_call(code, "unwrap") {
                push(
                    &mut scan,
                    Rule::P1,
                    i,
                    ".unwrap() in library code; return an error or justify the invariant"
                        .to_string(),
                    None,
                    &map,
                );
            }
            if has_method_call(code, "expect") {
                push(
                    &mut scan,
                    Rule::P1,
                    i,
                    ".expect(..) in library code; return an error or justify the invariant"
                        .to_string(),
                    None,
                    &map,
                );
            }
            for mac in ["panic", "todo", "unimplemented"] {
                if has_macro(code, mac) {
                    push(
                        &mut scan,
                        Rule::P1,
                        i,
                        format!("{mac}! in library code; return an error or justify the invariant"),
                        None,
                        &map,
                    );
                }
            }
            if has_literal_index(code) {
                push(
                    &mut scan,
                    Rule::P1,
                    i,
                    "indexing by integer literal can panic; use .get(..) or justify the bound"
                        .to_string(),
                    None,
                    &map,
                );
            }
        }
    }

    // O1 — undocumented public items in the contract crates.
    if DOC_CONTRACT_CRATES.contains(&crate_name) {
        for i in 0..map.len() {
            if map.test[i] {
                continue;
            }
            if let Some(keyword) = public_item_keyword(&map.code[i]) {
                if !has_attached_doc(&map, i) {
                    push(
                        &mut scan,
                        Rule::O1,
                        i,
                        format!("public `{keyword}` without a doc comment"),
                        None,
                        &map,
                    );
                }
            }
        }
    }

    scan.findings
        .sort_by(|a, b| (a.line, a.rule.as_str()).cmp(&(b.line, b.rule.as_str())));
    scan.model = model;
    scan.allows = allows;
    scan
}

/// Net `(` minus `)` over a code-shadow slice (literals are already
/// blanked, so every paren is structural).
fn paren_balance(code: &str) -> i64 {
    let mut bal = 0i64;
    for c in code.chars() {
        match c {
            '(' => bal += 1,
            ')' => bal -= 1,
            _ => {}
        }
    }
    bal
}

/// The trimmed original source line, capped for report readability.
fn snippet_of(src: &str, line: usize, _map: &FileMap) -> String {
    let raw = src.lines().nth(line).unwrap_or("").trim();
    let mut s: String = raw.chars().take(120).collect();
    if raw.chars().count() > 120 {
        s.push('…');
    }
    s
}

/// Per-line sets of rules suppressed by justified allow markers.
fn allow_markers(map: &FileMap) -> Vec<BTreeSet<Rule>> {
    let mut allows: Vec<BTreeSet<Rule>> = vec![BTreeSet::new(); map.len()];
    for (i, comment) in map.comments.iter().enumerate() {
        let rules = parse_marker(comment);
        if rules.is_empty() {
            continue;
        }
        let target = if map.code[i].trim().is_empty() {
            // Marker on its own line: applies to the next code line.
            (i + 1..map.len()).find(|&j| !map.code[j].trim().is_empty())
        } else {
            Some(i)
        };
        if let Some(t) = target {
            allows[t].extend(rules);
        }
    }
    allows
}

/// Parses `lint: allow(R1,R2) reason=non-empty` out of a comment. Returns
/// the named rules, or empty if absent / malformed / missing a reason.
fn parse_marker(comment: &str) -> Vec<Rule> {
    let Some(at) = comment.find("lint:") else {
        return Vec::new();
    };
    let rest = &comment[at + "lint:".len()..];
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Vec::new();
    };
    let Some(close) = rest.find(')') else {
        return Vec::new();
    };
    let names = &rest[..close];
    let tail = &rest[close + 1..];
    let has_reason = tail
        .find("reason=")
        .map(|r| !tail[r + "reason=".len()..].trim().is_empty())
        .unwrap_or(false);
    if !has_reason {
        return Vec::new();
    }
    names.split(',').filter_map(Rule::parse).collect()
}

/// Whether `word` occurs in `code` with non-identifier boundaries.
fn has_word(code: &str, word: &str) -> bool {
    find_word(code, word).is_some()
}

fn find_word(code: &str, word: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let post_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if pre_ok && post_ok {
            return Some(start);
        }
        from = start + word.len();
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether `code` contains a `.name(` method call (e.g. `.unwrap()`),
/// ignoring look-alikes such as `.unwrap_or(..)`.
fn has_method_call(code: &str, name: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(name) {
        let start = from + pos;
        let end = start + name.len();
        let pre_ok = start > 0
            && !is_ident_byte(bytes[start - 1])
            && code[..start].trim_end().ends_with('.');
        let post = code[end..].trim_start();
        let boundary = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if pre_ok && boundary && post.starts_with('(') {
            return true;
        }
        from = end;
    }
    false
}

/// Whether `code` invokes the `name!` macro.
fn has_macro(code: &str, name: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(name) {
        let start = from + pos;
        let end = start + name.len();
        let pre_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        if pre_ok && code[end..].starts_with('!') {
            return true;
        }
        from = end;
    }
    false
}

/// Whether `code` indexes an expression by a bare integer literal
/// (`xs[0]`, `f()[1]`) — a panic waiting for a shorter slice.
fn has_literal_index(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' || i == 0 {
            continue;
        }
        let prev = chars[..i].iter().rev().find(|ch| !ch.is_whitespace());
        let indexes_expr = matches!(
            prev,
            Some(p) if p.is_alphanumeric() || *p == '_' || *p == ')' || *p == ']'
        );
        if !indexes_expr {
            continue;
        }
        if let Some(close) = chars[i + 1..].iter().position(|&ch| ch == ']') {
            let inner: String = chars[i + 1..i + 1 + close].iter().collect();
            let inner = inner.trim();
            if !inner.is_empty() && inner.chars().all(|ch| ch.is_ascii_digit() || ch == '_') {
                return true;
            }
        }
    }
    false
}

/// If the line declares a `pub` item, the item keyword (`fn`, `struct`,
/// …). `pub(crate)`/`pub(super)` and `pub use` are not public API here.
fn public_item_keyword(code: &str) -> Option<&'static str> {
    let t = code.trim_start();
    let rest = t.strip_prefix("pub ")?;
    let mut tokens = rest.split_whitespace();
    loop {
        let tok = tokens.next()?;
        if tok == "use" {
            return None;
        }
        if tok == "mod" && t.trim_end().ends_with(';') {
            // `pub mod foo;` — the module's docs are the `//!` header of
            // its own file, which rustdoc attaches for us.
            return None;
        }
        if let Some(k) = ITEM_KEYWORDS.iter().find(|k| **k == tok) {
            // `const` / `static` / `type` can also be modifiers or
            // generics markers; accept them only when followed by a name.
            return Some(k);
        }
        // `extern "C"` ABIs arrive with the string body blanked (`""`).
        if !(tok == "async" || tok == "unsafe" || tok == "extern" || tok.starts_with('"')) {
            return None;
        }
    }
}

/// Whether the item on `line` has a doc comment attached (walking up
/// over attributes, blank lines and plain comments). `#[doc = "…"]`
/// attribute docs — the form `///` desugars to, and the one macros
/// emit — count the same as comment docs; the item's own line may
/// carry one too (`#[doc = "…"] pub fn f()`).
fn has_attached_doc(map: &FileMap, line: usize) -> bool {
    if map.code[line].trim_start().starts_with("#[doc") {
        return true;
    }
    let mut l = line;
    let mut in_attr_tail = false;
    while l > 0 {
        l -= 1;
        let code = map.code[l].trim();
        if code.starts_with("#[doc") {
            return true;
        }
        if in_attr_tail {
            // Inside a multi-line attribute: skip until its `#[` opener.
            if code.starts_with("#[") || code.starts_with("#!") {
                in_attr_tail = false;
            }
            continue;
        }
        if code.starts_with("#[") || code.starts_with("#!") {
            continue; // single-line attribute
        }
        if code.ends_with(")]") {
            in_attr_tail = true; // tail of a multi-line attribute
            continue;
        }
        if code.is_empty() {
            if map.doc[l] {
                return true;
            }
            continue; // blank or plain comment line — keep walking
        }
        return false; // real code: nothing attached
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_call_detection_ignores_lookalikes() {
        assert!(has_method_call("x.unwrap()", "unwrap"));
        assert!(has_method_call("x.unwrap ()", "unwrap"));
        assert!(!has_method_call("x.unwrap_or(0)", "unwrap"));
        assert!(!has_method_call("unwrap()", "unwrap"));
    }

    #[test]
    fn literal_index_detection() {
        assert!(has_literal_index("let x = xs[0];"));
        assert!(has_literal_index("f()[12]"));
        assert!(!has_literal_index("let a = [0];"));
        assert!(!has_literal_index("let a: [u8; 4] = x;"));
        assert!(!has_literal_index("xs[i]"));
        assert!(!has_literal_index("vec![0; 3]"));
    }

    #[test]
    fn marker_requires_reason() {
        assert!(parse_marker("// lint: allow(P1)").is_empty());
        assert!(parse_marker("// lint: allow(P1) reason=").is_empty());
        assert_eq!(
            parse_marker("// lint: allow(P1) reason=true invariant"),
            vec![Rule::P1]
        );
        assert_eq!(
            parse_marker(" lint: allow(D1,P1) reason=bounded"),
            vec![Rule::D1, Rule::P1]
        );
    }

    #[test]
    fn pub_item_keywords() {
        assert_eq!(public_item_keyword("pub fn f() {"), Some("fn"));
        assert_eq!(public_item_keyword("    pub struct X {"), Some("struct"));
        assert_eq!(public_item_keyword("pub const fn g() {"), Some("const"));
        assert_eq!(public_item_keyword("pub use foo::Bar;"), None);
        assert_eq!(public_item_keyword("pub(crate) fn h() {"), None);
        assert_eq!(public_item_keyword("let x = 1;"), None);
    }
}
