//! Machine specifications.
//!
//! A [`NodeSpec`] captures everything the rest of the emulator needs to know
//! about a physical machine: CPU (core count and clock), RAM, NIC rate,
//! storage device, power curve and unit cost. Presets reproduce the
//! hardware the paper names: Raspberry Pi Model A and Model B (256 MB rev 1
//! and 512 MB rev 2 — the paper notes the foundation "doubled the RAM
//! size... while keeping the same price") and the $2,000 / 180 W commodity
//! x86 server of Table I.

use crate::power::PowerModel;
use crate::storage::StorageSpec;
use picloud_simcore::units::{Bandwidth, Bytes, Frequency, Money};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a machine within a cluster.
///
/// Ids are dense indices assigned by the cluster builder; display is
/// `node-N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Broad hardware family of a node — the axis Table I compares along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeClass {
    /// An ARM single-board computer (the Raspberry Pi family).
    ArmSbc,
    /// A commodity x86 rack server.
    X86Server,
}

impl fmt::Display for NodeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeClass::ArmSbc => write!(f, "ARM SBC"),
            NodeClass::X86Server => write!(f, "x86 server"),
        }
    }
}

/// Full specification of a machine model.
///
/// # Example
///
/// ```
/// use picloud_hardware::node::NodeSpec;
/// use picloud_simcore::units::Bytes;
///
/// let pi = NodeSpec::pi_model_b_rev1();
/// assert_eq!(pi.ram, Bytes::mib(256));
/// assert_eq!(pi.cores, 1);
/// assert_eq!(pi.unit_cost.as_dollars_f64(), 35.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Marketing / model name, e.g. `"Raspberry Pi Model B rev1"`.
    pub model: String,
    /// Hardware family.
    pub class: NodeClass,
    /// Number of CPU cores.
    pub cores: u32,
    /// Per-core clock frequency.
    pub clock: Frequency,
    /// Installed RAM.
    pub ram: Bytes,
    /// RAM reserved by the host OS (Raspbian + daemons on the Pi); the
    /// remainder is available to containers.
    pub os_reserved_ram: Bytes,
    /// NIC line rate.
    pub nic: Bandwidth,
    /// Attached storage device.
    pub storage: StorageSpec,
    /// Power curve.
    pub power: PowerModel,
    /// Unit purchase cost.
    pub unit_cost: Money,
}

impl NodeSpec {
    /// RAM left for guest containers after the host OS reservation.
    pub fn guest_ram(&self) -> Bytes {
        self.ram.saturating_sub(self.os_reserved_ram)
    }

    /// Aggregate cycles per second across all cores.
    pub fn total_compute_hz(&self) -> u64 {
        self.clock.as_hz() * u64::from(self.cores)
    }

    /// Raspberry Pi Model A: 256 MB RAM, no built-in Ethernet in reality —
    /// modelled here with a USB 10 Mbit adapter so it can still join the
    /// fabric — and the $25 price the paper quotes ("available for as
    /// little as $25").
    pub fn pi_model_a() -> NodeSpec {
        NodeSpec {
            model: "Raspberry Pi Model A".to_owned(),
            class: NodeClass::ArmSbc,
            cores: 1,
            clock: Frequency::mhz(700),
            ram: Bytes::mib(256),
            os_reserved_ram: Bytes::mib(64),
            nic: Bandwidth::mbps(10),
            storage: StorageSpec::sd_card_16gb(),
            power: PowerModel::raspberry_pi(2.5),
            unit_cost: Money::dollars(25),
        }
    }

    /// Raspberry Pi Model B revision 1: the original 256 MB board the
    /// paper's virtualisation discussion is calibrated against ("the 256MB
    /// RAM capacity of the original Raspberry Pi devices").
    pub fn pi_model_b_rev1() -> NodeSpec {
        NodeSpec {
            model: "Raspberry Pi Model B rev1".to_owned(),
            class: NodeClass::ArmSbc,
            cores: 1,
            clock: Frequency::mhz(700),
            ram: Bytes::mib(256),
            os_reserved_ram: Bytes::mib(64),
            nic: Bandwidth::mbps(100),
            storage: StorageSpec::sd_card_16gb(),
            power: PowerModel::raspberry_pi(3.5),
            unit_cost: Money::dollars(35),
        }
    }

    /// Raspberry Pi Model B revision 2: RAM doubled to 512 MB at the same
    /// price, as the paper notes ("the Raspberry Pi foundation doubled the
    /// RAM size on every Raspberry Pi while keeping the same price").
    pub fn pi_model_b_rev2() -> NodeSpec {
        NodeSpec {
            ram: Bytes::mib(512),
            model: "Raspberry Pi Model B rev2".to_owned(),
            ..NodeSpec::pi_model_b_rev1()
        }
    }

    /// The commodity x86 server of Table I: $2,000 and 180 W nameplate.
    /// Core count, clock, RAM and disk are sized to a typical 2013 1U box.
    pub fn x86_commodity() -> NodeSpec {
        NodeSpec {
            model: "Commodity x86 1U server".to_owned(),
            class: NodeClass::X86Server,
            cores: 8,
            clock: Frequency::ghz(3),
            ram: Bytes::gib(16),
            os_reserved_ram: Bytes::gib(1),
            nic: Bandwidth::gbps(1),
            storage: StorageSpec::server_sata_disk(),
            power: PowerModel::x86_server(180.0),
            unit_cost: Money::dollars(2_000),
        }
    }
}

impl fmt::Display for NodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} core(s) @ {}, {} RAM, {} NIC)",
            self.model, self.cores, self.clock, self.ram, self.nic
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi_b_rev1_matches_paper_figures() {
        let pi = NodeSpec::pi_model_b_rev1();
        assert_eq!(pi.ram, Bytes::mib(256));
        assert_eq!(pi.unit_cost, Money::dollars(35));
        assert!((pi.power.nameplate().as_watts() - 3.5).abs() < 1e-9);
        assert_eq!(pi.cores, 1);
        assert_eq!(pi.clock, Frequency::mhz(700));
    }

    #[test]
    fn rev2_doubles_ram_same_price() {
        let r1 = NodeSpec::pi_model_b_rev1();
        let r2 = NodeSpec::pi_model_b_rev2();
        assert_eq!(r2.ram.as_u64(), 2 * r1.ram.as_u64());
        assert_eq!(r2.unit_cost, r1.unit_cost);
    }

    #[test]
    fn x86_matches_table1() {
        let x = NodeSpec::x86_commodity();
        assert_eq!(x.unit_cost, Money::dollars(2_000));
        assert!((x.power.nameplate().as_watts() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn guest_ram_excludes_os_reservation() {
        let pi = NodeSpec::pi_model_b_rev1();
        assert_eq!(pi.guest_ram(), Bytes::mib(192));
    }

    #[test]
    fn total_compute_scales_with_cores() {
        let x = NodeSpec::x86_commodity();
        assert_eq!(x.total_compute_hz(), 8 * 3_000_000_000);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "node-7");
        assert_eq!(NodeId::from(3).index(), 3);
    }
}
