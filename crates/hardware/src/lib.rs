//! Hardware models for the PiCloud scale model.
//!
//! The paper's testbed is 56 Raspberry Pi Model B boards in four Lego racks;
//! its evaluation (Table I) contrasts that hardware with commodity x86
//! servers on capital cost, power draw and cooling need. This crate models
//! exactly those quantities:
//!
//! * [`node`] — machine specifications ([`NodeSpec`]) with presets for the
//!   Raspberry Pi Model A / Model B (rev 1 & 2) and a commodity x86 server,
//!   plus [`NodeId`] identity.
//! * [`cpu`] — weighted processor-sharing allocation, the arithmetic beneath
//!   both the multi-tasked ARM core and cgroup CPU shares.
//! * [`storage`] — SD-card and server-disk models with distinct sequential /
//!   random throughput, the Pi's best-known bottleneck.
//! * [`power`] — utilisation-linear power curves, cooling overhead (the
//!   33 %-of-total figure the paper cites) and the single-socket feasibility
//!   check for the whole PiCloud.
//! * [`cost`] — bill-of-materials and testbed capital cost models behind
//!   Table I.
//! * [`dvfs`] — cpufreq governors (performance/powersave/ondemand) for the
//!   §III power-measurement agenda.
//! * [`rack`] — Lego racks of 14 Pis and standard racks for x86 nodes.
//!
//! # Example
//!
//! ```
//! use picloud_hardware::node::NodeSpec;
//!
//! let pi = NodeSpec::pi_model_b_rev1();
//! let x86 = NodeSpec::x86_commodity();
//! assert!(x86.ram.as_u64() / pi.ram.as_u64() >= 10, "scale model ratio");
//! ```

pub mod cost;
pub mod cpu;
pub mod dvfs;
pub mod node;
pub mod power;
pub mod rack;
pub mod storage;

pub use dvfs::{FrequencyGovernor, ScalableCpu};
pub use node::{NodeClass, NodeId, NodeSpec};
pub use power::{CoolingModel, PowerModel, PowerSocket};
pub use rack::{Rack, RackId};
