//! Power and cooling models.
//!
//! Table I of the paper compares 56 x86 servers (10,080 W, cooling
//! required) with 56 Pis (196 W, no cooling), and §IV notes that power and
//! cooling management "reportedly accounts for 33% of the total power
//! consumption in Cloud DCs". §III adds that the whole PiCloud "can run...
//! from a single trailing power socket board". This module models all three
//! claims:
//!
//! * [`PowerModel`] — a utilisation-linear curve from idle to nameplate
//!   draw, the standard first-order server power model.
//! * [`CoolingModel`] — overhead power as a fraction of total facility
//!   power, matching how the paper states the 33 % figure.
//! * [`PowerSocket`] — a feasibility check that a machine population fits a
//!   domestic socket.

use picloud_simcore::telemetry::MetricsRegistry;
use picloud_simcore::units::Power;
use picloud_simcore::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A machine's power draw as a linear function of utilisation.
///
/// `draw(u) = idle + (nameplate − idle) × u` — the standard first-order
/// model; the paper's Table I numbers are the `nameplate` points.
///
/// # Example
///
/// ```
/// use picloud_hardware::power::PowerModel;
///
/// let pi = PowerModel::raspberry_pi(3.5);
/// assert!(pi.draw_at(0.0).as_watts() < 3.5);
/// assert_eq!(pi.draw_at(1.0).as_watts(), 3.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    idle_watts: f64,
    nameplate_watts: f64,
}

impl PowerModel {
    /// Creates a model with explicit idle and nameplate (full-load) draw.
    ///
    /// # Panics
    ///
    /// Panics if either value is negative/non-finite or `idle > nameplate`.
    pub fn new(idle_watts: f64, nameplate_watts: f64) -> Self {
        assert!(
            idle_watts.is_finite() && idle_watts >= 0.0,
            "idle power must be non-negative"
        );
        assert!(
            nameplate_watts.is_finite() && nameplate_watts >= idle_watts,
            "nameplate power must be at least idle power"
        );
        PowerModel {
            idle_watts,
            nameplate_watts,
        }
    }

    /// A Raspberry Pi drawing `nameplate_watts` at full load. Pis have a
    /// high idle floor (no deep sleep states on the BCM2835): ~70 % of
    /// nameplate.
    pub fn raspberry_pi(nameplate_watts: f64) -> Self {
        PowerModel::new(nameplate_watts * 0.7, nameplate_watts)
    }

    /// An x86 server drawing `nameplate_watts` at full load; 2013-era
    /// servers idled around 50 % of peak.
    pub fn x86_server(nameplate_watts: f64) -> Self {
        PowerModel::new(nameplate_watts * 0.5, nameplate_watts)
    }

    /// Idle draw.
    pub fn idle(&self) -> Power {
        Power::watts(self.idle_watts)
    }

    /// Full-load (nameplate) draw — the figure Table I quotes.
    pub fn nameplate(&self) -> Power {
        Power::watts(self.nameplate_watts)
    }

    /// Draw at `utilisation` ∈ [0, 1] (clamped).
    pub fn draw_at(&self, utilisation: f64) -> Power {
        let u = utilisation.clamp(0.0, 1.0);
        Power::watts(self.idle_watts + (self.nameplate_watts - self.idle_watts) * u)
    }

    /// First-order SoC temperature estimate at `utilisation`: ambient
    /// 22 °C plus a rise proportional to draw, scaled so full load sits
    /// 30 °C above ambient — the free-air-cooling envelope §IV argues a
    /// Pi cloud never leaves (no HVAC line in Table I).
    pub fn soc_temperature_at(&self, utilisation: f64) -> f64 {
        const AMBIENT_C: f64 = 22.0;
        const FULL_LOAD_RISE_C: f64 = 30.0;
        if self.nameplate_watts <= 0.0 {
            return AMBIENT_C;
        }
        let draw = self.draw_at(utilisation).as_watts();
        AMBIENT_C + FULL_LOAD_RISE_C * (draw / self.nameplate_watts)
    }

    /// Records one node's electrical and thermal telemetry into `reg` at
    /// `now`: `hardware_power_watts{node,rack}` and
    /// `hardware_soc_temp_celsius{node,rack}` gauges (so the gauge
    /// integral prices the run in joules), given the node's current CPU
    /// `utilisation`.
    pub fn record_telemetry(
        &self,
        reg: &mut MetricsRegistry,
        node: u32,
        rack: u16,
        utilisation: f64,
        now: SimTime,
    ) {
        let node = node.to_string();
        let rack = rack.to_string();
        let labels = [("node", node.as_str()), ("rack", rack.as_str())];
        reg.gauge("hardware_power_watts", &labels)
            .set(now, self.draw_at(utilisation).as_watts());
        reg.gauge("hardware_soc_temp_celsius", &labels)
            .set(now, self.soc_temperature_at(utilisation));
    }
}

impl fmt::Display for PowerModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1}W idle / {:.1}W peak",
            self.idle_watts, self.nameplate_watts
        )
    }
}

/// Facility cooling overhead, expressed the way the paper quotes it: the
/// fraction of *total* facility power that cooling consumes.
///
/// If cooling is fraction `f` of total power and IT power is `P`, then
/// cooling power is `P · f / (1 − f)` — at the paper's 33 %, cooling adds
/// roughly half of IT power again.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolingModel {
    fraction_of_total: f64,
}

impl CoolingModel {
    /// No cooling at all — the PiCloud row of Table I.
    pub const NONE: CoolingModel = CoolingModel {
        fraction_of_total: 0.0,
    };

    /// Creates a model where cooling is `fraction` of total facility power.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ fraction < 1`.
    pub fn fraction_of_total(fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && (0.0..1.0).contains(&fraction),
            "cooling fraction must be in [0, 1)"
        );
        CoolingModel {
            fraction_of_total: fraction,
        }
    }

    /// The 33 %-of-total figure the paper cites for cloud DCs.
    pub fn datacenter_typical() -> Self {
        CoolingModel::fraction_of_total(0.33)
    }

    /// Whether any cooling infrastructure is needed — Table I's
    /// "Needs Cooling?" column.
    pub fn is_required(&self) -> bool {
        self.fraction_of_total > 0.0
    }

    /// Cooling power needed for `it_power` of IT load.
    pub fn cooling_power(&self, it_power: Power) -> Power {
        let f = self.fraction_of_total;
        Power::watts(it_power.as_watts() * f / (1.0 - f))
    }

    /// Total facility power (IT + cooling) for `it_power` of IT load.
    pub fn total_power(&self, it_power: Power) -> Power {
        it_power + self.cooling_power(it_power)
    }
}

impl fmt::Display for CoolingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_required() {
            write!(
                f,
                "cooling = {:.0}% of total power",
                self.fraction_of_total * 100.0
            )
        } else {
            write!(f, "no cooling")
        }
    }
}

/// A domestic power socket (or trailing socket board) with a safe capacity.
///
/// §III: "we can run the PiCloud from a single trailing power socket
/// board."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSocket {
    capacity_watts: f64,
}

impl PowerSocket {
    /// A UK 13 A / 230 V socket: ~3 kW.
    pub fn uk_domestic() -> Self {
        PowerSocket {
            capacity_watts: 13.0 * 230.0,
        }
    }

    /// A socket with explicit capacity.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is not positive.
    pub fn with_capacity(watts: f64) -> Self {
        assert!(
            watts.is_finite() && watts > 0.0,
            "socket capacity must be positive"
        );
        PowerSocket {
            capacity_watts: watts,
        }
    }

    /// Socket capacity.
    pub fn capacity(&self) -> Power {
        Power::watts(self.capacity_watts)
    }

    /// Whether `load` fits this socket.
    pub fn can_supply(&self, load: Power) -> bool {
        load.as_watts() <= self.capacity_watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_interpolation() {
        let m = PowerModel::new(100.0, 200.0);
        assert_eq!(m.draw_at(0.0).as_watts(), 100.0);
        assert_eq!(m.draw_at(0.5).as_watts(), 150.0);
        assert_eq!(m.draw_at(1.0).as_watts(), 200.0);
        // Clamping.
        assert_eq!(m.draw_at(-1.0).as_watts(), 100.0);
        assert_eq!(m.draw_at(2.0).as_watts(), 200.0);
    }

    #[test]
    fn table1_power_rows() {
        let pi_cloud: Power = (0..56)
            .map(|_| PowerModel::raspberry_pi(3.5).nameplate())
            .sum();
        let testbed: Power = (0..56)
            .map(|_| PowerModel::x86_server(180.0).nameplate())
            .sum();
        assert!((pi_cloud.as_watts() - 196.0).abs() < 1e-9);
        assert!((testbed.as_watts() - 10_080.0).abs() < 1e-9);
    }

    #[test]
    fn cooling_33_percent_of_total() {
        let cooling = CoolingModel::datacenter_typical();
        let it = Power::watts(670.0);
        let total = cooling.total_power(it);
        let cool = cooling.cooling_power(it);
        assert!((cool.as_watts() / total.as_watts() - 0.33).abs() < 1e-9);
        assert!(cooling.is_required());
    }

    #[test]
    fn no_cooling_adds_nothing() {
        let it = Power::watts(196.0);
        assert_eq!(CoolingModel::NONE.total_power(it).as_watts(), 196.0);
        assert!(!CoolingModel::NONE.is_required());
    }

    #[test]
    fn picloud_fits_single_socket_testbed_does_not() {
        let socket = PowerSocket::uk_domestic();
        assert!(socket.can_supply(Power::watts(196.0)));
        assert!(!socket.can_supply(Power::watts(10_080.0)));
    }

    #[test]
    #[should_panic(expected = "at least idle")]
    fn nameplate_below_idle_rejected() {
        let _ = PowerModel::new(10.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "cooling fraction")]
    fn cooling_fraction_one_rejected() {
        let _ = CoolingModel::fraction_of_total(1.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            PowerModel::new(1.0, 2.0).to_string(),
            "1.0W idle / 2.0W peak"
        );
        assert_eq!(CoolingModel::NONE.to_string(), "no cooling");
        assert!(CoolingModel::datacenter_typical()
            .to_string()
            .contains("33%"));
    }
}
