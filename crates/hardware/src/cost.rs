//! Capital-cost models behind Table I and the §IV BoM discussion.
//!
//! The paper infers the Pi's bill of materials (the real one is under NDA)
//! from comparable ARM boards: "Estimations place the processor as the most
//! expensive component for around 10$, followed by the cost of Printed
//! Circuit Board (PCB), RAM, the Ethernet connector and the rest of the
//! components." [`BillOfMaterials::raspberry_pi_estimate`] encodes that
//! ordering; [`TestbedCost`] aggregates per-unit cost into the Table I rows.

use picloud_simcore::units::Money;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One line of a bill of materials.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BomLine {
    /// Component name.
    pub component: String,
    /// Estimated cost of that component.
    pub cost: Money,
}

/// An estimated bill of materials for a board.
///
/// # Example
///
/// ```
/// use picloud_hardware::cost::BillOfMaterials;
///
/// let bom = BillOfMaterials::raspberry_pi_estimate();
/// // The processor is the most expensive single component (§IV).
/// assert_eq!(bom.most_expensive().unwrap().component, "BCM2835 SoC");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BillOfMaterials {
    lines: Vec<BomLine>,
}

impl BillOfMaterials {
    /// Builds a BoM from component lines.
    pub fn new(lines: Vec<BomLine>) -> Self {
        BillOfMaterials { lines }
    }

    /// The paper's inferred Raspberry Pi BoM: SoC ≈ $10 on top, then PCB,
    /// RAM, Ethernet connector and sundries, summing below the $35 retail
    /// price.
    pub fn raspberry_pi_estimate() -> Self {
        let line = |component: &str, cents: i64| BomLine {
            component: component.to_owned(),
            cost: Money::cents(cents),
        };
        BillOfMaterials::new(vec![
            line("BCM2835 SoC", 10_00),
            line("PCB", 5_00),
            line("256MB RAM (PoP)", 4_50),
            line("Ethernet connector + PHY", 3_50),
            line("Power regulation", 2_00),
            line("Connectors (HDMI/USB/GPIO)", 2_50),
            line("Passives & assembly", 3_00),
        ])
    }

    /// A hypothetical data-centre-tuned ARM chip per §IV: strip the
    /// multimedia peripherals (GPU, video codecs, image pipeline) and add a
    /// second Ethernet PHY. The SoC cost drops; the network cost rises.
    pub fn dc_tuned_arm_estimate() -> Self {
        let line = |component: &str, cents: i64| BomLine {
            component: component.to_owned(),
            cost: Money::cents(cents),
        };
        BillOfMaterials::new(vec![
            line("DC-tuned ARM SoC (no multimedia)", 6_00),
            line("PCB", 4_50),
            line("256MB RAM (PoP)", 4_50),
            line("2x Ethernet connector + PHY", 7_00),
            line("Power regulation", 2_00),
            line("Passives & assembly", 3_00),
        ])
    }

    /// All lines, in the order given.
    pub fn lines(&self) -> &[BomLine] {
        &self.lines
    }

    /// Total component cost.
    pub fn total(&self) -> Money {
        self.lines.iter().map(|l| l.cost).sum()
    }

    /// The most expensive line, or `None` for an empty BoM.
    pub fn most_expensive(&self) -> Option<&BomLine> {
        self.lines.iter().max_by_key(|l| l.cost)
    }
}

impl fmt::Display for BillOfMaterials {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.lines {
            writeln!(f, "  {:<36} {}", l.component, l.cost)?;
        }
        write!(f, "  {:<36} {}", "TOTAL", self.total())
    }
}

/// Capital cost of an `n`-machine testbed at a given unit price — one row
/// of Table I's cost column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestbedCost {
    /// Number of machines.
    pub machines: u32,
    /// Cost per machine.
    pub unit_cost: Money,
}

impl TestbedCost {
    /// Creates the cost row for `machines` at `unit_cost` each.
    pub fn new(machines: u32, unit_cost: Money) -> Self {
        TestbedCost {
            machines,
            unit_cost,
        }
    }

    /// Total capital cost.
    pub fn total(&self) -> Money {
        self.unit_cost * i64::from(self.machines)
    }

    /// How many times cheaper `self` is than `other` (by total cost).
    ///
    /// # Panics
    ///
    /// Panics if `self` has zero total cost.
    pub fn cheaper_factor_vs(&self, other: &TestbedCost) -> f64 {
        let own = self.total().as_cents();
        assert!(own > 0, "cannot compare against a free testbed");
        other.total().as_cents() as f64 / own as f64
    }
}

impl fmt::Display for TestbedCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (@{} x {})",
            self.total(),
            self.unit_cost,
            self.machines
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_cost_rows() {
        let testbed = TestbedCost::new(56, Money::dollars(2_000));
        let picloud = TestbedCost::new(56, Money::dollars(35));
        assert_eq!(testbed.total(), Money::dollars(112_000));
        assert_eq!(picloud.total(), Money::dollars(1_960));
        let factor = picloud.cheaper_factor_vs(&testbed);
        assert!(
            (factor - 57.142857).abs() < 1e-3,
            "~57x cheaper, got {factor}"
        );
    }

    #[test]
    fn pi_bom_ordering_matches_paper() {
        let bom = BillOfMaterials::raspberry_pi_estimate();
        let top = bom.most_expensive().unwrap();
        assert_eq!(top.component, "BCM2835 SoC");
        assert_eq!(top.cost, Money::dollars(10));
        // Components must cost less than the $35 retail price.
        assert!(bom.total() < Money::dollars(35));
    }

    #[test]
    fn dc_tuned_chip_is_cheaper_overall() {
        let pi = BillOfMaterials::raspberry_pi_estimate();
        let dc = BillOfMaterials::dc_tuned_arm_estimate();
        assert!(
            dc.total() < pi.total(),
            "§IV: multimedia removal cuts SoC cost"
        );
        // ...even though it carries two Ethernet PHYs.
        let eth = |b: &BillOfMaterials| {
            b.lines()
                .iter()
                .find(|l| l.component.contains("Ethernet"))
                .unwrap()
                .cost
        };
        assert!(eth(&dc) > eth(&pi));
    }

    #[test]
    fn empty_bom() {
        let bom = BillOfMaterials::new(vec![]);
        assert_eq!(bom.total(), Money::ZERO);
        assert!(bom.most_expensive().is_none());
    }

    #[test]
    fn display_contains_total() {
        let s = BillOfMaterials::raspberry_pi_estimate().to_string();
        assert!(s.contains("TOTAL"));
        let row = TestbedCost::new(56, Money::dollars(35)).to_string();
        assert!(row.contains("$1960.00"));
    }
}
