//! Weighted processor sharing.
//!
//! One arithmetic underlies both layers of CPU contention in the PiCloud:
//! tasks time-sharing the Pi's single ARM core, and containers throttled by
//! cgroup CPU *shares*. [`share_capacity`] implements weighted max–min fair
//! allocation (progressive filling): every claimant gets capacity in
//! proportion to its weight, no claimant gets more than its demand, and
//! capacity left by under-demanding claimants is redistributed among the
//! rest — the behaviour of the Linux CFS scheduler at the timescales the
//! emulator cares about.

use serde::{Deserialize, Serialize};

/// One claimant on a processor: a demand (in Hz it could consume right now)
/// and a scheduling weight (cgroup `cpu.shares`-style; default 1024).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuClaim {
    /// Hz the claimant would consume if unconstrained.
    pub demand_hz: f64,
    /// Relative scheduling weight; must be positive.
    pub weight: f64,
}

impl CpuClaim {
    /// A claim with the Linux default weight of 1024.
    pub fn new(demand_hz: f64) -> Self {
        CpuClaim {
            demand_hz,
            weight: 1024.0,
        }
    }

    /// A claim with an explicit weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not strictly positive and finite, or if
    /// `demand_hz` is negative or non-finite.
    pub fn with_weight(demand_hz: f64, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "CPU share weight must be positive"
        );
        assert!(
            demand_hz.is_finite() && demand_hz >= 0.0,
            "CPU demand must be non-negative"
        );
        CpuClaim { demand_hz, weight }
    }
}

/// Allocates `capacity_hz` among `claims` by weighted max–min fairness.
///
/// Returns one allocation per claim, in order. Properties guaranteed:
///
/// * no claim receives more than its demand;
/// * the total allocated never exceeds `capacity_hz`;
/// * if total demand ≤ capacity, every claim is fully satisfied;
/// * otherwise capacity is exhausted and divided in proportion to weight
///   among the unsatisfied claims.
///
/// # Example
///
/// ```
/// use picloud_hardware::cpu::{share_capacity, CpuClaim};
///
/// // Two equal-weight tasks saturating a 700 MHz core: 350 MHz each.
/// let out = share_capacity(700e6, &[CpuClaim::new(700e6), CpuClaim::new(700e6)]);
/// assert!((out[0] - 350e6).abs() < 1.0);
/// assert!((out[1] - 350e6).abs() < 1.0);
/// ```
///
/// # Panics
///
/// Panics if `capacity_hz` is negative or non-finite.
pub fn share_capacity(capacity_hz: f64, claims: &[CpuClaim]) -> Vec<f64> {
    assert!(
        capacity_hz.is_finite() && capacity_hz >= 0.0,
        "capacity must be non-negative"
    );
    let n = claims.len();
    let mut alloc = vec![0.0f64; n];
    if n == 0 || capacity_hz == 0.0 {
        return alloc;
    }
    let mut remaining = capacity_hz;
    let mut active: Vec<usize> = (0..n).filter(|&i| claims[i].demand_hz > 0.0).collect();

    // Progressive filling: repeatedly offer each active claimant its
    // weight-proportional share; claimants whose demand is met drop out and
    // release the surplus. Terminates in at most n rounds because every
    // round either satisfies a claimant or is the last.
    while !active.is_empty() && remaining > f64::EPSILON * capacity_hz {
        let total_weight: f64 = active.iter().map(|&i| claims[i].weight).sum();
        let mut any_satisfied = false;
        let mut next_active = Vec::with_capacity(active.len());
        let mut released = 0.0;
        for &i in &active {
            let offer = remaining * claims[i].weight / total_weight;
            let want = claims[i].demand_hz - alloc[i];
            if want <= offer {
                alloc[i] = claims[i].demand_hz;
                released += offer - want;
                any_satisfied = true;
            } else {
                alloc[i] += offer;
                next_active.push(i);
            }
        }
        remaining = released;
        active = next_active;
        if !any_satisfied {
            break; // everyone took a full proportional share; capacity spent
        }
    }
    alloc
}

/// A multi-core processor as a shared-capacity pool.
///
/// The PiCloud emulator models a processor as a single pool of
/// `cores × clock` Hz shared by all runnable claimants. For the Pi's
/// single core this is exact; for the x86 comparator it slightly idealises
/// cross-core migration, which is the right fidelity for utilisation and
/// power studies (and errs in favour of the x86 baseline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessorPool {
    capacity_hz: f64,
    per_core_hz: f64,
}

impl ProcessorPool {
    /// Creates a pool of `cores` cores at `core_hz` each.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `core_hz` is not positive.
    pub fn new(cores: u32, core_hz: f64) -> Self {
        assert!(cores > 0, "a processor needs at least one core");
        assert!(
            core_hz.is_finite() && core_hz > 0.0,
            "clock must be positive"
        );
        ProcessorPool {
            capacity_hz: f64::from(cores) * core_hz,
            per_core_hz: core_hz,
        }
    }

    /// Total pool capacity in Hz.
    pub fn capacity_hz(&self) -> f64 {
        self.capacity_hz
    }

    /// Allocates the pool among `claims`, additionally capping each claim at
    /// one core's worth of Hz (a single-threaded task cannot exceed one
    /// core no matter how idle the others are).
    pub fn allocate(&self, claims: &[CpuClaim]) -> Vec<f64> {
        let capped: Vec<CpuClaim> = claims
            .iter()
            .map(|c| CpuClaim {
                demand_hz: c.demand_hz.min(self.per_core_hz),
                weight: c.weight,
            })
            .collect();
        share_capacity(self.capacity_hz, &capped)
    }

    /// Utilisation in `[0, 1]` given the allocations returned by
    /// [`ProcessorPool::allocate`].
    pub fn utilisation(&self, allocations: &[f64]) -> f64 {
        (allocations.iter().sum::<f64>() / self.capacity_hz).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(v: &[f64]) -> f64 {
        v.iter().sum()
    }

    #[test]
    fn undersubscribed_everyone_satisfied() {
        let out = share_capacity(700e6, &[CpuClaim::new(100e6), CpuClaim::new(200e6)]);
        assert_eq!(out, vec![100e6, 200e6]);
    }

    #[test]
    fn oversubscribed_splits_by_weight() {
        let out = share_capacity(
            600e6,
            &[
                CpuClaim::with_weight(600e6, 2048.0),
                CpuClaim::with_weight(600e6, 1024.0),
            ],
        );
        assert!((out[0] - 400e6).abs() < 1.0, "got {out:?}");
        assert!((out[1] - 200e6).abs() < 1.0, "got {out:?}");
    }

    #[test]
    fn surplus_from_small_claims_redistributes() {
        // Claim 0 wants only 50; the rest of its share flows to 1 and 2.
        let out = share_capacity(
            300.0,
            &[
                CpuClaim::new(50.0),
                CpuClaim::new(1000.0),
                CpuClaim::new(1000.0),
            ],
        );
        assert!((out[0] - 50.0).abs() < 1e-9);
        assert!((out[1] - 125.0).abs() < 1e-6);
        assert!((out[2] - 125.0).abs() < 1e-6);
    }

    #[test]
    fn conservation_never_exceeds_capacity() {
        let claims: Vec<CpuClaim> = (1..=17)
            .map(|i| CpuClaim::with_weight(f64::from(i) * 10.0, f64::from(i)))
            .collect();
        let out = share_capacity(500.0, &claims);
        assert!(total(&out) <= 500.0 + 1e-6);
        for (c, a) in claims.iter().zip(&out) {
            assert!(*a <= c.demand_hz + 1e-9, "allocation exceeded demand");
        }
    }

    #[test]
    fn zero_demand_gets_zero() {
        let out = share_capacity(100.0, &[CpuClaim::new(0.0), CpuClaim::new(100.0)]);
        assert_eq!(out[0], 0.0);
        assert!((out[1] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_claims_ok() {
        assert!(share_capacity(100.0, &[]).is_empty());
    }

    #[test]
    fn zero_capacity_gives_all_zero() {
        let out = share_capacity(0.0, &[CpuClaim::new(10.0)]);
        assert_eq!(out, vec![0.0]);
    }

    #[test]
    fn pool_caps_single_claim_to_one_core() {
        let pool = ProcessorPool::new(8, 3e9);
        let out = pool.allocate(&[CpuClaim::new(10e9)]);
        assert!((out[0] - 3e9).abs() < 1.0, "single task capped at one core");
    }

    #[test]
    fn pool_utilisation() {
        let pool = ProcessorPool::new(2, 1e9);
        let out = pool.allocate(&[CpuClaim::new(1e9), CpuClaim::new(0.5e9)]);
        let u = pool.utilisation(&out);
        assert!((u - 0.75).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn pool_rejects_zero_cores() {
        let _ = ProcessorPool::new(0, 1e9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn claim_rejects_zero_weight() {
        let _ = CpuClaim::with_weight(1.0, 0.0);
    }
}
