//! CPU frequency scaling (cpufreq governors).
//!
//! The Pi's BCM2835 ships with Linux cpufreq support (the firmware's
//! famous `force_turbo` / `arm_freq` knobs); §III's power-measurement
//! agenda ("isolate individual components to measure their power
//! consumption characteristics") needs a model of how the governor trades
//! clock for watts. [`FrequencyGovernor`] maps offered load to an
//! operating point; combined with a [`PowerModel`] it yields the
//! energy/performance trade the experiments sweep.

use crate::power::PowerModel;
use picloud_simcore::units::{Frequency, Power};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A cpufreq governor policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FrequencyGovernor {
    /// Always the maximum clock (`performance`).
    Performance,
    /// Always the minimum clock (`powersave`).
    Powersave,
    /// Minimum clock until load crosses `up_threshold`, then maximum
    /// (`ondemand`, as shipped: threshold defaults to 0.95 on Raspbian).
    Ondemand {
        /// Load fraction at which the governor jumps to max.
        up_threshold: f64,
    },
}

impl Default for FrequencyGovernor {
    fn default() -> Self {
        FrequencyGovernor::Ondemand { up_threshold: 0.95 }
    }
}

impl fmt::Display for FrequencyGovernor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrequencyGovernor::Performance => write!(f, "performance"),
            FrequencyGovernor::Powersave => write!(f, "powersave"),
            FrequencyGovernor::Ondemand { up_threshold } => {
                write!(f, "ondemand({:.0}%)", up_threshold * 100.0)
            }
        }
    }
}

/// A scalable CPU: min/max clocks plus the governor choosing between them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalableCpu {
    /// Lowest operating clock.
    pub min_clock: Frequency,
    /// Highest operating clock.
    pub max_clock: Frequency,
    /// Power at the *max* clock operating point.
    pub power_at_max: PowerModel,
    /// Governor in force.
    pub governor: FrequencyGovernor,
}

impl ScalableCpu {
    /// The Pi's BCM2835: 300 MHz idle floor to 700 MHz stock, with the
    /// stock Raspbian `ondemand` governor and the 3.5 W board model.
    pub fn bcm2835() -> ScalableCpu {
        ScalableCpu {
            min_clock: Frequency::mhz(300),
            max_clock: Frequency::mhz(700),
            power_at_max: PowerModel::raspberry_pi(3.5),
            governor: FrequencyGovernor::default(),
        }
    }

    /// Replaces the governor.
    pub fn with_governor(mut self, governor: FrequencyGovernor) -> Self {
        self.governor = governor;
        self
    }

    /// The DVFS floor as a permille of the stock clock — the slowdown a
    /// thermally throttled board pinned to `min_clock` suffers. For the
    /// BCM2835 this is 300/700 ≈ 428‰, the clamp the `SlowNode` gray
    /// fault applies.
    pub fn floor_permille(&self) -> u16 {
        let max = self.max_clock.as_hz().max(1);
        u16::try_from(self.min_clock.as_hz().saturating_mul(1000) / max).unwrap_or(1000)
    }

    /// The clock chosen for an offered `load` (fraction of *max-clock*
    /// capacity, clamped to `[0, 1]`).
    pub fn clock_at(&self, load: f64) -> Frequency {
        let load = load.clamp(0.0, 1.0);
        match self.governor {
            FrequencyGovernor::Performance => self.max_clock,
            FrequencyGovernor::Powersave => self.min_clock,
            FrequencyGovernor::Ondemand { up_threshold } => {
                // `ondemand` compares load against capacity *at the current
                // clock*; a demand that saturates the low clock triggers
                // the jump. Low-clock capacity as a fraction of max:
                let low_capacity = self.min_clock.as_hz() as f64 / self.max_clock.as_hz() as f64;
                if load >= low_capacity * up_threshold {
                    self.max_clock
                } else {
                    self.min_clock
                }
            }
        }
    }

    /// Power drawn at an offered `load` under the governor. Dynamic power
    /// follows `P ∝ f·V²` with voltage tracking frequency (the standard
    /// DVFS model): the active term scales with the *square* of the clock
    /// ratio per unit utilisation, so finishing work slowly at a low
    /// clock really is cheaper per unit of work.
    pub fn power_at(&self, load: f64) -> Power {
        let load = load.clamp(0.0, 1.0);
        let clock = self.clock_at(load);
        let ratio = clock.as_hz() as f64 / self.max_clock.as_hz() as f64;
        // Utilisation of the *chosen* clock: offered work / chosen capacity.
        let util = (load / ratio).clamp(0.0, 1.0);
        let idle = self.power_at_max.idle().as_watts();
        let peak = self.power_at_max.nameplate().as_watts();
        Power::watts(idle + (peak - idle) * ratio * ratio * util)
    }

    /// Whether the offered load can actually be served at the chosen clock
    /// (powersave clips throughput).
    pub fn can_serve(&self, load: f64) -> bool {
        let clock = self.clock_at(load);
        load <= clock.as_hz() as f64 / self.max_clock.as_hz() as f64 + 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_always_max() {
        let cpu = ScalableCpu::bcm2835().with_governor(FrequencyGovernor::Performance);
        assert_eq!(cpu.clock_at(0.0), Frequency::mhz(700));
        assert_eq!(cpu.clock_at(1.0), Frequency::mhz(700));
        assert!(cpu.can_serve(1.0));
    }

    #[test]
    fn powersave_always_min_and_clips() {
        let cpu = ScalableCpu::bcm2835().with_governor(FrequencyGovernor::Powersave);
        assert_eq!(cpu.clock_at(1.0), Frequency::mhz(300));
        assert!(cpu.can_serve(0.4), "3/7 of max capacity still fits");
        assert!(!cpu.can_serve(0.9), "beyond the low clock's capacity");
    }

    #[test]
    fn ondemand_jumps_at_threshold() {
        let cpu = ScalableCpu::bcm2835();
        // Low capacity = 3/7 ≈ 0.43; threshold 0.95 => jump near 0.41.
        assert_eq!(cpu.clock_at(0.2), Frequency::mhz(300));
        assert_eq!(cpu.clock_at(0.5), Frequency::mhz(700));
        assert!(cpu.can_serve(0.2) && cpu.can_serve(0.95));
    }

    #[test]
    fn governors_order_power_correctly_at_light_load() {
        let load = 0.2;
        let perf = ScalableCpu::bcm2835()
            .with_governor(FrequencyGovernor::Performance)
            .power_at(load);
        let save = ScalableCpu::bcm2835()
            .with_governor(FrequencyGovernor::Powersave)
            .power_at(load);
        let ond = ScalableCpu::bcm2835().power_at(load);
        assert!(save.as_watts() < perf.as_watts(), "{save} < {perf}");
        // ondemand sits at the low point for this load.
        assert!((ond.as_watts() - save.as_watts()).abs() < 1e-9);
    }

    #[test]
    fn power_is_monotone_in_load_per_governor() {
        for gov in [
            FrequencyGovernor::Performance,
            FrequencyGovernor::Powersave,
            FrequencyGovernor::default(),
        ] {
            let cpu = ScalableCpu::bcm2835().with_governor(gov);
            let mut last = 0.0;
            for i in 0..=10 {
                let p = cpu.power_at(f64::from(i) / 10.0).as_watts();
                assert!(p + 1e-9 >= last, "{gov}: power dipped at {i}");
                last = p;
            }
        }
    }

    #[test]
    fn full_load_power_matches_nameplate_for_performance() {
        let cpu = ScalableCpu::bcm2835().with_governor(FrequencyGovernor::Performance);
        assert!((cpu.power_at(1.0).as_watts() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn display_names_governors() {
        assert_eq!(FrequencyGovernor::Performance.to_string(), "performance");
        assert_eq!(FrequencyGovernor::default().to_string(), "ondemand(95%)");
    }
}
