//! Physical rack model.
//!
//! The paper's Pis are "housed in racks constructed using Lego bricks"
//! (Fig. 1), four racks of 14 boards each. A [`Rack`] tracks slot occupancy
//! and renders the ASCII view used to reproduce Fig. 1 in the quickstart
//! example.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a rack within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RackId(pub u16);

impl RackId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack-{}", self.0)
    }
}

/// Construction material — cosmetic, but Fig. 1 earns it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RackKind {
    /// Lego-brick rack holding Raspberry Pis (the paper's Fig. 1).
    #[default]
    Lego,
    /// A standard 19-inch rack for x86 servers.
    NineteenInch,
}

impl fmt::Display for RackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RackKind::Lego => write!(f, "Lego"),
            RackKind::NineteenInch => write!(f, "19-inch"),
        }
    }
}

/// A rack with a fixed number of machine slots.
///
/// # Example
///
/// ```
/// use picloud_hardware::node::NodeId;
/// use picloud_hardware::rack::{Rack, RackId};
///
/// let mut rack = Rack::lego(RackId(0));
/// assert_eq!(rack.capacity(), 14);
/// rack.install(NodeId(0)).unwrap();
/// assert_eq!(rack.occupied(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rack {
    id: RackId,
    kind: RackKind,
    slots: Vec<Option<NodeId>>,
}

/// Error installing a machine into a rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RackError {
    /// Every slot is occupied.
    Full,
    /// The node is already installed in this rack.
    AlreadyInstalled(NodeId),
}

impl fmt::Display for RackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RackError::Full => write!(f, "rack is full"),
            RackError::AlreadyInstalled(n) => write!(f, "{n} is already installed"),
        }
    }
}

impl std::error::Error for RackError {}

impl Rack {
    /// The paper's Lego rack: 14 Pi slots.
    pub fn lego(id: RackId) -> Self {
        Rack::with_capacity(id, RackKind::Lego, 14)
    }

    /// A 42U 19-inch rack (one server per U).
    pub fn nineteen_inch(id: RackId) -> Self {
        Rack::with_capacity(id, RackKind::NineteenInch, 42)
    }

    /// A rack with explicit slot count.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(id: RackId, kind: RackKind, capacity: usize) -> Self {
        assert!(capacity > 0, "a rack needs at least one slot");
        Rack {
            id,
            kind,
            slots: vec![None; capacity],
        }
    }

    /// This rack's id.
    pub fn id(&self) -> RackId {
        self.id
    }

    /// Construction kind.
    pub fn kind(&self) -> RackKind {
        self.kind
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slots.
    pub fn occupied(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no free slot remains.
    pub fn is_full(&self) -> bool {
        self.occupied() == self.capacity()
    }

    /// Installs `node` into the first free slot, returning the slot index.
    ///
    /// # Errors
    ///
    /// [`RackError::Full`] if no slot is free;
    /// [`RackError::AlreadyInstalled`] if the node is already present.
    pub fn install(&mut self, node: NodeId) -> Result<usize, RackError> {
        if self.slots.iter().flatten().any(|&n| n == node) {
            return Err(RackError::AlreadyInstalled(node));
        }
        match self.slots.iter_mut().enumerate().find(|(_, s)| s.is_none()) {
            Some((i, slot)) => {
                *slot = Some(node);
                Ok(i)
            }
            None => Err(RackError::Full),
        }
    }

    /// Removes `node`, returning whether it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        for slot in &mut self.slots {
            if *slot == Some(node) {
                *slot = None;
                return true;
            }
        }
        false
    }

    /// Nodes installed, in slot order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.slots.iter().flatten().copied()
    }

    /// Whether `node` is installed here.
    pub fn contains(&self, node: NodeId) -> bool {
        self.slots.iter().flatten().any(|&n| n == node)
    }

    /// A small ASCII rendering of the rack (used to reproduce Fig. 1).
    pub fn render_ascii(&self) -> String {
        let mut out = format!("+--- {} ({}) ---+\n", self.id, self.kind);
        for (i, slot) in self.slots.iter().enumerate() {
            match slot {
                Some(n) => out.push_str(&format!("| {i:2}: {n:<10}|\n")),
                None => out.push_str(&format!("| {i:2}: (empty)   |\n")),
            }
        }
        out.push_str("+---------------+");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lego_rack_holds_14() {
        let mut rack = Rack::lego(RackId(0));
        for i in 0..14 {
            rack.install(NodeId(i)).unwrap();
        }
        assert!(rack.is_full());
        assert_eq!(rack.install(NodeId(99)), Err(RackError::Full));
    }

    #[test]
    fn duplicate_install_rejected() {
        let mut rack = Rack::lego(RackId(1));
        rack.install(NodeId(5)).unwrap();
        assert_eq!(
            rack.install(NodeId(5)),
            Err(RackError::AlreadyInstalled(NodeId(5)))
        );
    }

    #[test]
    fn remove_frees_slot() {
        let mut rack = Rack::lego(RackId(0));
        rack.install(NodeId(1)).unwrap();
        assert!(rack.remove(NodeId(1)));
        assert!(!rack.remove(NodeId(1)));
        assert_eq!(rack.occupied(), 0);
        assert!(!rack.contains(NodeId(1)));
    }

    #[test]
    fn install_reuses_freed_slots() {
        let mut rack = Rack::lego(RackId(0));
        rack.install(NodeId(0)).unwrap();
        rack.install(NodeId(1)).unwrap();
        rack.remove(NodeId(0));
        let slot = rack.install(NodeId(2)).unwrap();
        assert_eq!(slot, 0, "first free slot reused");
    }

    #[test]
    fn ascii_render_lists_nodes() {
        let mut rack = Rack::lego(RackId(3));
        rack.install(NodeId(42)).unwrap();
        let art = rack.render_ascii();
        assert!(art.contains("rack-3"));
        assert!(art.contains("node-42"));
        assert!(art.contains("(empty)"));
    }

    #[test]
    fn nineteen_inch_has_42u() {
        assert_eq!(Rack::nineteen_inch(RackId(0)).capacity(), 42);
    }
}
