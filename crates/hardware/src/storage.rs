//! Storage device models.
//!
//! Each Pi boots and serves from a SanDisk 16 GB SD card — by far the
//! slowest component in the board and the reason the paper restricts the
//! application layer to "lightweight httpd servers, hadoop etc.". The model
//! distinguishes sequential from random access and read from write, because
//! SD cards are dramatically asymmetric (random writes are orders of
//! magnitude slower than sequential reads).

use picloud_simcore::units::{Bandwidth, Bytes};
use picloud_simcore::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Access pattern of an I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Large contiguous transfers (image flashing, HDFS block streaming).
    Sequential,
    /// Small scattered transfers (database pages, container metadata).
    Random,
}

/// Direction of an I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoDirection {
    /// Reading from the device.
    Read,
    /// Writing to the device.
    Write,
}

/// A storage device: capacity plus a 2×2 throughput matrix
/// (sequential/random × read/write) and a fixed per-request latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageSpec {
    /// Marketing name.
    pub model: String,
    /// Usable capacity.
    pub capacity: Bytes,
    /// Sequential read throughput.
    pub seq_read: Bandwidth,
    /// Sequential write throughput.
    pub seq_write: Bandwidth,
    /// Random read throughput.
    pub rand_read: Bandwidth,
    /// Random write throughput.
    pub rand_write: Bandwidth,
    /// Fixed setup latency charged once per request.
    pub access_latency: SimDuration,
}

impl StorageSpec {
    /// The SanDisk 16 GB class-4 SD card the paper's Pis boot from.
    /// Figures are typical for 2013-era class-4 cards.
    pub fn sd_card_16gb() -> StorageSpec {
        StorageSpec {
            model: "SanDisk 16GB SD (class 4)".to_owned(),
            capacity: Bytes::gib(16),
            seq_read: Bandwidth::mbps(160), // 20 MB/s
            seq_write: Bandwidth::mbps(40), // 5 MB/s
            rand_read: Bandwidth::mbps(24), // 3 MB/s
            rand_write: Bandwidth::mbps(4), // 0.5 MB/s — the classic SD pain
            access_latency: SimDuration::from_micros(800),
        }
    }

    /// A 7200 rpm SATA disk typical of the Table I commodity server.
    pub fn server_sata_disk() -> StorageSpec {
        StorageSpec {
            model: "1TB 7200rpm SATA".to_owned(),
            capacity: Bytes::gib(1024),
            seq_read: Bandwidth::mbps(1_200), // 150 MB/s
            seq_write: Bandwidth::mbps(1_120),
            rand_read: Bandwidth::mbps(16), // seek-bound
            rand_write: Bandwidth::mbps(16),
            access_latency: SimDuration::from_millis(8),
        }
    }

    /// The same card degraded to `permille`/1000 of its nominal
    /// throughput in every quadrant of the matrix — the gray-fault model
    /// of a worn or counterfeit SD card that still works, just slowly.
    /// Access latency is unchanged (the controller still answers; the
    /// flash behind it is what got slow). `permille` is clamped to at
    /// least 1 so a degraded card never divides time by zero.
    ///
    /// # Example
    ///
    /// ```
    /// use picloud_hardware::storage::{AccessPattern, IoDirection, StorageSpec};
    /// use picloud_simcore::units::Bytes;
    ///
    /// let sd = StorageSpec::sd_card_16gb();
    /// let worn = sd.degraded(200); // 5× slower
    /// let healthy = sd.service_time(Bytes::mib(8), AccessPattern::Sequential, IoDirection::Read);
    /// let slow = worn.service_time(Bytes::mib(8), AccessPattern::Sequential, IoDirection::Read);
    /// assert!(slow > healthy * 4);
    /// ```
    pub fn degraded(&self, permille: u16) -> StorageSpec {
        let factor = f64::from(permille.max(1)) / 1000.0;
        StorageSpec {
            model: format!("{} (degraded {permille}‰)", self.model),
            capacity: self.capacity,
            seq_read: self.seq_read.mul_f64(factor),
            seq_write: self.seq_write.mul_f64(factor),
            rand_read: self.rand_read.mul_f64(factor),
            rand_write: self.rand_write.mul_f64(factor),
            access_latency: self.access_latency,
        }
    }

    /// Throughput for a given pattern and direction.
    pub fn throughput(&self, pattern: AccessPattern, dir: IoDirection) -> Bandwidth {
        match (pattern, dir) {
            (AccessPattern::Sequential, IoDirection::Read) => self.seq_read,
            (AccessPattern::Sequential, IoDirection::Write) => self.seq_write,
            (AccessPattern::Random, IoDirection::Read) => self.rand_read,
            (AccessPattern::Random, IoDirection::Write) => self.rand_write,
        }
    }

    /// Time to service one request of `size`: fixed access latency plus
    /// transfer at the pattern/direction throughput.
    ///
    /// # Example
    ///
    /// ```
    /// use picloud_hardware::storage::{AccessPattern, IoDirection, StorageSpec};
    /// use picloud_simcore::units::Bytes;
    ///
    /// let sd = StorageSpec::sd_card_16gb();
    /// let read = sd.service_time(Bytes::mib(1), AccessPattern::Sequential, IoDirection::Read);
    /// let write = sd.service_time(Bytes::mib(1), AccessPattern::Random, IoDirection::Write);
    /// assert!(write > read * 10, "random SD writes are much slower than sequential reads");
    /// ```
    pub fn service_time(
        &self,
        size: Bytes,
        pattern: AccessPattern,
        dir: IoDirection,
    ) -> SimDuration {
        self.access_latency
            .saturating_add(self.throughput(pattern, dir).transfer_time(size))
    }
}

impl fmt::Display for StorageSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.model, self.capacity)
    }
}

/// Tracks used space on one device, rejecting overcommit.
///
/// # Example
///
/// ```
/// use picloud_hardware::storage::{StorageSpec, StorageVolume};
/// use picloud_simcore::units::Bytes;
///
/// let mut vol = StorageVolume::new(StorageSpec::sd_card_16gb());
/// vol.allocate(Bytes::gib(4)).unwrap();
/// assert_eq!(vol.free(), Bytes::gib(12));
/// assert!(vol.allocate(Bytes::gib(13)).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageVolume {
    spec: StorageSpec,
    used: Bytes,
}

/// Error returned when a volume cannot fit an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageFullError {
    /// Bytes requested.
    pub requested: Bytes,
    /// Bytes actually free.
    pub free: Bytes,
}

impl fmt::Display for StorageFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "storage full: requested {} but only {} free",
            self.requested, self.free
        )
    }
}

impl std::error::Error for StorageFullError {}

impl StorageVolume {
    /// Creates an empty volume on `spec`.
    pub fn new(spec: StorageSpec) -> Self {
        StorageVolume {
            spec,
            used: Bytes::ZERO,
        }
    }

    /// The underlying device.
    pub fn spec(&self) -> &StorageSpec {
        &self.spec
    }

    /// Bytes in use.
    pub fn used(&self) -> Bytes {
        self.used
    }

    /// Bytes free.
    pub fn free(&self) -> Bytes {
        self.spec.capacity.saturating_sub(self.used)
    }

    /// Reserves `size` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`StorageFullError`] if fewer than `size` bytes are free.
    pub fn allocate(&mut self, size: Bytes) -> Result<(), StorageFullError> {
        if size > self.free() {
            return Err(StorageFullError {
                requested: size,
                free: self.free(),
            });
        }
        self.used += size;
        Ok(())
    }

    /// Releases `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if releasing more than is in use — that is an accounting bug.
    pub fn release(&mut self, size: Bytes) {
        assert!(size <= self.used, "released more storage than allocated");
        self.used -= size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sd_card_asymmetry() {
        let sd = StorageSpec::sd_card_16gb();
        assert!(sd.seq_read > sd.seq_write);
        assert!(sd.seq_write > sd.rand_write);
        assert!(
            sd.throughput(AccessPattern::Random, IoDirection::Write)
                < sd.throughput(AccessPattern::Sequential, IoDirection::Read)
        );
    }

    #[test]
    fn service_time_includes_latency() {
        let sd = StorageSpec::sd_card_16gb();
        let tiny = sd.service_time(Bytes::new(1), AccessPattern::Random, IoDirection::Read);
        assert!(tiny >= sd.access_latency);
    }

    #[test]
    fn server_disk_faster_sequential_but_seek_bound_random() {
        let disk = StorageSpec::server_sata_disk();
        let sd = StorageSpec::sd_card_16gb();
        assert!(disk.seq_read > sd.seq_read);
        // The disk's 8 ms seek makes small random reads slower than SD.
        let small = Bytes::kib(4);
        let disk_t = disk.service_time(small, AccessPattern::Random, IoDirection::Read);
        let sd_t = sd.service_time(small, AccessPattern::Random, IoDirection::Read);
        assert!(disk_t > sd_t);
    }

    #[test]
    fn volume_accounting() {
        let mut vol = StorageVolume::new(StorageSpec::sd_card_16gb());
        assert_eq!(vol.used(), Bytes::ZERO);
        vol.allocate(Bytes::gib(10)).unwrap();
        vol.allocate(Bytes::gib(6)).unwrap();
        assert_eq!(vol.free(), Bytes::ZERO);
        let err = vol.allocate(Bytes::new(1)).unwrap_err();
        assert_eq!(err.free, Bytes::ZERO);
        vol.release(Bytes::gib(16));
        assert_eq!(vol.free(), Bytes::gib(16));
    }

    #[test]
    #[should_panic(expected = "more storage than allocated")]
    fn over_release_panics() {
        let mut vol = StorageVolume::new(StorageSpec::sd_card_16gb());
        vol.release(Bytes::new(1));
    }

    #[test]
    fn error_display() {
        let err = StorageFullError {
            requested: Bytes::gib(2),
            free: Bytes::gib(1),
        };
        assert!(err.to_string().contains("storage full"));
    }
}
