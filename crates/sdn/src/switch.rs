//! An OpenFlow switch.
//!
//! Wraps a [`FlowTable`] with the switch's identity and the statistics the
//! pimaster dashboard reads (table occupancy, miss counts). Forwarding
//! itself is a table lookup; a miss is punted to the controller, exactly
//! the OpenFlow 1.0 pipeline.

use crate::flowtable::{Action, FlowKey, FlowRule, FlowTable};
use picloud_network::topology::DeviceId;
use picloud_simcore::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One OpenFlow switch in the fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenFlowSwitch {
    device: DeviceId,
    table: FlowTable,
    misses: u64,
    hits: u64,
}

impl OpenFlowSwitch {
    /// Creates a switch with an empty table for fabric device `device`.
    pub fn new(device: DeviceId) -> Self {
        OpenFlowSwitch {
            device,
            table: FlowTable::new(),
            misses: 0,
            hits: 0,
        }
    }

    /// The fabric device this switch is.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Classifies `key`: a hit returns the action, a miss is counted and
    /// returns `None` (punt to controller).
    pub fn classify(&mut self, key: FlowKey, now: SimTime) -> Option<Action> {
        match self.table.lookup(key, now) {
            Some(Action::SendToController) | None => {
                self.misses += 1;
                None
            }
            Some(action) => {
                self.hits += 1;
                Some(action)
            }
        }
    }

    /// Installs a rule (a controller `FLOW_MOD ADD`).
    pub fn install(&mut self, rule: FlowRule, now: SimTime) -> u64 {
        self.table.install(rule, now)
    }

    /// Removes matching rules (a controller `FLOW_MOD DELETE`); returns the
    /// count removed.
    pub fn remove_where(&mut self, pred: impl Fn(&FlowRule) -> bool) -> usize {
        self.table.remove_where(pred)
    }

    /// The flow table (read-only).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Table-miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Table-hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

impl fmt::Display for OpenFlowSwitch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "switch@{}: {} rules, {} hits, {} misses",
            self.device,
            self.table.len(),
            self.hits,
            self.misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowtable::MatchFields;
    use picloud_network::topology::LinkId;

    #[test]
    fn miss_then_hit() {
        let mut sw = OpenFlowSwitch::new(DeviceId(3));
        let key = FlowKey::pair(DeviceId(1), DeviceId(2));
        assert_eq!(sw.classify(key, SimTime::ZERO), None);
        assert_eq!(sw.misses(), 1);
        sw.install(
            FlowRule::new(
                MatchFields::exact_pair(DeviceId(1), DeviceId(2)),
                Action::Forward(LinkId(0)),
            ),
            SimTime::ZERO,
        );
        assert_eq!(
            sw.classify(key, SimTime::ZERO),
            Some(Action::Forward(LinkId(0)))
        );
        assert_eq!(sw.hits(), 1);
    }

    #[test]
    fn send_to_controller_counts_as_miss() {
        let mut sw = OpenFlowSwitch::new(DeviceId(3));
        sw.install(
            FlowRule::new(MatchFields::any(), Action::SendToController),
            SimTime::ZERO,
        );
        let key = FlowKey::pair(DeviceId(1), DeviceId(2));
        assert_eq!(sw.classify(key, SimTime::ZERO), None);
        assert_eq!(sw.misses(), 1);
        assert_eq!(sw.hits(), 0);
    }

    #[test]
    fn display_reports_counters() {
        let sw = OpenFlowSwitch::new(DeviceId(9));
        assert!(sw.to_string().contains("switch@dev-9"));
    }
}
