//! OpenFlow match/action rules and the per-switch flow table.
//!
//! Deliberately scoped to OpenFlow 1.0-era semantics (the standard when the
//! paper was written): exact-match or wildcard fields, a priority, forward/
//! drop/punt actions and idle/hard timeouts. Matching returns the
//! highest-priority matching rule, ties broken by insertion order (lowest
//! cookie first) for determinism.

use picloud_network::topology::{DeviceId, LinkId};
use picloud_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A packet/flow header as the fabric sees it: endpoints plus an optional
/// flat label (used by [`crate::ipless`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source host.
    pub src: DeviceId,
    /// Destination host.
    pub dst: DeviceId,
    /// Flat routing label (e.g. a container identity), if the deployment
    /// uses label addressing.
    pub label: Option<u64>,
}

impl FlowKey {
    /// A plain src/dst key with no label.
    pub fn pair(src: DeviceId, dst: DeviceId) -> Self {
        FlowKey {
            src,
            dst,
            label: None,
        }
    }
}

/// Which header fields a rule matches on; `None` is a wildcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct MatchFields {
    /// Match on the source host.
    pub src: Option<DeviceId>,
    /// Match on the destination host.
    pub dst: Option<DeviceId>,
    /// Match on the flat label.
    pub label: Option<u64>,
}

impl MatchFields {
    /// Matches everything (the table-miss candidate).
    pub fn any() -> Self {
        MatchFields::default()
    }

    /// Exact src+dst match — the reactive controller's default granularity.
    pub fn exact_pair(src: DeviceId, dst: DeviceId) -> Self {
        MatchFields {
            src: Some(src),
            dst: Some(dst),
            label: None,
        }
    }

    /// Destination-only match — one rule per destination, the proactive
    /// controller's granularity.
    pub fn to_dst(dst: DeviceId) -> Self {
        MatchFields {
            dst: Some(dst),
            ..MatchFields::default()
        }
    }

    /// Label-only match — the IP-less granularity.
    pub fn to_label(label: u64) -> Self {
        MatchFields {
            label: Some(label),
            ..MatchFields::default()
        }
    }

    /// Whether `key` satisfies these fields.
    pub fn matches(&self, key: FlowKey) -> bool {
        self.src.is_none_or(|s| s == key.src)
            && self.dst.is_none_or(|d| d == key.dst)
            && self.label.is_none_or(|l| Some(l) == key.label)
    }
}

/// What a matching rule does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Forward out over a link.
    Forward(LinkId),
    /// Drop the traffic.
    Drop,
    /// Punt to the controller (table-miss behaviour made explicit).
    SendToController,
}

/// One prioritised rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRule {
    /// Match condition.
    pub fields: MatchFields,
    /// Action on match.
    pub action: Action,
    /// Priority; higher wins.
    pub priority: u16,
    /// Remove if unmatched for this long (`None` = no idle timeout).
    pub idle_timeout: Option<SimDuration>,
    /// Remove unconditionally after this long (`None` = permanent).
    pub hard_timeout: Option<SimDuration>,
}

impl FlowRule {
    /// A permanent rule at default priority 100.
    pub fn new(fields: MatchFields, action: Action) -> Self {
        FlowRule {
            fields,
            action,
            priority: 100,
            idle_timeout: None,
            hard_timeout: None,
        }
    }

    /// Sets the priority.
    pub fn with_priority(mut self, priority: u16) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the idle timeout.
    pub fn with_idle_timeout(mut self, t: SimDuration) -> Self {
        self.idle_timeout = Some(t);
        self
    }

    /// Sets the hard timeout.
    pub fn with_hard_timeout(mut self, t: SimDuration) -> Self {
        self.hard_timeout = Some(t);
        self
    }
}

/// A rule installed in a table, with its counters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstalledRule {
    /// The rule itself.
    pub rule: FlowRule,
    /// Monotonic cookie assigned at install time (tie-break + identity).
    pub cookie: u64,
    /// When the rule was installed.
    pub installed_at: SimTime,
    /// When the rule last matched.
    pub last_matched: SimTime,
    /// Number of matches so far.
    pub matches: u64,
}

/// A per-switch flow table.
///
/// # Example
///
/// ```
/// use picloud_network::topology::{DeviceId, LinkId};
/// use picloud_sdn::flowtable::{Action, FlowKey, FlowRule, FlowTable, MatchFields};
/// use picloud_simcore::SimTime;
///
/// let mut table = FlowTable::new();
/// table.install(
///     FlowRule::new(MatchFields::to_dst(DeviceId(9)), Action::Forward(LinkId(3))),
///     SimTime::ZERO,
/// );
/// let action = table.lookup(FlowKey::pair(DeviceId(1), DeviceId(9)), SimTime::ZERO);
/// assert_eq!(action, Some(Action::Forward(LinkId(3))));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowTable {
    rules: Vec<InstalledRule>,
    next_cookie: u64,
    /// TCAM capacity; `None` = unbounded (the default model).
    capacity: Option<usize>,
    /// Rules evicted to make room (TCAM pressure indicator).
    evictions: u64,
}

impl FlowTable {
    /// Creates an empty, unbounded table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Creates a table bounded at `capacity` rules — a real switch's TCAM.
    /// When full, installing evicts the least-recently-matched rule
    /// (the common OpenFlow agent policy).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a TCAM needs at least one entry");
        FlowTable {
            capacity: Some(capacity),
            ..FlowTable::default()
        }
    }

    /// Rules evicted due to TCAM pressure so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Installs a rule, returning its cookie. On a full bounded table, the
    /// least-recently-matched rule is evicted first.
    pub fn install(&mut self, rule: FlowRule, now: SimTime) -> u64 {
        if let Some(cap) = self.capacity {
            // `cap > 0` makes the table non-empty whenever the loop guard
            // holds, but degrade to a plain insert rather than panicking
            // if that invariant is ever disturbed.
            while self.rules.len() >= cap {
                let Some(victim) = self
                    .rules
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, r)| (r.last_matched, r.cookie))
                    .map(|(i, _)| i)
                else {
                    break;
                };
                self.rules.remove(victim);
                self.evictions += 1;
            }
        }
        let cookie = self.next_cookie;
        self.next_cookie += 1;
        self.rules.push(InstalledRule {
            rule,
            cookie,
            installed_at: now,
            last_matched: now,
            matches: 0,
        });
        cookie
    }

    /// Looks up `key`, returning the winning action and updating counters.
    /// Expired rules are evicted first.
    pub fn lookup(&mut self, key: FlowKey, now: SimTime) -> Option<Action> {
        self.expire(now);
        let best = self
            .rules
            .iter_mut()
            .filter(|r| r.rule.fields.matches(key))
            .max_by(|a, b| {
                a.rule
                    .priority
                    .cmp(&b.rule.priority)
                    // Tie-break: earliest installed (lowest cookie) wins.
                    .then(b.cookie.cmp(&a.cookie))
            })?;
        best.matches += 1;
        best.last_matched = now;
        Some(best.rule.action)
    }

    /// Removes rules whose timeouts have elapsed at `now`.
    pub fn expire(&mut self, now: SimTime) {
        self.rules.retain(|r| {
            let hard_ok = r
                .rule
                .hard_timeout
                .is_none_or(|t| now.saturating_duration_since(r.installed_at) < t);
            let idle_ok = r
                .rule
                .idle_timeout
                .is_none_or(|t| now.saturating_duration_since(r.last_matched) < t);
            hard_ok && idle_ok
        });
    }

    /// Removes every rule for which `pred` returns true; returns how many
    /// were removed. This is the controller's `FLOW_MOD DELETE`.
    pub fn remove_where(&mut self, pred: impl Fn(&FlowRule) -> bool) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| !pred(&r.rule));
        before - self.rules.len()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates installed rules in cookie order.
    pub fn rules(&self) -> impl Iterator<Item = &InstalledRule> {
        self.rules.iter()
    }
}

impl fmt::Display for FlowTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow table ({} rules)", self.rules.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey::pair(DeviceId(1), DeviceId(2))
    }

    #[test]
    fn wildcard_and_exact_matching() {
        assert!(MatchFields::any().matches(key()));
        assert!(MatchFields::exact_pair(DeviceId(1), DeviceId(2)).matches(key()));
        assert!(!MatchFields::exact_pair(DeviceId(2), DeviceId(1)).matches(key()));
        assert!(MatchFields::to_dst(DeviceId(2)).matches(key()));
        assert!(!MatchFields::to_label(7).matches(key()), "no label on key");
        let labelled = FlowKey {
            label: Some(7),
            ..key()
        };
        assert!(MatchFields::to_label(7).matches(labelled));
    }

    #[test]
    fn higher_priority_wins() {
        let mut t = FlowTable::new();
        t.install(
            FlowRule::new(MatchFields::any(), Action::Drop).with_priority(1),
            SimTime::ZERO,
        );
        t.install(
            FlowRule::new(MatchFields::to_dst(DeviceId(2)), Action::Forward(LinkId(5)))
                .with_priority(200),
            SimTime::ZERO,
        );
        assert_eq!(
            t.lookup(key(), SimTime::ZERO),
            Some(Action::Forward(LinkId(5)))
        );
    }

    #[test]
    fn equal_priority_first_installed_wins() {
        let mut t = FlowTable::new();
        t.install(
            FlowRule::new(MatchFields::any(), Action::Forward(LinkId(1))),
            SimTime::ZERO,
        );
        t.install(
            FlowRule::new(MatchFields::any(), Action::Forward(LinkId(2))),
            SimTime::ZERO,
        );
        assert_eq!(
            t.lookup(key(), SimTime::ZERO),
            Some(Action::Forward(LinkId(1)))
        );
    }

    #[test]
    fn counters_update_on_match() {
        let mut t = FlowTable::new();
        t.install(
            FlowRule::new(MatchFields::any(), Action::Drop),
            SimTime::ZERO,
        );
        t.lookup(key(), SimTime::from_secs(5));
        t.lookup(key(), SimTime::from_secs(9));
        let r = t.rules().next().unwrap();
        assert_eq!(r.matches, 2);
        assert_eq!(r.last_matched, SimTime::from_secs(9));
    }

    #[test]
    fn hard_timeout_expires() {
        let mut t = FlowTable::new();
        t.install(
            FlowRule::new(MatchFields::any(), Action::Drop)
                .with_hard_timeout(SimDuration::from_secs(10)),
            SimTime::ZERO,
        );
        assert!(t.lookup(key(), SimTime::from_secs(9)).is_some());
        assert_eq!(t.lookup(key(), SimTime::from_secs(10)), None);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_refreshes_on_match() {
        let mut t = FlowTable::new();
        t.install(
            FlowRule::new(MatchFields::any(), Action::Drop)
                .with_idle_timeout(SimDuration::from_secs(10)),
            SimTime::ZERO,
        );
        // Keep it alive by matching at t=8, then it survives to t=17.
        assert!(t.lookup(key(), SimTime::from_secs(8)).is_some());
        assert!(t.lookup(key(), SimTime::from_secs(17)).is_some());
        // But 10 idle seconds after the last match it is gone.
        assert_eq!(t.lookup(key(), SimTime::from_secs(27)), None);
    }

    #[test]
    fn remove_where_counts() {
        let mut t = FlowTable::new();
        t.install(
            FlowRule::new(MatchFields::to_dst(DeviceId(1)), Action::Drop),
            SimTime::ZERO,
        );
        t.install(
            FlowRule::new(MatchFields::to_dst(DeviceId(2)), Action::Drop),
            SimTime::ZERO,
        );
        let removed = t.remove_where(|r| r.fields.dst == Some(DeviceId(1)));
        assert_eq!(removed, 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn bounded_table_evicts_lru() {
        let mut t = FlowTable::with_capacity(2);
        t.install(
            FlowRule::new(MatchFields::to_dst(DeviceId(1)), Action::Drop),
            SimTime::ZERO,
        );
        t.install(
            FlowRule::new(MatchFields::to_dst(DeviceId(2)), Action::Drop),
            SimTime::ZERO,
        );
        // Touch rule 1 so rule 2 is the LRU victim.
        t.lookup(
            FlowKey::pair(DeviceId(0), DeviceId(1)),
            SimTime::from_secs(1),
        );
        t.install(
            FlowRule::new(MatchFields::to_dst(DeviceId(3)), Action::Drop),
            SimTime::from_secs(2),
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.evictions(), 1);
        // Rule for dst 2 was evicted; 1 and 3 remain.
        assert!(t
            .lookup(
                FlowKey::pair(DeviceId(0), DeviceId(2)),
                SimTime::from_secs(2)
            )
            .is_none());
        assert!(t
            .lookup(
                FlowKey::pair(DeviceId(0), DeviceId(1)),
                SimTime::from_secs(2)
            )
            .is_some());
        assert!(t
            .lookup(
                FlowKey::pair(DeviceId(0), DeviceId(3)),
                SimTime::from_secs(2)
            )
            .is_some());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = FlowTable::with_capacity(0);
    }

    #[test]
    fn empty_table_misses() {
        let mut t = FlowTable::new();
        assert_eq!(t.lookup(key(), SimTime::ZERO), None);
        assert_eq!(t.to_string(), "flow table (0 rules)");
    }
}
