//! IP-less (flat-label) routing — the §III research direction.
//!
//! "We are researching IP-less routing in order to support more flexible
//! and efficient migration." The problem with IP routing in a DC is that an
//! address encodes location: when a container migrates, every exact-match
//! rule naming its address is wrong and must be flushed, and in-flight
//! connections break. With flat labels the fabric forwards on *identity*:
//! a migration only rewrites the label's next-hop on switches whose
//! next-hop actually changed.
//!
//! [`IplessFabric`] implements both addressing modes over the same switch
//! substrate so experiments can compare migration churn directly.

use crate::controller::{InstallMode, SdnController};
use picloud_network::graph;
use picloud_network::topology::{DeviceId, Topology};
use picloud_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A flat routing label: the identity of a service endpoint (in the
/// PiCloud, a container), independent of where it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Label(pub u64);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "label-{}", self.0)
    }
}

/// How endpoints are addressed on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddressingMode {
    /// Classic location-bound IP addressing.
    IpSubnet,
    /// Flat label routing (the research direction).
    FlatLabel,
}

impl fmt::Display for AddressingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressingMode::IpSubnet => write!(f, "IP subnet"),
            AddressingMode::FlatLabel => write!(f, "flat label"),
        }
    }
}

/// What one migration cost the control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationImpact {
    /// Rules removed or rewritten across the fabric.
    pub rules_touched: usize,
    /// Active flows whose connection state broke (IP mode only — labels
    /// keep connections alive across moves).
    pub flows_disrupted: usize,
    /// Control-plane time to converge.
    pub convergence_latency: SimDuration,
}

/// A fabric supporting both addressing modes, with per-label endpoints.
pub struct IplessFabric {
    mode: AddressingMode,
    controller: SdnController,
    /// Where each label currently lives.
    locations: BTreeMap<Label, DeviceId>,
    /// Label rules installed per switch: switch → label → outgoing link.
    label_rules: BTreeMap<DeviceId, BTreeMap<Label, picloud_network::topology::LinkId>>,
    /// Pairs routed in IP mode (src, label) — connection state that a
    /// migration would break.
    ip_sessions: Vec<(DeviceId, Label)>,
}

impl fmt::Debug for IplessFabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IplessFabric")
            .field("mode", &self.mode)
            .field("labels", &self.locations.len())
            .finish()
    }
}

impl IplessFabric {
    /// Creates a fabric over `topo` in the given addressing mode.
    pub fn new(topo: Topology, mode: AddressingMode) -> Self {
        IplessFabric {
            mode,
            controller: SdnController::new(topo, InstallMode::Reactive),
            locations: BTreeMap::new(),
            label_rules: BTreeMap::new(),
            ip_sessions: Vec::new(),
        }
    }

    /// The addressing mode.
    pub fn mode(&self) -> AddressingMode {
        self.mode
    }

    /// Registers (or re-registers) a label at a host.
    pub fn bind(&mut self, label: Label, host: DeviceId) {
        self.locations.insert(label, host);
    }

    /// Where a label currently lives.
    pub fn locate(&self, label: Label) -> Option<DeviceId> {
        self.locations.get(&label).copied()
    }

    /// Routes a session from `src` to `label`, installing whatever state
    /// the addressing mode requires. Returns the path length in links, or
    /// `None` when the label is unbound or the surviving fabric has no
    /// path — both conditions injected faults can create mid-experiment,
    /// so they must not panic the control plane.
    pub fn open_session(&mut self, src: DeviceId, label: Label) -> Option<usize> {
        let dst = self.locate(label)?;
        match self.mode {
            AddressingMode::IpSubnet => {
                let out = self.controller.try_route(src, dst)?;
                self.ip_sessions.push((src, label));
                Some(out.path.len())
            }
            AddressingMode::FlatLabel => {
                // Install/refresh label next-hops along the path.
                let topo = self.controller.topology();
                let path = graph::shortest_path(topo, src, dst)?;
                let mut cur = src;
                let mut hops = 0;
                let mut installs: Vec<(DeviceId, picloud_network::topology::LinkId)> = Vec::new();
                for &lid in &path {
                    let link = topo.link(lid);
                    let next = link.other_end(cur);
                    if topo.device(cur).kind.is_host() {
                        // hosts don't hold rules
                    } else {
                        installs.push((cur, lid));
                    }
                    cur = next;
                    hops += 1;
                }
                for (sw, lid) in installs {
                    self.label_rules.entry(sw).or_default().insert(label, lid);
                }
                Some(hops)
            }
        }
    }

    /// Rules currently held for `label` across the fabric (label mode).
    pub fn label_rule_count(&self, label: Label) -> usize {
        self.label_rules
            .values()
            .filter(|m| m.contains_key(&label))
            .count()
    }

    /// Migrates `label` to `new_host`, returning the control-plane churn,
    /// or `None` when the label was never bound (nothing to move).
    pub fn migrate(
        &mut self,
        label: Label,
        new_host: DeviceId,
        now: SimTime,
    ) -> Option<MigrationImpact> {
        let old_host = self.locate(label)?;
        self.locations.insert(label, new_host);
        if old_host == new_host {
            return Some(MigrationImpact {
                rules_touched: 0,
                flows_disrupted: 0,
                convergence_latency: SimDuration::ZERO,
            });
        }
        Some(match self.mode {
            AddressingMode::IpSubnet => {
                // Every rule naming the old address is stale; sessions break.
                self.controller.advance_to(now);
                let rules = self.controller.flush_rules_for_host(old_host);
                let disrupted = self.ip_sessions.iter().filter(|(_, l)| *l == label).count();
                self.ip_sessions.retain(|(_, l)| *l != label);
                MigrationImpact {
                    rules_touched: rules,
                    flows_disrupted: disrupted,
                    // Flush + endpoint renumbering + ARP/DNS reconvergence.
                    convergence_latency: SimDuration::from_millis(500),
                }
            }
            AddressingMode::FlatLabel => {
                // Rewrite the label's next-hop only where it changed.
                let topo = self.controller.topology();
                let mut touched = 0;
                for (&sw, rules) in &mut self.label_rules {
                    let Some(current) = rules.get(&label).copied() else {
                        continue;
                    };
                    let Some(new_path) = graph::shortest_path(topo, sw, new_host) else {
                        continue;
                    };
                    let Some(&new_first) = new_path.first() else {
                        continue;
                    };
                    if new_first != current {
                        rules.insert(label, new_first);
                        touched += 1;
                    }
                }
                MigrationImpact {
                    rules_touched: touched,
                    flows_disrupted: 0,
                    // One controller update round.
                    convergence_latency: SimDuration::from_millis(5),
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(mode: AddressingMode) -> (IplessFabric, Vec<DeviceId>) {
        let topo = Topology::multi_root_tree(4, 14, 2);
        let hosts: Vec<DeviceId> = topo.hosts().map(|h| h.id).collect();
        (IplessFabric::new(topo, mode), hosts)
    }

    #[test]
    fn label_migration_touches_fewer_rules_than_ip() {
        let run = |mode| {
            let (mut f, hosts) = fabric(mode);
            let label = Label(1);
            f.bind(label, hosts[55]);
            // Ten clients talk to the label.
            for host in hosts.iter().take(10) {
                f.open_session(*host, label).unwrap();
            }
            // Migrate to a host in another rack.
            f.migrate(label, hosts[14], SimTime::from_secs(1)).unwrap()
        };
        let ip = run(AddressingMode::IpSubnet);
        let lbl = run(AddressingMode::FlatLabel);
        assert!(
            lbl.rules_touched < ip.rules_touched,
            "labels {} vs ip {}",
            lbl.rules_touched,
            ip.rules_touched
        );
        assert_eq!(lbl.flows_disrupted, 0);
        assert!(ip.flows_disrupted > 0, "IP sessions break on migration");
        assert!(lbl.convergence_latency < ip.convergence_latency);
    }

    #[test]
    fn label_sessions_survive_and_reroute() {
        let (mut f, hosts) = fabric(AddressingMode::FlatLabel);
        let label = Label(9);
        f.bind(label, hosts[55]);
        f.open_session(hosts[0], label).unwrap();
        let rules_before = f.label_rule_count(label);
        assert!(rules_before > 0);
        let impact = f.migrate(label, hosts[20], SimTime::from_secs(1)).unwrap();
        assert!(impact.rules_touched <= rules_before);
        assert_eq!(f.locate(label), Some(hosts[20]));
        // A session opened after migration routes to the new host.
        let hops = f.open_session(hosts[0], label).unwrap();
        assert!(hops > 0);
    }

    #[test]
    fn same_host_migration_is_free() {
        let (mut f, hosts) = fabric(AddressingMode::FlatLabel);
        let label = Label(3);
        f.bind(label, hosts[7]);
        let impact = f.migrate(label, hosts[7], SimTime::ZERO).unwrap();
        assert_eq!(impact.rules_touched, 0);
        assert_eq!(impact.convergence_latency, SimDuration::ZERO);
    }

    #[test]
    fn intra_rack_label_migration_touches_only_divergent_switches() {
        let (mut f, hosts) = fabric(AddressingMode::FlatLabel);
        let label = Label(4);
        // hosts[14] and hosts[15] are both in rack 1.
        f.bind(label, hosts[14]);
        f.open_session(hosts[0], label).unwrap(); // cross-rack session
        let impact = f.migrate(label, hosts[15], SimTime::ZERO).unwrap();
        // Only the destination ToR's next hop changes (agg switches still
        // forward to the same ToR).
        assert_eq!(impact.rules_touched, 1, "{impact:?}");
    }

    #[test]
    fn unbound_label_is_reported_not_panicked() {
        let (mut f, hosts) = fabric(AddressingMode::FlatLabel);
        assert_eq!(f.open_session(hosts[0], Label(42)), None);
        assert_eq!(f.migrate(Label(42), hosts[1], SimTime::ZERO), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Label(2).to_string(), "label-2");
        assert_eq!(AddressingMode::FlatLabel.to_string(), "flat label");
        let (f, _) = fabric(AddressingMode::IpSubnet);
        assert!(format!("{f:?}").contains("IplessFabric"));
    }
}
