//! The logically centralised SDN controller.
//!
//! §II-A: "SDN is a fairly recent concept of logically centralising the
//! network's control plane so that network-wide management can be
//! programmed in software and subsequently enforced through the
//! centrally-controlled installation of rules on the switches along the
//! path." [`SdnController`] owns a global view of the topology and one
//! [`OpenFlowSwitch`] per fabric device, and supports both installation
//! disciplines (the DESIGN.md §4 ablation):
//!
//! * **Reactive** — first packet of a pair misses, punts to the controller,
//!   which installs exact-match rules with an idle timeout along the path.
//!   First flows pay a control-plane round trip.
//! * **Proactive** — destination-based rules are preinstalled on every
//!   switch; no flow ever pays setup latency, at the cost of
//!   `switches × hosts` table entries.

use crate::flowtable::{Action, FlowKey, FlowRule, MatchFields};
use crate::switch::OpenFlowSwitch;
use picloud_network::graph;
use picloud_network::topology::{DeviceId, LinkId, Topology};
use picloud_simcore::telemetry::{MetricsRegistry, Tracer};
use picloud_simcore::{SimDuration, SimTime, SpanContext};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Rule-installation discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstallMode {
    /// Install exact-match rules on table miss.
    Reactive,
    /// Preinstall destination rules for every host at construction.
    Proactive,
}

impl fmt::Display for InstallMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallMode::Reactive => write!(f, "reactive"),
            InstallMode::Proactive => write!(f, "proactive"),
        }
    }
}

/// Result of routing one flow through the SDN fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteOutcome {
    /// The links the flow follows.
    pub path: Vec<LinkId>,
    /// Control-plane latency charged to the first packet.
    pub setup_latency: SimDuration,
    /// Rules newly installed for this flow.
    pub rules_installed: usize,
    /// Whether every switch already had a matching rule.
    pub cache_hit: bool,
}

/// The centralised controller plus its switches.
#[derive(Debug, Clone)]
pub struct SdnController {
    topo: Topology,
    switches: BTreeMap<DeviceId, OpenFlowSwitch>,
    mode: InstallMode,
    now: SimTime,
    /// One switch→controller→switch round trip.
    control_rtt: SimDuration,
    /// Time to program one rule into a switch.
    rule_install_time: SimDuration,
    /// Idle timeout applied to reactive rules.
    reactive_idle_timeout: SimDuration,
    total_rule_installs: u64,
    /// Links the controller knows to be down.
    dead_links: std::collections::BTreeSet<LinkId>,
}

impl SdnController {
    /// Creates a controller over `topo`. In proactive mode, destination
    /// rules are installed immediately for every host.
    pub fn new(topo: Topology, mode: InstallMode) -> Self {
        let switches: BTreeMap<DeviceId, OpenFlowSwitch> = topo
            .devices()
            .iter()
            .filter(|d| !d.kind.is_host())
            .map(|d| (d.id, OpenFlowSwitch::new(d.id)))
            .collect();
        let mut ctrl = SdnController {
            topo,
            switches,
            mode,
            now: SimTime::ZERO,
            control_rtt: SimDuration::from_millis(2),
            rule_install_time: SimDuration::from_micros(500),
            reactive_idle_timeout: SimDuration::from_secs(30),
            total_rule_installs: 0,
            dead_links: std::collections::BTreeSet::new(),
        };
        if mode == InstallMode::Proactive {
            ctrl.preinstall_all();
        }
        ctrl
    }

    /// The topology under control.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The installation discipline.
    pub fn mode(&self) -> InstallMode {
        self.mode
    }

    /// Current control-plane clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the control-plane clock (expiring idle rules on lookup).
    ///
    /// # Panics
    ///
    /// Panics if `to` is in the past.
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(to >= self.now, "controller clock cannot rewind");
        self.now = to;
    }

    /// Rules currently installed across all switches.
    pub fn total_rules(&self) -> usize {
        self.switches.values().map(|s| s.table().len()).sum()
    }

    /// Rules installed over the controller's lifetime (including expired
    /// and replaced ones).
    pub fn lifetime_rule_installs(&self) -> u64 {
        self.total_rule_installs
    }

    /// The switch at `device`, if that device is a switch.
    pub fn switch(&self, device: DeviceId) -> Option<&OpenFlowSwitch> {
        self.switches.get(&device)
    }

    /// Marks a link failed: rules forwarding over it are flushed fabric-
    /// wide and subsequent routes avoid it. Returns the rules flushed —
    /// the recovery churn.
    pub fn handle_link_failure(&mut self, link: LinkId) -> usize {
        self.dead_links.insert(link);
        self.switches
            .values_mut()
            .map(|sw| {
                sw.remove_where(
                    |r| matches!(r.action, crate::flowtable::Action::Forward(l) if l == link),
                )
            })
            .sum()
    }

    /// Repairs a previously failed link; existing rules are untouched (the
    /// controller re-optimises lazily as flows arrive).
    pub fn handle_link_repair(&mut self, link: LinkId) {
        self.dead_links.remove(&link);
    }

    /// Links currently considered failed.
    pub fn dead_link_count(&self) -> usize {
        self.dead_links.len()
    }

    /// Records the control plane's telemetry into `reg` at the
    /// controller's current instant: per-switch flow-table occupancy
    /// (`sdn_flowtable_rules{device}`), eviction and miss/hit counts
    /// (misses are exactly the reactive controller round-trips), plus
    /// cluster-wide totals for installed rules, lifetime installs and
    /// links known dead.
    pub fn record_telemetry(&self, reg: &mut MetricsRegistry) {
        let now = self.now;
        for (dev, sw) in &self.switches {
            let id = dev.0.to_string();
            let labels = [("device", id.as_str())];
            reg.gauge("sdn_flowtable_rules", &labels)
                .set(now, sw.table().len() as f64);
            reg.gauge("sdn_flowtable_evictions", &labels)
                .set(now, sw.table().evictions() as f64);
            let miss = reg.counter("sdn_controller_round_trips_total", &labels);
            miss.add(sw.misses() - miss.value());
            let hits = reg.counter("sdn_switch_hits_total", &labels);
            hits.add(sw.hits() - hits.value());
        }
        reg.gauge("sdn_total_rules", &[])
            .set(now, self.total_rules() as f64);
        reg.gauge("sdn_dead_links", &[])
            .set(now, self.dead_link_count() as f64);
        let installs = reg.counter("sdn_rule_installs_total", &[]);
        installs.add(self.total_rule_installs - installs.value());
    }

    /// Routes one flow from `src` to `dst`, installing rules as the mode
    /// dictates. Failed links are avoided.
    ///
    /// # Panics
    ///
    /// Panics if no surviving path exists — partitioned fabrics must be
    /// checked with [`SdnController::try_route`].
    pub fn route(&mut self, src: DeviceId, dst: DeviceId) -> RouteOutcome {
        self.try_route(src, dst)
            // lint: allow(P1) reason=the controller builds its fabric connected; a partitioned fabric is a construction bug
            .expect("SDN fabric must be connected")
    }

    /// Routes a same-instant burst of flows, returning one outcome per
    /// pair in input order. Repeated `(src, dst)` pairs within the burst
    /// reuse the path computed for their first occurrence instead of
    /// re-running the graph search — the flow-table walk still happens,
    /// so switch hit/miss counters and rule state match a sequence of
    /// [`SdnController::route`] calls exactly (path selection is
    /// deterministic, so the reused path is the one the search would
    /// have found). Drivers that feed the flow fabric should route a
    /// whole burst here and then inject it in one
    /// `FlowSimulator::inject_batch` call: the batch dirties one region
    /// per topology partition and the partitioned solver handles those
    /// regions concurrently.
    ///
    /// # Panics
    ///
    /// Panics if any pair has no surviving path — partitioned fabrics
    /// must be probed pair-by-pair with [`SdnController::try_route`].
    pub fn route_batch(&mut self, pairs: &[(DeviceId, DeviceId)]) -> Vec<RouteOutcome> {
        let mut seen_paths: BTreeMap<(DeviceId, DeviceId), Vec<LinkId>> = BTreeMap::new();
        pairs
            .iter()
            .map(|&(src, dst)| {
                if let Some(path) = seen_paths.get(&(src, dst)) {
                    return self.route_on_path(src, dst, path.clone());
                }
                let out = self.route(src, dst);
                seen_paths.insert((src, dst), out.path.clone());
                out
            })
            .collect()
    }

    /// [`SdnController::try_route`], additionally recording the route as
    /// an `sdn_route` span under `parent`. A table miss gets the
    /// control-plane round trip as children: `packet_in` (punt to the
    /// controller, one RTT) followed by `flow_mod` (programming the
    /// missed switches), so the span's extent is exactly the
    /// `setup_latency` charged to the first packet. A cache hit closes
    /// immediately with no children. With a disabled `tracer` this is
    /// [`SdnController::try_route`] — nothing records, nothing allocates.
    pub fn route_traced(
        &mut self,
        src: DeviceId,
        dst: DeviceId,
        tracer: &mut Tracer,
        parent: SpanContext,
    ) -> Option<RouteOutcome> {
        let now = self.now;
        let span = tracer.span_start(now, "sdn_route", parent.span(), |e| {
            e.u64("src", u64::from(src.0)).u64("dst", u64::from(dst.0));
        });
        let out = self.try_route(src, dst);
        match &out {
            None => tracer.span_end(now, span, |e| {
                e.bool("ok", false);
            }),
            Some(o) => {
                if !o.cache_hit {
                    let punt = tracer.span_start(now, "packet_in", span, |_| {});
                    tracer.span_end(now + self.control_rtt, punt, |_| {});
                    let program =
                        tracer.span_start(now + self.control_rtt, "flow_mod", span, |e| {
                            e.u64("rules", o.rules_installed as u64);
                        });
                    tracer.span_end(
                        now + self.control_rtt + self.rule_install_time,
                        program,
                        |_| {},
                    );
                }
                tracer.span_end(now + o.setup_latency, span, |e| {
                    e.bool("cache_hit", o.cache_hit)
                        .u64("hops", o.path.len() as u64);
                });
            }
        }
        out
    }

    /// Routes one flow, returning `None` if the surviving fabric has no
    /// path.
    pub fn try_route(&mut self, src: DeviceId, dst: DeviceId) -> Option<RouteOutcome> {
        let path = if self.dead_links.is_empty() {
            graph::shortest_path(&self.topo, src, dst)?
        } else {
            graph::shortest_path_avoiding(&self.topo, src, dst, &self.dead_links)?
        };
        Some(self.route_on_path(src, dst, path))
    }

    fn route_on_path(&mut self, src: DeviceId, dst: DeviceId, path: Vec<LinkId>) -> RouteOutcome {
        let key = FlowKey::pair(src, dst);
        let mut missed_switches: Vec<(DeviceId, LinkId)> = Vec::new();
        let mut cur = src;
        for &lid in &path {
            let link = self.topo.link(lid);
            let next = link.other_end(cur);
            // The *current* device forwards over `lid`; hosts do not
            // classify, switches do.
            if let Some(sw) = self.switches.get_mut(&cur) {
                match sw.classify(key, self.now) {
                    Some(Action::Forward(l)) if l == lid => {}
                    Some(Action::Forward(_)) | Some(Action::Drop) | None => {
                        // Miss (or stale rule pointing elsewhere): the
                        // controller will (re)program this switch.
                        missed_switches.push((cur, lid));
                    }
                    Some(Action::SendToController) => missed_switches.push((cur, lid)),
                }
            }
            cur = next;
        }
        if missed_switches.is_empty() {
            return RouteOutcome {
                path,
                setup_latency: SimDuration::ZERO,
                rules_installed: 0,
                cache_hit: true,
            };
        }
        // One punt reaches the controller; it programs all missing switches
        // (in parallel), so latency is one RTT plus one install time.
        let installed = missed_switches.len();
        for (sw_id, out_link) in missed_switches {
            let rule = match self.mode {
                InstallMode::Reactive => {
                    FlowRule::new(MatchFields::exact_pair(src, dst), Action::Forward(out_link))
                        .with_idle_timeout(self.reactive_idle_timeout)
                }
                InstallMode::Proactive => {
                    FlowRule::new(MatchFields::to_dst(dst), Action::Forward(out_link))
                }
            };
            // The id came off this map a moment ago, but a fault handler
            // running between classify and install must degrade to a
            // skipped programming step, not a control-plane panic.
            if let Some(sw) = self.switches.get_mut(&sw_id) {
                sw.install(rule, self.now);
                self.total_rule_installs += 1;
            }
        }
        RouteOutcome {
            path,
            setup_latency: self.control_rtt + self.rule_install_time,
            rules_installed: installed,
            cache_hit: false,
        }
    }

    /// Preinstalls a destination rule for every host on every switch (the
    /// proactive discipline).
    fn preinstall_all(&mut self) {
        let hosts: Vec<DeviceId> = self.topo.hosts().map(|h| h.id).collect();
        let switch_ids: Vec<DeviceId> = self.switches.keys().copied().collect();
        for &sw in &switch_ids {
            for &dst in &hosts {
                let Some(path) = graph::shortest_path(&self.topo, sw, dst) else {
                    continue;
                };
                let Some(&first) = path.first() else {
                    continue;
                };
                if let Some(sw) = self.switches.get_mut(&sw) {
                    sw.install(
                        FlowRule::new(MatchFields::to_dst(dst), Action::Forward(first)),
                        self.now,
                    );
                    self.total_rule_installs += 1;
                }
            }
        }
    }

    /// Flushes every rule that names `host` (source or destination) — what
    /// an IP-addressed fabric must do when that endpoint moves. Returns the
    /// number of rules removed.
    pub fn flush_rules_for_host(&mut self, host: DeviceId) -> usize {
        self.switches
            .values_mut()
            .map(|sw| sw.remove_where(|r| r.fields.src == Some(host) || r.fields.dst == Some(host)))
            .sum()
    }
}

impl fmt::Display for SdnController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SDN controller ({} mode, {} switches, {} rules)",
            self.mode,
            self.switches.len(),
            self.total_rules()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_fabric() -> (Topology, Vec<DeviceId>) {
        let topo = Topology::multi_root_tree(4, 14, 2);
        let hosts = topo.hosts().map(|h| h.id).collect();
        (topo, hosts)
    }

    #[test]
    fn reactive_first_flow_pays_setup_second_is_free() {
        let (topo, hosts) = paper_fabric();
        let mut ctrl = SdnController::new(topo, InstallMode::Reactive);
        let first = ctrl.route(hosts[0], hosts[55]);
        assert!(!first.cache_hit);
        assert!(first.setup_latency > SimDuration::ZERO);
        // Host-ToR-Agg-ToR-Host: 3 switches program rules.
        assert_eq!(first.rules_installed, 3);
        let second = ctrl.route(hosts[0], hosts[55]);
        assert!(second.cache_hit);
        assert_eq!(second.setup_latency, SimDuration::ZERO);
        assert_eq!(second.rules_installed, 0);
        assert_eq!(first.path, second.path);
    }

    #[test]
    fn route_batch_matches_sequential_routes() {
        let (topo, hosts) = paper_fabric();
        let pairs = [
            (hosts[0], hosts[55]),
            (hosts[0], hosts[55]), // duplicate in-burst: packet-in suppressed
            (hosts[3], hosts[20]),
            (hosts[55], hosts[0]), // reverse direction is a distinct flow
        ];
        let mut batched =
            SdnController::new(Topology::multi_root_tree(4, 14, 2), InstallMode::Reactive);
        let outs = batched.route_batch(&pairs);
        let mut sequential = SdnController::new(topo, InstallMode::Reactive);
        let expected: Vec<RouteOutcome> =
            pairs.iter().map(|&(s, d)| sequential.route(s, d)).collect();
        assert_eq!(outs, expected);
        assert!(outs[1].cache_hit, "in-burst repeat must be a table hit");
        assert_eq!(outs[1].rules_installed, 0);
        assert_eq!(batched.total_rules(), sequential.total_rules());
    }

    #[test]
    fn proactive_has_no_setup_but_many_rules() {
        let (topo, hosts) = paper_fabric();
        let mut ctrl = SdnController::new(topo, InstallMode::Proactive);
        // 7 switches (4 ToR + 2 agg + 1 gateway... gateway is a switch-kind
        // device too) each hold one rule per host.
        let switches = ctrl
            .topology()
            .devices()
            .iter()
            .filter(|d| !d.kind.is_host())
            .count();
        assert_eq!(ctrl.total_rules(), switches * 56);
        let out = ctrl.route(hosts[3], hosts[40]);
        assert!(out.cache_hit);
        assert_eq!(out.setup_latency, SimDuration::ZERO);
    }

    #[test]
    fn reactive_rules_expire_when_idle() {
        let (topo, hosts) = paper_fabric();
        let mut ctrl = SdnController::new(topo, InstallMode::Reactive);
        ctrl.route(hosts[0], hosts[1]);
        assert!(ctrl.total_rules() > 0);
        ctrl.advance_to(SimTime::from_secs(60));
        // A later flow of the same pair misses again (rules idled out).
        let again = ctrl.route(hosts[0], hosts[1]);
        assert!(!again.cache_hit);
    }

    #[test]
    fn reverse_direction_needs_its_own_rules() {
        let (topo, hosts) = paper_fabric();
        let mut ctrl = SdnController::new(topo, InstallMode::Reactive);
        ctrl.route(hosts[0], hosts[55]);
        let back = ctrl.route(hosts[55], hosts[0]);
        assert!(!back.cache_hit, "exact-match rules are unidirectional");
    }

    #[test]
    fn flush_rules_for_host_empties_pair_state() {
        let (topo, hosts) = paper_fabric();
        let mut ctrl = SdnController::new(topo, InstallMode::Reactive);
        ctrl.route(hosts[0], hosts[55]);
        ctrl.route(hosts[1], hosts[55]);
        let before = ctrl.total_rules();
        let removed = ctrl.flush_rules_for_host(hosts[55]);
        assert_eq!(removed, before, "all rules named hosts[55]");
        assert_eq!(ctrl.total_rules(), 0);
    }

    #[test]
    fn lifetime_counter_is_monotonic() {
        let (topo, hosts) = paper_fabric();
        let mut ctrl = SdnController::new(topo, InstallMode::Reactive);
        ctrl.route(hosts[0], hosts[2]);
        let after_one = ctrl.lifetime_rule_installs();
        ctrl.route(hosts[0], hosts[3]);
        assert!(ctrl.lifetime_rule_installs() > after_one);
    }

    #[test]
    fn intra_rack_flow_programs_only_the_tor() {
        let (topo, hosts) = paper_fabric();
        let mut ctrl = SdnController::new(topo, InstallMode::Reactive);
        // hosts[0] and hosts[1] share rack 0.
        let out = ctrl.route(hosts[0], hosts[1]);
        assert_eq!(out.rules_installed, 1, "only the ToR is on the path");
        assert_eq!(out.path.len(), 2);
    }

    #[test]
    fn link_failure_flushes_and_reroutes() {
        let (topo, hosts) = paper_fabric();
        let mut ctrl = SdnController::new(topo, InstallMode::Reactive);
        let first = ctrl.route(hosts[0], hosts[55]);
        // Fail the aggregation-side link the flow used (the 2nd hop).
        let failed_link = first.path[1];
        let flushed = ctrl.handle_link_failure(failed_link);
        assert!(flushed >= 1, "rules over the dead link are flushed");
        assert_eq!(ctrl.dead_link_count(), 1);
        // The reroute avoids the dead link and reaches the destination.
        let second = ctrl.route(hosts[0], hosts[55]);
        assert!(!second.path.contains(&failed_link));
        assert!(!second.cache_hit, "flushed rules must be reinstalled");
        // Repair and the original path becomes available again.
        ctrl.handle_link_repair(failed_link);
        assert_eq!(ctrl.dead_link_count(), 0);
    }

    #[test]
    fn partition_is_reported_not_panicked() {
        let (topo, hosts) = paper_fabric();
        let mut ctrl = SdnController::new(topo, InstallMode::Reactive);
        // Cut the destination host's only access link.
        let access = ctrl.topology().neighbours(hosts[55])[0].1;
        ctrl.handle_link_failure(access);
        assert!(ctrl.try_route(hosts[0], hosts[55]).is_none());
        // Other destinations still route.
        assert!(ctrl.try_route(hosts[0], hosts[54]).is_some());
    }

    #[test]
    fn proactive_survives_single_uplink_loss() {
        let (topo, hosts) = paper_fabric();
        let mut ctrl = SdnController::new(topo, InstallMode::Proactive);
        let first = ctrl.route(hosts[0], hosts[55]);
        let flushed = ctrl.handle_link_failure(first.path[1]);
        assert!(flushed > 0, "preinstalled rules over the link are flushed");
        let second = ctrl.route(hosts[0], hosts[55]);
        assert!(!second.path.contains(&first.path[1]));
    }

    #[test]
    fn traced_route_records_the_control_round_trip() {
        use picloud_simcore::SpanForest;

        let (topo, hosts) = paper_fabric();
        let mut ctrl = SdnController::new(topo, InstallMode::Reactive);
        let mut tracer = Tracer::unbounded();
        let first = ctrl
            .route_traced(hosts[0], hosts[55], &mut tracer, SpanContext::NONE)
            .unwrap();
        let second = ctrl
            .route_traced(hosts[0], hosts[55], &mut tracer, SpanContext::NONE)
            .unwrap();
        assert!(!first.cache_hit && second.cache_hit);

        let forest = SpanForest::from_tracer(&tracer);
        let roots: Vec<_> = forest.roots_named("sdn_route").collect();
        assert_eq!(roots.len(), 2);
        // The miss's span covers exactly the setup latency, with the
        // packet-in → flow-mod round trip inside it.
        assert_eq!(roots[0].duration(), first.setup_latency);
        let kids: Vec<&str> = forest
            .children(roots[0].id)
            .iter()
            .map(|&c| forest.get(c).unwrap().name.as_str())
            .collect();
        assert_eq!(kids, ["packet_in", "flow_mod"]);
        // The hit is free and childless.
        assert_eq!(roots[1].duration(), SimDuration::ZERO);
        assert!(forest.children(roots[1].id).is_empty());

        // Disabled tracer: identical outcome, nothing recorded.
        let (topo2, _) = paper_fabric();
        let mut ctrl2 = SdnController::new(topo2, InstallMode::Reactive);
        let mut off = Tracer::disabled();
        let replay = ctrl2
            .route_traced(hosts[0], hosts[55], &mut off, SpanContext::NONE)
            .unwrap();
        assert_eq!(replay, first);
        assert_eq!(off.emitted(), 0);
    }

    #[test]
    fn display_mentions_mode() {
        let (topo, _) = paper_fabric();
        let ctrl = SdnController::new(topo, InstallMode::Reactive);
        assert!(ctrl.to_string().contains("reactive"));
    }
}
