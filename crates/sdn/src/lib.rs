//! An OpenFlow-style SDN control plane for the PiCloud fabric.
//!
//! The paper's aggregation layer is OpenFlow-enabled precisely so that "the
//! topology \[is\] fully programmable and compatible with the leading-edge
//! Software Defined Networking (SDN) research": a logically centralised
//! controller computes network-wide policy and enforces it by installing
//! rules on the switches along each path. This crate models that stack:
//!
//! * [`flowtable`] — match fields, actions, prioritised flow rules with
//!   idle/hard timeouts, and the per-switch flow table.
//! * [`switch`] — an OpenFlow switch: table lookup, table-miss to
//!   controller, rule counters.
//! * [`controller`] — the centralised controller: global topology view,
//!   reactive (install-on-miss) and proactive (preinstall) modes, and the
//!   path-setup latency model.
//! * [`ipless`] — the §III research direction: flat-label routing where a
//!   migration only retargets the label, versus IP routing where a
//!   migration invalidates every rule that names the moved endpoint.
//!
//! # Example
//!
//! ```
//! use picloud_network::topology::Topology;
//! use picloud_sdn::controller::{InstallMode, SdnController};
//!
//! let topo = Topology::multi_root_tree(4, 14, 2);
//! let hosts: Vec<_> = topo.hosts().map(|h| h.id).collect();
//! let mut ctrl = SdnController::new(topo, InstallMode::Reactive);
//! let first = ctrl.route(hosts[0], hosts[55]);
//! let second = ctrl.route(hosts[0], hosts[55]);
//! assert!(first.setup_latency > second.setup_latency, "second flow hits cached rules");
//! ```

pub mod controller;
pub mod flowtable;
pub mod ipless;
pub mod switch;

pub use controller::{InstallMode, RouteOutcome, SdnController};
pub use flowtable::{Action, FlowRule, FlowTable, MatchFields};
pub use ipless::{AddressingMode, IplessFabric, Label};
pub use switch::OpenFlowSwitch;
