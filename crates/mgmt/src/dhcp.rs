//! DHCP leasing and DNS naming.
//!
//! §II-A: "A system administrator can implement customised IP and naming
//! policies through DHCP and DNS services running on the pimaster." The
//! default policy mirrors the testbed's layout: nodes get addresses in
//! `10.0.<rack>.0/24` and names `pi-<rack>-<slot>`; bridged containers
//! lease from the same rack subnet and get `<name>.<node>.picloud` names.

use picloud_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An IPv4 address (the testbed is IPv4-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IpAddr4(pub [u8; 4]);

impl IpAddr4 {
    /// The rack-subnet address `10.0.rack.host`.
    pub fn rack_host(rack: u8, host: u8) -> Self {
        IpAddr4([10, 0, rack, host])
    }
}

impl fmt::Display for IpAddr4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.0;
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// A client identity as DHCP sees it (a MAC stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client-{:012x}", self.0)
    }
}

/// A granted lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lease {
    /// Address granted.
    pub addr: IpAddr4,
    /// When the lease expires.
    pub expires: SimTime,
}

/// Errors from the DHCP server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhcpError {
    /// The rack's address pool is exhausted.
    PoolExhausted {
        /// The rack whose pool ran dry.
        rack: u8,
    },
}

impl fmt::Display for DhcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DhcpError::PoolExhausted { rack } => {
                write!(f, "DHCP pool for rack {rack} is exhausted")
            }
        }
    }
}

impl std::error::Error for DhcpError {}

/// A per-rack-subnet DHCP server.
///
/// # Example
///
/// ```
/// use picloud_mgmt::dhcp::{ClientId, DhcpServer};
/// use picloud_simcore::SimTime;
///
/// let mut dhcp = DhcpServer::new();
/// let lease = dhcp.request(ClientId(1), 0, SimTime::ZERO)?;
/// assert_eq!(lease.addr.to_string(), "10.0.0.2");
/// # Ok::<(), picloud_mgmt::dhcp::DhcpError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DhcpServer {
    /// Active leases by client.
    leases: BTreeMap<ClientId, (u8, Lease)>,
    /// Next host octet to try per rack (2..=254; .1 is the gateway).
    next_host: BTreeMap<u8, u8>,
    /// Lease lifetime.
    lease_time: SimDuration,
}

impl Default for DhcpServer {
    /// Same as [`DhcpServer::new`]. A derived default would zero the lease
    /// time, making every lease expire the instant it is granted.
    fn default() -> Self {
        DhcpServer::new()
    }
}

impl DhcpServer {
    /// Creates a server with the default 1-hour lease time.
    pub fn new() -> Self {
        DhcpServer {
            leases: BTreeMap::new(),
            next_host: BTreeMap::new(),
            lease_time: SimDuration::from_secs(3600),
        }
    }

    /// Requests (or renews) a lease for `client` on `rack`'s subnet.
    ///
    /// Renewal returns the same address with a refreshed expiry, matching
    /// DHCP's address-stability guarantee.
    ///
    /// # Errors
    ///
    /// [`DhcpError::PoolExhausted`] when the /24 has no free host address.
    pub fn request(
        &mut self,
        client: ClientId,
        rack: u8,
        now: SimTime,
    ) -> Result<Lease, DhcpError> {
        self.expire(now);
        if let Some((r, lease)) = self.leases.get(&client).copied() {
            if r == rack {
                let renewed = Lease {
                    addr: lease.addr,
                    expires: now.saturating_add(self.lease_time),
                };
                self.leases.insert(client, (rack, renewed));
                return Ok(renewed);
            }
            // Moved racks: release the old lease and fall through.
            self.leases.remove(&client);
        }
        let in_use: Vec<u8> = self
            .leases
            .values()
            .filter(|(r, _)| *r == rack)
            // lint: allow(P1) reason=Ipv4-style address is a fixed [u8; 4] array; index 3 always exists
            .map(|(_, l)| l.addr.0[3])
            .collect();
        let start = self.next_host.get(&rack).copied().unwrap_or(2);
        // Scan the pool starting from the cursor, wrapping once.
        let candidate = (0..253u16).map(|i| 2 + ((u16::from(start) - 2 + i) % 253) as u8);
        for host in candidate {
            if !in_use.contains(&host) {
                let lease = Lease {
                    addr: IpAddr4::rack_host(rack, host),
                    expires: now.saturating_add(self.lease_time),
                };
                self.leases.insert(client, (rack, lease));
                self.next_host.insert(rack, host.wrapping_add(1).max(2));
                return Ok(lease);
            }
        }
        Err(DhcpError::PoolExhausted { rack })
    }

    /// Releases a client's lease (graceful shutdown).
    pub fn release(&mut self, client: ClientId) -> bool {
        self.leases.remove(&client).is_some()
    }

    /// Drops expired leases.
    pub fn expire(&mut self, now: SimTime) {
        self.leases.retain(|_, (_, l)| l.expires > now);
    }

    /// Active lease count.
    pub fn active_leases(&self) -> usize {
        self.leases.len()
    }

    /// The current lease for `client`, if any.
    pub fn lease_of(&self, client: ClientId) -> Option<Lease> {
        self.leases.get(&client).map(|(_, l)| *l)
    }
}

/// The pimaster's DNS: names to addresses under `.picloud`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DnsService {
    records: BTreeMap<String, IpAddr4>,
}

impl DnsService {
    /// Creates an empty zone.
    pub fn new() -> Self {
        DnsService::default()
    }

    /// The testbed's node naming policy.
    pub fn node_name(rack: u16, slot: u16) -> String {
        format!("pi-{rack}-{slot}.picloud")
    }

    /// The container naming policy.
    pub fn container_name(container: &str, node_name: &str) -> String {
        let base = node_name.strip_suffix(".picloud").unwrap_or(node_name);
        format!("{container}.{base}.picloud")
    }

    /// Registers (or replaces) a record, returning any previous address.
    pub fn register(&mut self, name: impl Into<String>, addr: IpAddr4) -> Option<IpAddr4> {
        self.records.insert(name.into(), addr)
    }

    /// Removes a record.
    pub fn unregister(&mut self, name: &str) -> Option<IpAddr4> {
        self.records.remove(name)
    }

    /// Resolves a name.
    pub fn resolve(&self, name: &str) -> Option<IpAddr4> {
        self.records.get(name).copied()
    }

    /// Number of records in the zone.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the zone is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_are_stable_per_client() {
        let mut dhcp = DhcpServer::new();
        let l1 = dhcp.request(ClientId(1), 0, SimTime::ZERO).unwrap();
        let l2 = dhcp
            .request(ClientId(1), 0, SimTime::from_secs(10))
            .unwrap();
        assert_eq!(l1.addr, l2.addr, "renewal keeps the address");
        assert!(l2.expires > l1.expires);
        assert_eq!(dhcp.active_leases(), 1);
    }

    #[test]
    fn distinct_clients_distinct_addresses() {
        let mut dhcp = DhcpServer::new();
        let a = dhcp.request(ClientId(1), 0, SimTime::ZERO).unwrap();
        let b = dhcp.request(ClientId(2), 0, SimTime::ZERO).unwrap();
        assert_ne!(a.addr, b.addr);
    }

    #[test]
    fn racks_have_disjoint_subnets() {
        let mut dhcp = DhcpServer::new();
        let a = dhcp.request(ClientId(1), 0, SimTime::ZERO).unwrap();
        let b = dhcp.request(ClientId(2), 3, SimTime::ZERO).unwrap();
        assert_eq!(a.addr.0[2], 0);
        assert_eq!(b.addr.0[2], 3);
    }

    #[test]
    fn pool_exhaustion_reports() {
        let mut dhcp = DhcpServer::new();
        for i in 0..253u64 {
            dhcp.request(ClientId(i), 1, SimTime::ZERO).unwrap();
        }
        let err = dhcp.request(ClientId(999), 1, SimTime::ZERO).unwrap_err();
        assert_eq!(err, DhcpError::PoolExhausted { rack: 1 });
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn expiry_frees_addresses() {
        let mut dhcp = DhcpServer::new();
        for i in 0..253u64 {
            dhcp.request(ClientId(i), 1, SimTime::ZERO).unwrap();
        }
        // After the lease time everything is reclaimable.
        let later = SimTime::from_secs(3601);
        let lease = dhcp.request(ClientId(999), 1, later).unwrap();
        assert_eq!(lease.addr.0[2], 1);
        assert_eq!(dhcp.active_leases(), 1);
    }

    #[test]
    fn rack_move_changes_subnet() {
        let mut dhcp = DhcpServer::new();
        let a = dhcp.request(ClientId(7), 0, SimTime::ZERO).unwrap();
        let b = dhcp.request(ClientId(7), 2, SimTime::from_secs(1)).unwrap();
        assert_eq!(a.addr.0[2], 0);
        assert_eq!(
            b.addr.0[2], 2,
            "migration to another rack renumbers — the IP-mobility problem §III targets"
        );
    }

    #[test]
    fn release_frees_immediately() {
        let mut dhcp = DhcpServer::new();
        dhcp.request(ClientId(1), 0, SimTime::ZERO).unwrap();
        assert!(dhcp.release(ClientId(1)));
        assert!(!dhcp.release(ClientId(1)));
        assert_eq!(dhcp.active_leases(), 0);
        assert_eq!(dhcp.lease_of(ClientId(1)), None);
    }

    #[test]
    fn naming_policy() {
        assert_eq!(DnsService::node_name(2, 13), "pi-2-13.picloud");
        assert_eq!(
            DnsService::container_name("web-0", "pi-2-13.picloud"),
            "web-0.pi-2-13.picloud"
        );
    }

    #[test]
    fn dns_register_resolve_unregister() {
        let mut dns = DnsService::new();
        assert!(dns.is_empty());
        let addr = IpAddr4::rack_host(0, 5);
        assert_eq!(dns.register("pi-0-3.picloud", addr), None);
        assert_eq!(dns.resolve("pi-0-3.picloud"), Some(addr));
        let newer = IpAddr4::rack_host(0, 9);
        assert_eq!(dns.register("pi-0-3.picloud", newer), Some(addr));
        assert_eq!(dns.unregister("pi-0-3.picloud"), Some(newer));
        assert_eq!(dns.resolve("pi-0-3.picloud"), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(IpAddr4([10, 0, 1, 2]).to_string(), "10.0.1.2");
        assert!(ClientId(0xdead).to_string().contains("client-"));
    }
}
