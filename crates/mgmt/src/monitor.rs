//! Cluster-wide telemetry.
//!
//! "Typical use-case scenarios include remote monitoring of the CPU load
//! on some/all Pi nodes" (§II-C). A [`NodeSample`] is what one daemon
//! reports; a [`ClusterSnapshot`] is the pimaster's poll of every daemon,
//! with the aggregates the control panel and the placement experiments
//! read.

use picloud_container::container::{ContainerId, ContainerState};
use picloud_hardware::node::NodeId;
use picloud_simcore::telemetry::MetricsRegistry;
use picloud_simcore::units::Bytes;
use picloud_simcore::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One container as the panel lists it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainerInfo {
    /// Container id on its node.
    pub id: ContainerId,
    /// Administrative name.
    pub name: String,
    /// Image name.
    pub image: String,
    /// Lifecycle state.
    pub state: ContainerState,
}

/// One node's telemetry report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSample {
    /// Which node.
    pub node: NodeId,
    /// Its rack.
    pub rack: u16,
    /// Its DNS name.
    pub name: String,
    /// Instantaneous CPU utilisation in `[0, 1]`.
    pub cpu_utilisation: f64,
    /// Time-weighted mean CPU utilisation since boot.
    pub cpu_mean_utilisation: f64,
    /// Guest memory in use.
    pub memory_used: Bytes,
    /// Guest memory capacity.
    pub memory_total: Bytes,
    /// Containers currently running.
    pub running_containers: usize,
    /// Every container on the node.
    pub containers: Vec<ContainerInfo>,
}

impl NodeSample {
    /// Memory utilisation in `[0, 1]`.
    pub fn memory_utilisation(&self) -> f64 {
        if self.memory_total.is_zero() {
            return 0.0;
        }
        self.memory_used.as_u64() as f64 / self.memory_total.as_u64() as f64
    }
}

/// The pimaster's poll of the whole cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// When the poll ran.
    pub taken_at: SimTime,
    /// Per-node samples, in node order.
    pub samples: Vec<NodeSample>,
}

impl ClusterSnapshot {
    /// Number of nodes polled.
    pub fn node_count(&self) -> usize {
        self.samples.len()
    }

    /// Total containers across the cluster.
    pub fn total_containers(&self) -> usize {
        self.samples.iter().map(|s| s.containers.len()).sum()
    }

    /// Total running containers.
    pub fn total_running(&self) -> usize {
        self.samples.iter().map(|s| s.running_containers).sum()
    }

    /// Mean CPU utilisation across nodes (unweighted — nodes are
    /// homogeneous in the PiCloud).
    pub fn mean_cpu(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.cpu_utilisation).sum::<f64>() / self.samples.len() as f64
    }

    /// The hottest node, or `None` when empty.
    pub fn hottest_node(&self) -> Option<&NodeSample> {
        self.samples.iter().max_by(|a, b| {
            a.cpu_utilisation
                .total_cmp(&b.cpu_utilisation)
                .then(b.node.cmp(&a.node))
        })
    }

    /// Nodes above `threshold` CPU utilisation.
    pub fn overloaded(&self, threshold: f64) -> Vec<NodeId> {
        self.samples
            .iter()
            .filter(|s| s.cpu_utilisation > threshold)
            .map(|s| s.node)
            .collect()
    }

    /// Total guest memory in use across the cluster.
    pub fn total_memory_used(&self) -> Bytes {
        self.samples.iter().map(|s| s.memory_used).sum()
    }

    /// Records this poll into `reg` at `now`: per-node CPU, memory and
    /// running-container gauges (labeled `node`/`rack`), plus the cluster
    /// totals the Fig. 4 panel headlines.
    pub fn record_telemetry(&self, reg: &mut MetricsRegistry, now: SimTime) {
        for s in &self.samples {
            let node = s.node.0.to_string();
            let rack = s.rack.to_string();
            let labels = [("node", node.as_str()), ("rack", rack.as_str())];
            reg.gauge("mgmt_node_cpu_utilisation", &labels)
                .set(now, s.cpu_utilisation);
            reg.gauge("mgmt_node_memory_utilisation", &labels)
                .set(now, s.memory_utilisation());
            reg.gauge("mgmt_node_running_containers", &labels)
                .set(now, s.running_containers as f64);
        }
        reg.gauge("mgmt_cluster_containers", &[])
            .set(now, self.total_containers() as f64);
        reg.gauge("mgmt_cluster_running", &[])
            .set(now, self.total_running() as f64);
        reg.gauge("mgmt_cluster_mean_cpu", &[])
            .set(now, self.mean_cpu());
    }
}

impl fmt::Display for ClusterSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "snapshot@{}: {} nodes, {} containers ({} running), mean CPU {:.0}%",
            self.taken_at,
            self.node_count(),
            self.total_containers(),
            self.total_running(),
            self.mean_cpu() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(node: u32, cpu: f64, running: usize) -> NodeSample {
        NodeSample {
            node: NodeId(node),
            rack: (node / 14) as u16,
            name: format!("pi-{}-{}.picloud", node / 14, node % 14),
            cpu_utilisation: cpu,
            cpu_mean_utilisation: cpu,
            memory_used: Bytes::mib(30 * running as u64),
            memory_total: Bytes::mib(192),
            running_containers: running,
            containers: Vec::new(),
        }
    }

    fn snapshot() -> ClusterSnapshot {
        ClusterSnapshot {
            taken_at: SimTime::from_secs(10),
            samples: vec![sample(0, 0.2, 1), sample(1, 0.9, 3), sample(2, 0.5, 2)],
        }
    }

    #[test]
    fn aggregates() {
        let s = snapshot();
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.total_running(), 6);
        assert!((s.mean_cpu() - (0.2 + 0.9 + 0.5) / 3.0).abs() < 1e-12);
        assert_eq!(s.hottest_node().unwrap().node, NodeId(1));
        assert_eq!(s.overloaded(0.8), vec![NodeId(1)]);
        assert_eq!(s.total_memory_used(), Bytes::mib(30 * 6));
    }

    #[test]
    fn memory_utilisation() {
        let s = sample(0, 0.0, 3);
        assert!((s.memory_utilisation() - 90.0 / 192.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_is_calm() {
        let s = ClusterSnapshot {
            taken_at: SimTime::ZERO,
            samples: Vec::new(),
        };
        assert_eq!(s.mean_cpu(), 0.0);
        assert!(s.hottest_node().is_none());
        assert!(s.overloaded(0.0).is_empty());
    }

    #[test]
    fn snapshot_serialises_to_json() {
        let s = snapshot();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("cpu_utilisation"));
        let back: ClusterSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn display_summarises() {
        assert!(snapshot().to_string().contains("3 nodes"));
    }
}
