//! Image management: "image upgrading, patching, and spawning" (§II-A).
//!
//! The pimaster hosts the golden images; each node tracks which version it
//! has pulled. Patching bumps the golden version; an upgrade pass computes
//! which nodes are stale and how many bytes the distribution costs — the
//! "mundane yet crucial" administration the paper says a real testbed
//! forces you to confront.

use picloud_container::image::ContainerImage;
use picloud_hardware::node::NodeId;
use picloud_simcore::units::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from the image store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// No image registered under that name.
    UnknownImage(String),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::UnknownImage(n) => write!(f, "no image named '{n}'"),
        }
    }
}

impl std::error::Error for ImageError {}

/// What an upgrade pass would distribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpgradePlan {
    /// Image being distributed.
    pub image_name: String,
    /// The version nodes will end on.
    pub target_version: u32,
    /// Nodes needing the pull.
    pub stale_nodes: Vec<NodeId>,
    /// Bytes each stale node must download.
    pub bytes_per_node: Bytes,
}

impl UpgradePlan {
    /// Total distribution traffic.
    pub fn total_bytes(&self) -> Bytes {
        self.bytes_per_node * self.stale_nodes.len() as u64
    }
}

/// The pimaster's golden-image registry plus per-node version tracking.
///
/// # Example
///
/// ```
/// use picloud_container::image::ContainerImage;
/// use picloud_hardware::node::NodeId;
/// use picloud_mgmt::images::ImageStore;
///
/// let mut store = ImageStore::new();
/// store.register(ContainerImage::lighttpd());
/// store.record_pull("lighttpd", NodeId(0));
/// store.patch("lighttpd")?;
/// let plan = store.upgrade_plan("lighttpd")?;
/// assert_eq!(plan.stale_nodes, vec![NodeId(0)]);
/// # Ok::<(), picloud_mgmt::images::ImageError>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ImageStore {
    golden: BTreeMap<String, ContainerImage>,
    /// name → node → version pulled.
    pulled: BTreeMap<String, BTreeMap<NodeId, u32>>,
}

impl ImageStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ImageStore::default()
    }

    /// A store preloaded with the Fig. 3 stack (httpd, database, hadoop)
    /// plus the minimal Raspbian base.
    pub fn with_standard_images() -> Self {
        let mut store = ImageStore::new();
        store.register(ContainerImage::raspbian_minimal());
        store.register(ContainerImage::lighttpd());
        store.register(ContainerImage::database());
        store.register(ContainerImage::hadoop_worker());
        store
    }

    /// Registers (or replaces) a golden image.
    pub fn register(&mut self, image: ContainerImage) {
        self.golden.insert(image.name.clone(), image);
    }

    /// The golden image for `name`.
    ///
    /// # Errors
    ///
    /// [`ImageError::UnknownImage`] if unregistered.
    pub fn golden(&self, name: &str) -> Result<&ContainerImage, ImageError> {
        self.golden
            .get(name)
            .ok_or_else(|| ImageError::UnknownImage(name.to_owned()))
    }

    /// Image names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.golden.keys().map(String::as_str)
    }

    /// Spawning support: the image a node should instantiate (the golden
    /// version), recording that the node now has it.
    ///
    /// # Errors
    ///
    /// [`ImageError::UnknownImage`] if unregistered.
    pub fn spawn(&mut self, name: &str, node: NodeId) -> Result<ContainerImage, ImageError> {
        let img = self.golden(name)?.clone();
        self.record_pull_version(name, node, img.version);
        Ok(img)
    }

    /// Records that `node` holds the *current* golden version of `name`.
    pub fn record_pull(&mut self, name: &str, node: NodeId) {
        let version = self.golden.get(name).map_or(1, |i| i.version);
        self.record_pull_version(name, node, version);
    }

    fn record_pull_version(&mut self, name: &str, node: NodeId, version: u32) {
        self.pulled
            .entry(name.to_owned())
            .or_default()
            .insert(node, version);
    }

    /// Patches the golden image (version bump), leaving nodes stale.
    ///
    /// # Errors
    ///
    /// [`ImageError::UnknownImage`] if unregistered.
    pub fn patch(&mut self, name: &str) -> Result<u32, ImageError> {
        let img = self
            .golden
            .get_mut(name)
            .ok_or_else(|| ImageError::UnknownImage(name.to_owned()))?;
        *img = img.patched();
        Ok(img.version)
    }

    /// Plans the distribution needed to bring every node that ever pulled
    /// `name` up to the golden version.
    ///
    /// # Errors
    ///
    /// [`ImageError::UnknownImage`] if unregistered.
    pub fn upgrade_plan(&self, name: &str) -> Result<UpgradePlan, ImageError> {
        let golden = self.golden(name)?;
        let stale_nodes: Vec<NodeId> = self
            .pulled
            .get(name)
            .map(|nodes| {
                nodes
                    .iter()
                    .filter(|(_, v)| **v < golden.version)
                    .map(|(n, _)| *n)
                    .collect()
            })
            .unwrap_or_default();
        Ok(UpgradePlan {
            image_name: name.to_owned(),
            target_version: golden.version,
            stale_nodes,
            bytes_per_node: golden.disk_size,
        })
    }

    /// Applies an upgrade plan: marks its nodes current.
    pub fn apply_upgrade(&mut self, plan: &UpgradePlan) {
        for node in &plan.stale_nodes {
            self.record_pull_version(&plan.image_name, *node, plan.target_version);
        }
    }

    /// The version `node` holds of `name`, if it ever pulled it.
    pub fn version_on(&self, name: &str, node: NodeId) -> Option<u32> {
        self.pulled.get(name).and_then(|m| m.get(&node)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_images_present() {
        let store = ImageStore::with_standard_images();
        let names: Vec<&str> = store.names().collect();
        assert_eq!(
            names,
            ["database", "hadoop-worker", "lighttpd", "raspbian-minimal"]
        );
    }

    #[test]
    fn spawn_records_version() {
        let mut store = ImageStore::with_standard_images();
        let img = store.spawn("lighttpd", NodeId(4)).unwrap();
        assert_eq!(img.version, 1);
        assert_eq!(store.version_on("lighttpd", NodeId(4)), Some(1));
    }

    #[test]
    fn patch_then_upgrade_cycle() {
        let mut store = ImageStore::with_standard_images();
        for n in 0..4 {
            store.record_pull("database", NodeId(n));
        }
        let v2 = store.patch("database").unwrap();
        assert_eq!(v2, 2);
        let plan = store.upgrade_plan("database").unwrap();
        assert_eq!(plan.stale_nodes.len(), 4);
        assert_eq!(plan.target_version, 2);
        assert_eq!(plan.total_bytes(), ContainerImage::database().disk_size * 4);
        store.apply_upgrade(&plan);
        let after = store.upgrade_plan("database").unwrap();
        assert!(after.stale_nodes.is_empty());
        assert_eq!(store.version_on("database", NodeId(2)), Some(2));
    }

    #[test]
    fn nodes_pulling_after_patch_are_current() {
        let mut store = ImageStore::with_standard_images();
        store.patch("lighttpd").unwrap();
        store.spawn("lighttpd", NodeId(9)).unwrap();
        let plan = store.upgrade_plan("lighttpd").unwrap();
        assert!(plan.stale_nodes.is_empty());
    }

    #[test]
    fn unknown_image_errors() {
        let mut store = ImageStore::new();
        assert!(matches!(
            store.golden("nope"),
            Err(ImageError::UnknownImage(_))
        ));
        assert!(store.patch("nope").is_err());
        assert!(store.spawn("nope", NodeId(0)).is_err());
        assert!(store.upgrade_plan("nope").is_err());
        assert!(ImageError::UnknownImage("x".into())
            .to_string()
            .contains("no image"));
    }
}
