//! A peer-to-peer management plane — §III's "radical departure".
//!
//! "We are experimenting with new UIs for control of the Cloud, and the
//! flexibility of owning our own testbed allows us to consider radical
//! departures to the norm, such as a peer-to-peer Cloud management
//! system." This module implements the standard alternative to the
//! centralised pimaster: **push anti-entropy gossip**. Every node holds a
//! heartbeat-versioned summary of every other node; each round it pushes
//! its view to `fanout` random peers, which merge by taking the freshest
//! heartbeat per origin. Epidemic dissemination converges in O(log n)
//! rounds, has no single point of failure, and costs `n × fanout` messages
//! per round — the exact trade-offs against the pimaster that the
//! experiment layer measures.

use picloud_hardware::node::NodeId;
use picloud_simcore::SeedFactory;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One node's self-reported summary, heartbeat-versioned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSummary {
    /// The origin node.
    pub node: NodeId,
    /// Monotonic heartbeat sequence stamped by the origin.
    pub heartbeat: u64,
    /// CPU utilisation at that heartbeat.
    pub cpu_utilisation: f64,
    /// Running containers at that heartbeat.
    pub running_containers: u32,
}

/// Statistics from a gossip run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GossipStats {
    /// Rounds executed.
    pub rounds: u32,
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Summaries carried across all messages (bandwidth proxy).
    pub summaries_shipped: u64,
}

/// A cluster of gossiping management daemons.
///
/// # Example
///
/// ```
/// use picloud_mgmt::gossip::GossipNetwork;
/// use picloud_simcore::SeedFactory;
///
/// let mut net = GossipNetwork::new(56, 2, &SeedFactory::new(7));
/// let stats = net.run_to_convergence(64).expect("gossip converges");
/// assert!(stats.rounds <= 12, "O(log n) dissemination");
/// ```
#[derive(Debug, Clone)]
pub struct GossipNetwork {
    /// Per-node view: node index → (origin → summary).
    views: Vec<BTreeMap<NodeId, NodeSummary>>,
    /// Per-node freshness: origin → (highest heartbeat ever seen, round at
    /// which it advanced past the previous one). The heartbeat component
    /// doubles as a tombstone: once a holder evicts a stale entry, a
    /// re-gossiped copy with the same heartbeat is ignored rather than
    /// resurrected.
    freshness: Vec<BTreeMap<NodeId, (u64, u32)>>,
    alive: Vec<bool>,
    fanout: usize,
    /// Evict entries whose heartbeat has not advanced for this many
    /// rounds. `None` (the default) keeps entries forever.
    staleness_cutoff: Option<u32>,
    /// Entries evicted as stale so far.
    evicted: u64,
    seeds: SeedFactory,
    round: u32,
    messages: u64,
    summaries_shipped: u64,
}

impl GossipNetwork {
    /// Creates `n` nodes, each initially knowing only itself (heartbeat 1),
    /// gossiping to `fanout` peers per round.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `fanout` is zero.
    pub fn new(n: usize, fanout: usize, seeds: &SeedFactory) -> Self {
        assert!(n > 0, "gossip needs nodes");
        assert!(fanout > 0, "gossip needs a positive fanout");
        let views = (0..n)
            .map(|i| {
                let node = NodeId(i as u32);
                let mut m = BTreeMap::new();
                m.insert(
                    node,
                    NodeSummary {
                        node,
                        heartbeat: 1,
                        cpu_utilisation: 0.0,
                        running_containers: 0,
                    },
                );
                m
            })
            .collect();
        GossipNetwork {
            views,
            freshness: vec![BTreeMap::new(); n],
            alive: vec![true; n],
            fanout,
            staleness_cutoff: None,
            evicted: 0,
            seeds: seeds.child("gossip"),
            round: 0,
            messages: 0,
            summaries_shipped: 0,
        }
    }

    /// Enables heartbeat-staleness expiry: an entry whose heartbeat has
    /// not advanced for `rounds` rounds is evicted from the holder's view,
    /// so dead peers drop out of merged views instead of lingering
    /// forever. With a cutoff set, every alive node also bumps its own
    /// heartbeat each round (the liveness beat the cutoff measures).
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    #[must_use]
    pub fn with_staleness_cutoff(mut self, rounds: u32) -> Self {
        assert!(rounds > 0, "staleness cutoff must be positive");
        self.staleness_cutoff = Some(rounds);
        self
    }

    /// Number of nodes (alive or failed).
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the network has no nodes (never; `new` requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Marks a node failed: it stops gossiping and receiving.
    pub fn fail_node(&mut self, node: NodeId) {
        if let Some(a) = self.alive.get_mut(node.index()) {
            *a = false;
        }
    }

    /// Updates a node's self-summary (bumping its heartbeat) — what the
    /// local daemon does when its load changes.
    pub fn update_self(&mut self, node: NodeId, cpu: f64, running: u32) {
        let view = &mut self.views[node.index()];
        let entry = view.entry(node).or_insert(NodeSummary {
            node,
            heartbeat: 0,
            cpu_utilisation: 0.0,
            running_containers: 0,
        });
        entry.heartbeat += 1;
        entry.cpu_utilisation = cpu;
        entry.running_containers = running;
        let stamp = (entry.heartbeat, self.round);
        self.freshness[node.index()].insert(node, stamp);
    }

    /// One node's current view (origin → summary).
    pub fn view_of(&self, node: NodeId) -> &BTreeMap<NodeId, NodeSummary> {
        &self.views[node.index()]
    }

    /// Executes one synchronous gossip round: every alive node pushes its
    /// view to `fanout` distinct random alive peers.
    pub fn step(&mut self) {
        self.round += 1;
        let n = self.views.len();
        // Under a staleness cutoff, liveness is signalled by the heartbeat
        // advancing; every alive node beats once per round.
        if self.staleness_cutoff.is_some() {
            for i in 0..n {
                if self.alive[i] {
                    let node = NodeId(i as u32);
                    if let Some(s) = self.views[i].get_mut(&node) {
                        s.heartbeat += 1;
                        let stamp = (s.heartbeat, self.round);
                        self.freshness[i].insert(node, stamp);
                    }
                }
            }
        }
        let mut rng = self.seeds.indexed_stream("round", u64::from(self.round));
        // Collect sends first (synchronous round semantics), then merge.
        let mut deliveries: Vec<(usize, Vec<NodeSummary>)> = Vec::new();
        for src in 0..n {
            if !self.alive[src] {
                continue;
            }
            let payload: Vec<NodeSummary> = self.views[src].values().copied().collect();
            let mut chosen = 0usize;
            let mut guard = 0usize;
            let mut picked: Vec<usize> = Vec::with_capacity(self.fanout);
            while chosen < self.fanout && guard < 16 * n {
                guard += 1;
                let peer = rng.gen_range(0..n);
                if peer == src || !self.alive[peer] || picked.contains(&peer) {
                    continue;
                }
                picked.push(peer);
                chosen += 1;
            }
            for peer in picked {
                self.messages += 1;
                self.summaries_shipped += payload.len() as u64;
                deliveries.push((peer, payload.clone()));
            }
        }
        for (peer, payload) in deliveries {
            let view = &mut self.views[peer];
            for s in payload {
                // A summary only counts as news if its heartbeat strictly
                // beats the highest one this holder has *ever* seen for
                // that origin — not merely what is currently in the view.
                // Otherwise an evicted entry re-gossiped by a slower peer
                // would be resurrected with reset freshness, and dead
                // nodes would ping-pong between views forever.
                let advanced = self.freshness[peer]
                    .get(&s.node)
                    .is_none_or(|&(hb, _)| s.heartbeat > hb);
                if advanced {
                    view.insert(s.node, s);
                    self.freshness[peer].insert(s.node, (s.heartbeat, self.round));
                } else if let Some(existing) = view.get_mut(&s.node) {
                    if s.heartbeat > existing.heartbeat {
                        *existing = s;
                    }
                }
            }
        }
        // Expire entries whose heartbeat stopped advancing: the merged
        // views forget dead peers after `cutoff` silent rounds.
        if let Some(cutoff) = self.staleness_cutoff {
            for holder in 0..n {
                if !self.alive[holder] {
                    continue;
                }
                let me = NodeId(holder as u32);
                let round = self.round;
                let freshness = &self.freshness[holder];
                let before = self.views[holder].len();
                self.views[holder].retain(|origin, _| {
                    *origin == me
                        || freshness
                            .get(origin)
                            .is_some_and(|&(_, seen)| round - seen <= cutoff)
                });
                self.evicted += (before - self.views[holder].len()) as u64;
            }
        }
    }

    /// Entries evicted for staleness so far (0 without a cutoff).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Whether every alive node knows a summary for every alive node.
    pub fn is_converged(&self) -> bool {
        let alive: Vec<NodeId> = (0..self.views.len() as u32)
            .map(NodeId)
            .filter(|n| self.alive[n.index()])
            .collect();
        alive.iter().all(|&holder| {
            alive
                .iter()
                .all(|origin| self.views[holder.index()].contains_key(origin))
        })
    }

    /// Runs rounds until converged, or `None` if `max_rounds` elapse first.
    pub fn run_to_convergence(&mut self, max_rounds: u32) -> Option<GossipStats> {
        for _ in 0..max_rounds {
            if self.is_converged() {
                return Some(self.stats());
            }
            self.step();
        }
        if self.is_converged() {
            Some(self.stats())
        } else {
            None
        }
    }

    /// Mean *view staleness*: over alive holders and alive origins, how far
    /// the held heartbeat lags the origin's own heartbeat. 0 = perfectly
    /// fresh.
    pub fn mean_staleness(&self) -> f64 {
        let alive: Vec<NodeId> = (0..self.views.len() as u32)
            .map(NodeId)
            .filter(|n| self.alive[n.index()])
            .collect();
        let mut lag = 0u64;
        let mut count = 0u64;
        for &holder in &alive {
            for &origin in &alive {
                let truth = self.views[origin.index()]
                    .get(&origin)
                    .map_or(0, |s| s.heartbeat);
                let held = self.views[holder.index()]
                    .get(&origin)
                    .map_or(0, |s| s.heartbeat);
                lag += truth.saturating_sub(held);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            lag as f64 / count as f64
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> GossipStats {
        GossipStats {
            rounds: self.round,
            messages: self.messages,
            summaries_shipped: self.summaries_shipped,
        }
    }
}

impl fmt::Display for GossipNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gossip: {} nodes ({} alive), fanout {}, round {}",
            self.views.len(),
            self.alive.iter().filter(|a| **a).count(),
            self.fanout,
            self.round
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize, fanout: usize, seed: u64) -> GossipNetwork {
        GossipNetwork::new(n, fanout, &SeedFactory::new(seed))
    }

    #[test]
    fn converges_in_logarithmic_rounds() {
        let mut g = net(56, 2, 1);
        let stats = g.run_to_convergence(64).expect("converges");
        assert!(stats.rounds <= 12, "rounds {}", stats.rounds);
        assert!(g.is_converged());
    }

    #[test]
    fn higher_fanout_converges_faster_but_costs_messages() {
        let run = |fanout: usize| {
            net(56, fanout, 3)
                .run_to_convergence(64)
                .expect("converges")
        };
        let slow = run(1);
        let fast = run(4);
        assert!(fast.rounds <= slow.rounds);
        assert!(fast.messages / u64::from(fast.rounds) > slow.messages / u64::from(slow.rounds));
    }

    #[test]
    fn survives_node_failures() {
        let mut g = net(56, 2, 5);
        for i in 0..14u32 {
            g.fail_node(NodeId(i)); // a whole rack dies
        }
        let stats = g.run_to_convergence(64).expect("survivors converge");
        assert!(stats.rounds < 20);
        // Failed nodes do not block convergence of the rest.
        assert!(g.is_converged());
    }

    #[test]
    fn updates_propagate_and_staleness_decays() {
        let mut g = net(20, 2, 7);
        g.run_to_convergence(64).expect("initial convergence");
        g.update_self(NodeId(3), 0.9, 5);
        let before = g.mean_staleness();
        assert!(before > 0.0, "fresh update not yet known");
        for _ in 0..10 {
            g.step();
        }
        let after = g.mean_staleness();
        assert!(
            after < before,
            "gossip spreads the update: {after} < {before}"
        );
        // The new value is actually what peers hold.
        let held = g.view_of(NodeId(15)).get(&NodeId(3)).expect("knows node 3");
        assert_eq!(held.running_containers, 5);
        assert!((held.cpu_utilisation - 0.9).abs() < 1e-12);
    }

    #[test]
    fn stale_heartbeats_never_overwrite_fresh_ones() {
        let mut g = net(4, 3, 9);
        g.run_to_convergence(32).expect("converges");
        g.update_self(NodeId(0), 0.5, 1);
        g.update_self(NodeId(0), 0.7, 2); // heartbeat 3 now
        for _ in 0..5 {
            g.step();
        }
        for holder in 0..4u32 {
            let s = g.view_of(NodeId(holder)).get(&NodeId(0)).expect("known");
            assert_eq!(s.heartbeat, 3);
            assert_eq!(s.running_containers, 2);
        }
    }

    #[test]
    fn staleness_cutoff_evicts_dead_peers_from_merged_views() {
        let mut g = net(56, 2, 13).with_staleness_cutoff(6);
        g.run_to_convergence(64).expect("converges");
        let victim = NodeId(5);
        g.fail_node(victim);
        // Within cutoff + dissemination slack, every alive view forgets
        // the dead peer; alive peers keep beating and stay known.
        for _ in 0..16 {
            g.step();
        }
        for holder in 0..56u32 {
            if holder == 5 {
                continue;
            }
            let view = g.view_of(NodeId(holder));
            assert!(
                !view.contains_key(&victim),
                "holder {holder} still remembers the dead peer"
            );
            assert_eq!(view.len(), 55, "holder {holder} lost a live peer");
        }
        assert!(g.evicted() > 0);
    }

    #[test]
    fn without_cutoff_dead_peers_linger() {
        let mut g = net(20, 2, 13);
        g.run_to_convergence(64).expect("converges");
        g.fail_node(NodeId(3));
        for _ in 0..16 {
            g.step();
        }
        assert!(g.view_of(NodeId(0)).contains_key(&NodeId(3)));
        assert_eq!(g.evicted(), 0);
    }

    #[test]
    #[should_panic(expected = "staleness cutoff")]
    fn zero_cutoff_rejected() {
        let _ = net(4, 1, 1).with_staleness_cutoff(0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = net(30, 2, 11).run_to_convergence(64).expect("converges");
        let b = net(30, 2, 11).run_to_convergence(64).expect("converges");
        assert_eq!(a, b);
        let c = net(30, 2, 12).run_to_convergence(64).expect("converges");
        assert!(a != c || a.rounds == c.rounds); // different seed may differ
    }

    #[test]
    fn single_node_is_trivially_converged() {
        let mut g = net(1, 1, 1);
        let stats = g.run_to_convergence(1).expect("trivial");
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    #[should_panic(expected = "positive fanout")]
    fn zero_fanout_rejected() {
        let _ = net(4, 0, 1);
    }

    #[test]
    fn display_counts_alive() {
        let mut g = net(4, 1, 1);
        g.fail_node(NodeId(0));
        assert!(g.to_string().contains("4 nodes (3 alive)"));
    }
}
