//! The RESTful management vocabulary.
//!
//! The testbed's daemons speak HTTP; the scale model elides the socket but
//! keeps the interface: typed requests with REST verb/resource semantics,
//! typed responses, and errors that map onto HTTP status codes. Everything
//! serialises to JSON (the wire format a bespoke 2013 REST API would use),
//! so a transcript of a model run is byte-for-byte a plausible API log.

use crate::monitor::{ClusterSnapshot, ContainerInfo, NodeSample};
use picloud_container::container::ContainerId;
use picloud_container::host::HostError;
use picloud_hardware::node::NodeId;
use picloud_simcore::units::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A management request, as the control panel or an administrator's script
/// would issue it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ApiRequest {
    /// `GET /cluster` — the aggregate dashboard numbers.
    ClusterSummary,
    /// `GET /nodes` — every node's telemetry.
    ListNodes,
    /// `GET /nodes/{node}` — one node's telemetry.
    NodeStatus(NodeId),
    /// `POST /nodes/{node}/containers` — spawn (create + start) an
    /// instance of a registered image.
    SpawnContainer {
        /// Target node.
        node: NodeId,
        /// Administrative name for the new container.
        name: String,
        /// Registered image name.
        image: String,
    },
    /// `POST /nodes/{node}/containers/{ct}/stop`.
    StopContainer {
        /// Node the container lives on.
        node: NodeId,
        /// The container.
        container: ContainerId,
    },
    /// `DELETE /nodes/{node}/containers/{ct}`.
    DestroyContainer {
        /// Node the container lives on.
        node: NodeId,
        /// The container.
        container: ContainerId,
    },
    /// `PUT /nodes/{node}/containers/{ct}/limits` — the paper's "(soft)
    /// per-VM resource utilisation limits".
    SetVmLimits {
        /// Node the container lives on.
        node: NodeId,
        /// The container.
        container: ContainerId,
        /// New cgroup CPU shares, if changing.
        cpu_shares: Option<u32>,
        /// New cgroup memory limit, if changing.
        memory_limit: Option<Bytes>,
    },
    /// `GET /images` — registered golden images.
    ListImages,
    /// `POST /images/{name}/patch` — bump the golden version.
    PatchImage {
        /// Image to patch.
        name: String,
    },
}

impl ApiRequest {
    /// A stable short name for this request kind, used as the `verb`
    /// label on the `mgmt_api_calls_total` telemetry series.
    pub fn verb(&self) -> &'static str {
        match self {
            ApiRequest::ClusterSummary => "cluster_summary",
            ApiRequest::ListNodes => "list_nodes",
            ApiRequest::NodeStatus(_) => "node_status",
            ApiRequest::SpawnContainer { .. } => "spawn_container",
            ApiRequest::StopContainer { .. } => "stop_container",
            ApiRequest::DestroyContainer { .. } => "destroy_container",
            ApiRequest::SetVmLimits { .. } => "set_vm_limits",
            ApiRequest::ListImages => "list_images",
            ApiRequest::PatchImage { .. } => "patch_image",
        }
    }
}

/// A successful management response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ApiResponse {
    /// Aggregate cluster state.
    Summary {
        /// Nodes registered.
        nodes: usize,
        /// Containers across the cluster.
        containers: usize,
        /// Running containers.
        running: usize,
        /// Mean CPU utilisation in `[0, 1]`.
        mean_cpu: f64,
    },
    /// Every node's sample.
    Nodes(ClusterSnapshot),
    /// One node's sample.
    Node(NodeSample),
    /// A container was spawned.
    Spawned {
        /// Where it runs.
        node: NodeId,
        /// Its id.
        container: ContainerId,
        /// Its DNS name.
        dns_name: String,
        /// Its leased address (bridged networking).
        address: String,
    },
    /// A container changed state or limits.
    ContainerUpdated {
        /// Where it runs.
        node: NodeId,
        /// Its id.
        container: ContainerId,
        /// Its current info.
        info: ContainerInfo,
    },
    /// A container was destroyed.
    Destroyed {
        /// Where it ran.
        node: NodeId,
        /// Its id.
        container: ContainerId,
    },
    /// Registered image names and versions.
    Images(Vec<(String, u32)>),
    /// An image was patched to a new version.
    Patched {
        /// The image.
        name: String,
        /// Its new version.
        version: u32,
    },
}

/// A management error with its HTTP status.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ApiError {
    /// 404 — node, container or image does not exist.
    NotFound(String),
    /// 409 — the operation conflicts with current state (bad lifecycle
    /// transition, duplicate name).
    Conflict(String),
    /// 507 — the node cannot fit the request (RAM or disk).
    InsufficientStorage(String),
    /// 400 — malformed request.
    BadRequest(String),
}

impl ApiError {
    /// The HTTP status code this error maps to.
    pub fn status_code(&self) -> u16 {
        match self {
            ApiError::NotFound(_) => 404,
            ApiError::Conflict(_) => 409,
            ApiError::InsufficientStorage(_) => 507,
            ApiError::BadRequest(_) => 400,
        }
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (code, msg) = match self {
            ApiError::NotFound(m) => (404, m),
            ApiError::Conflict(m) => (409, m),
            ApiError::InsufficientStorage(m) => (507, m),
            ApiError::BadRequest(m) => (400, m),
        };
        write!(f, "{code}: {msg}")
    }
}

impl std::error::Error for ApiError {}

impl From<HostError> for ApiError {
    fn from(e: HostError) -> Self {
        match &e {
            HostError::OutOfMemory { .. } | HostError::OutOfDisk(_) => {
                ApiError::InsufficientStorage(e.to_string())
            }
            HostError::UnknownContainer(_) => ApiError::NotFound(e.to_string()),
            HostError::DuplicateName(_) | HostError::Transition(_) => {
                ApiError::Conflict(e.to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picloud_container::container::TransitionError;
    use picloud_container::ContainerState;

    #[test]
    fn status_codes() {
        assert_eq!(ApiError::NotFound("x".into()).status_code(), 404);
        assert_eq!(ApiError::Conflict("x".into()).status_code(), 409);
        assert_eq!(ApiError::InsufficientStorage("x".into()).status_code(), 507);
        assert_eq!(ApiError::BadRequest("x".into()).status_code(), 400);
    }

    #[test]
    fn host_errors_map_to_http() {
        let oom = HostError::OutOfMemory {
            requested: Bytes::mib(64),
            free: Bytes::mib(2),
        };
        assert_eq!(ApiError::from(oom).status_code(), 507);
        let unknown = HostError::UnknownContainer(ContainerId(4));
        assert_eq!(ApiError::from(unknown).status_code(), 404);
        let dup = HostError::DuplicateName("web".into());
        assert_eq!(ApiError::from(dup).status_code(), 409);
        let trans = HostError::Transition(TransitionError {
            from: ContainerState::Running,
            verb: "start",
        });
        assert_eq!(ApiError::from(trans).status_code(), 409);
    }

    #[test]
    fn requests_round_trip_through_json() {
        let req = ApiRequest::SpawnContainer {
            node: NodeId(3),
            name: "web-1".into(),
            image: "lighttpd".into(),
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: ApiRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn error_display_includes_code() {
        let e = ApiError::NotFound("no such node".into());
        assert_eq!(e.to_string(), "404: no such node");
    }
}
