//! The web control panel of Fig. 4, as a data model.
//!
//! The paper's pimaster runs "an outward-facing webserver \[that\] provides a
//! web-based control panel to users and administrators". The scale model
//! reproduces the panel's *content*: a [`PanelView`] carries exactly what
//! the screenshot shows (per-node CPU load, memory, container inventory),
//! serialises to the JSON a single-page panel would fetch, and renders an
//! ASCII version for terminal reproduction of the figure.

use crate::monitor::ClusterSnapshot;
use crate::pimaster::Pimaster;
use picloud_simcore::telemetry::TelemetrySink;
use picloud_simcore::{SimTime, SpanId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One row of the panel's node table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelRow {
    /// Node DNS name.
    pub node: String,
    /// Rack index.
    pub rack: u16,
    /// CPU load in percent.
    pub cpu_percent: f64,
    /// Memory used, MiB.
    pub mem_used_mib: f64,
    /// Memory total, MiB.
    pub mem_total_mib: f64,
    /// `name [state]` per container.
    pub containers: Vec<String>,
}

/// The full panel payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelView {
    /// Snapshot time, seconds.
    pub refreshed_at_secs: f64,
    /// Cluster-wide mean CPU percent.
    pub mean_cpu_percent: f64,
    /// Total running containers.
    pub running_containers: usize,
    /// Per-node rows, node order.
    pub rows: Vec<PanelRow>,
}

impl PanelView {
    /// Builds the view from a snapshot.
    pub fn from_snapshot(snap: &ClusterSnapshot) -> Self {
        PanelView {
            refreshed_at_secs: snap.taken_at.as_secs_f64(),
            mean_cpu_percent: snap.mean_cpu() * 100.0,
            running_containers: snap.total_running(),
            rows: snap
                .samples
                .iter()
                .map(|s| PanelRow {
                    node: s.name.clone(),
                    rack: s.rack,
                    cpu_percent: s.cpu_utilisation * 100.0,
                    mem_used_mib: s.memory_used.as_mib_f64(),
                    mem_total_mib: s.memory_total.as_mib_f64(),
                    containers: s
                        .containers
                        .iter()
                        .map(|c| format!("{} [{}]", c.name, c.state))
                        .collect(),
                })
                .collect(),
        }
    }

    /// The JSON the panel's frontend would fetch.
    ///
    /// # Panics
    ///
    /// Never in practice; the view contains no non-serialisable values.
    pub fn to_json(&self) -> String {
        // lint: allow(P1) reason=derived Serialize over plain data cannot fail; documented in # Panics
        serde_json::to_string_pretty(self).expect("panel view serialises")
    }

    /// ASCII rendering — the terminal stand-in for the Fig. 4 screenshot.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== PiCloud control panel (t={:.1}s) — mean CPU {:.0}%, {} containers running ==\n",
            self.refreshed_at_secs, self.mean_cpu_percent, self.running_containers
        ));
        out.push_str(&format!(
            "{:<18} {:>4} {:>6} {:>14}  {}\n",
            "node", "rack", "cpu%", "mem (MiB)", "containers"
        ));
        for r in &self.rows {
            let bar_len = (r.cpu_percent / 10.0).round() as usize;
            let bar: String = "#".repeat(bar_len.min(10));
            out.push_str(&format!(
                "{:<18} {:>4} {:>5.0} {:>7.0}/{:<6.0} |{bar:<10}| {}\n",
                r.node,
                r.rack,
                r.cpu_percent,
                r.mem_used_mib,
                r.mem_total_mib,
                r.containers.join(", ")
            ));
        }
        out
    }
}

impl fmt::Display for PanelView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render_ascii())
    }
}

/// Convenience driver: poll the pimaster and build the view.
#[derive(Debug, Clone, Copy, Default)]
pub struct ControlPanel {
    /// When the panel last polled, for the staleness gauge.
    last_refresh: Option<SimTime>,
}

impl ControlPanel {
    /// Creates the panel; no refresh has happened yet.
    pub fn new() -> Self {
        ControlPanel::default()
    }

    /// When the panel last refreshed (via either refresh method).
    pub fn last_refresh(&self) -> Option<SimTime> {
        self.last_refresh
    }

    /// Refreshes: polls all daemons through the pimaster and builds a view.
    pub fn refresh(&mut self, master: &mut Pimaster, now: SimTime) -> PanelView {
        self.last_refresh = Some(now);
        PanelView::from_snapshot(&master.snapshot(now))
    }

    /// [`refresh`](ControlPanel::refresh) wired into telemetry: emits a
    /// `panel_refresh` span and sets the `mgmt_panel_staleness_seconds`
    /// gauge to the gap since the previous refresh (0 on the first). On a
    /// disabled sink this is exactly `refresh` — nothing is recorded.
    pub fn refresh_traced(
        &mut self,
        master: &mut Pimaster,
        now: SimTime,
        sink: &mut TelemetrySink,
    ) -> PanelView {
        let staleness = self
            .last_refresh
            .map_or(0.0, |t| now.saturating_duration_since(t).as_secs_f64());
        let view = self.refresh(master, now);
        if sink.is_enabled() {
            let span = sink
                .tracer
                .span_start(now, "panel_refresh", SpanId::NONE, |e| {
                    e.u64("nodes", view.rows.len() as u64)
                        .u64("running", view.running_containers as u64);
                });
            sink.tracer.span_end(now, span, |e| {
                e.f64("staleness_s", staleness);
            });
            sink.registry
                .gauge("mgmt_panel_staleness_seconds", &[])
                .set(now, staleness);
        }
        view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ApiRequest;
    use picloud_hardware::node::{NodeId, NodeSpec};

    fn loaded_master() -> Pimaster {
        let mut m = Pimaster::new();
        for i in 0..4 {
            m.register_node(NodeSpec::pi_model_b_rev1(), i / 2, SimTime::ZERO)
                .expect("rack subnet has room");
        }
        m.handle(
            ApiRequest::SpawnContainer {
                node: NodeId(1),
                name: "web-0".into(),
                image: "lighttpd".into(),
            },
            SimTime::ZERO,
        )
        .unwrap();
        m
    }

    #[test]
    fn view_reflects_cluster() {
        let mut m = loaded_master();
        let view = ControlPanel::new().refresh(&mut m, SimTime::from_secs(5));
        assert_eq!(view.rows.len(), 4);
        assert_eq!(view.running_containers, 1);
        assert_eq!(view.rows[1].containers, vec!["web-0 [running]"]);
        assert_eq!(view.refreshed_at_secs, 5.0);
    }

    #[test]
    fn json_is_fetchable() {
        let mut m = loaded_master();
        let view = ControlPanel::new().refresh(&mut m, SimTime::ZERO);
        let json = view.to_json();
        let back: PanelView = serde_json::from_str(&json).unwrap();
        assert_eq!(back, view);
        assert!(json.contains("web-0"));
    }

    #[test]
    fn ascii_renders_all_nodes() {
        let mut m = loaded_master();
        let view = ControlPanel::new().refresh(&mut m, SimTime::ZERO);
        let art = view.render_ascii();
        for rack in 0..2 {
            for slot in 0..2 {
                assert!(art.contains(&format!("pi-{rack}-{slot}.picloud")), "{art}");
            }
        }
        assert!(art.contains("control panel"));
        assert_eq!(art, view.to_string());
    }

    #[test]
    fn traced_refresh_records_span_and_staleness() {
        use picloud_simcore::SpanForest;

        let mut m = loaded_master();
        let mut panel = ControlPanel::new();
        let mut sink = TelemetrySink::recording(SimTime::ZERO);
        let v1 = panel.refresh_traced(&mut m, SimTime::from_secs(5), &mut sink);
        let v2 = panel.refresh_traced(&mut m, SimTime::from_secs(45), &mut sink);
        assert_eq!(v1.rows.len(), v2.rows.len());
        assert_eq!(panel.last_refresh(), Some(SimTime::from_secs(45)));

        let forest = SpanForest::from_tracer(&sink.tracer);
        let refreshes: Vec<_> = forest.roots_named("panel_refresh").collect();
        assert_eq!(refreshes.len(), 2);
        let g = sink
            .registry
            .get_gauge("mgmt_panel_staleness_seconds", &[])
            .expect("staleness gauge exists");
        assert_eq!(g.value(), 40.0, "second refresh came 40 s after the first");
        assert_eq!(g.max(), 40.0);

        // Disabled sink: identical view, nothing recorded.
        let mut off = TelemetrySink::disabled();
        let mut quiet_panel = ControlPanel::new();
        let qv = quiet_panel.refresh_traced(&mut m, SimTime::from_secs(50), &mut off);
        assert_eq!(qv.rows.len(), v1.rows.len());
        assert_eq!(off.tracer.len(), 0);
        assert!(off.registry.is_empty());
    }

    #[test]
    fn cpu_bar_scales() {
        let mut m = loaded_master();
        // Saturate node 1's CPU.
        let id = m.daemon(NodeId(1)).unwrap().container_states()[0].0;
        m.daemon_mut(NodeId(1)).unwrap().set_demand(id, 700e6);
        let view = ControlPanel::new().refresh(&mut m, SimTime::from_secs(1));
        assert!((view.rows[1].cpu_percent - 100.0).abs() < 1e-9);
        assert!(view.render_ascii().contains("##########"));
    }
}
