//! The per-Pi management daemon.
//!
//! §II-A: "There is an API daemon on each Pi providing a RESTful management
//! interface for facilitating virtual host management and interacting with
//! a head node (the pimaster)." The daemon wraps the node's LXC runtime
//! with the telemetry the pimaster polls: CPU load, memory occupancy and
//! container inventory.

use picloud_container::container::{ContainerConfig, ContainerId, ContainerState};
use picloud_container::host::{ContainerHost, HostError};
use picloud_hardware::node::{NodeId, NodeSpec};
use picloud_simcore::units::Bytes;
use picloud_simcore::{SimTime, TimeWeightedGauge};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::monitor::{ContainerInfo, NodeSample};

/// One node's daemon: runtime + telemetry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeDaemon {
    node: NodeId,
    rack: u16,
    name: String,
    host: ContainerHost,
    /// Current CPU demand per container, Hz.
    demands: BTreeMap<ContainerId, f64>,
    cpu_gauge: TimeWeightedGauge,
}

impl NodeDaemon {
    /// Starts a daemon for node `node` in `rack` running on `spec`.
    pub fn new(
        node: NodeId,
        rack: u16,
        name: impl Into<String>,
        spec: NodeSpec,
        now: SimTime,
    ) -> Self {
        NodeDaemon {
            node,
            rack,
            name: name.into(),
            host: ContainerHost::new(spec),
            demands: BTreeMap::new(),
            cpu_gauge: TimeWeightedGauge::new(now, 0.0),
        }
    }

    /// The node this daemon manages.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's rack.
    pub fn rack(&self) -> u16 {
        self.rack
    }

    /// The node's DNS name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying runtime (read-only).
    pub fn host(&self) -> &ContainerHost {
        &self.host
    }

    /// The underlying runtime (mutable, for direct workload drivers).
    pub fn host_mut(&mut self) -> &mut ContainerHost {
        &mut self.host
    }

    /// Creates and starts a container in one step — the panel's
    /// "spawn new VM instance" button.
    ///
    /// # Errors
    ///
    /// Any [`HostError`] from creation or start; a container created but
    /// unable to start is destroyed again (no half-spawned state).
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        config: ContainerConfig,
    ) -> Result<ContainerId, HostError> {
        let id = self.host.create(name, config)?;
        if let Err(e) = self.host.start(id) {
            // Best-effort rollback — the start failure is the error worth
            // reporting, not a secondary destroy hiccup.
            let _ = self.host.destroy(id);
            return Err(e);
        }
        Ok(id)
    }

    /// Sets a container's current CPU demand (Hz) — driven by the workload
    /// layer.
    pub fn set_demand(&mut self, id: ContainerId, demand_hz: f64) {
        self.demands.insert(id, demand_hz.max(0.0));
    }

    /// Recomputes CPU allocation and updates the load gauge; returns
    /// utilisation in `[0, 1]`.
    pub fn refresh_load(&mut self, now: SimTime) -> f64 {
        let (_, util) = self.host.allocate_cpu(&self.demands);
        self.cpu_gauge.set(now, util);
        util
    }

    /// The telemetry sample the pimaster polls.
    pub fn sample(&mut self, now: SimTime) -> NodeSample {
        let util = self.refresh_load(now);
        let containers: Vec<ContainerInfo> = self
            .host
            .containers()
            .map(|c| ContainerInfo {
                id: c.id(),
                name: c.name().to_owned(),
                image: c.config().image.name.clone(),
                state: c.state(),
            })
            .collect();
        NodeSample {
            node: self.node,
            rack: self.rack,
            name: self.name.clone(),
            cpu_utilisation: util,
            cpu_mean_utilisation: self.cpu_gauge.mean(now),
            memory_used: self.host.memory_in_use(),
            memory_total: self.host.spec().guest_ram(),
            running_containers: self.host.running().count(),
            containers,
        }
    }

    /// Stops a container, dropping its demand entry.
    ///
    /// # Errors
    ///
    /// Any [`HostError`] from the runtime.
    pub fn stop(&mut self, id: ContainerId) -> Result<(), HostError> {
        self.host.stop(id)?;
        self.demands.remove(&id);
        Ok(())
    }

    /// Destroys a container, dropping its demand entry.
    ///
    /// # Errors
    ///
    /// Any [`HostError`] from the runtime.
    pub fn destroy(&mut self, id: ContainerId) -> Result<(), HostError> {
        self.host.destroy(id)?;
        self.demands.remove(&id);
        Ok(())
    }

    /// Sets soft per-VM limits (§II-C).
    ///
    /// # Errors
    ///
    /// Any [`HostError`] from the runtime.
    pub fn set_limits(
        &mut self,
        id: ContainerId,
        cpu_shares: Option<u32>,
        memory_limit: Option<Bytes>,
    ) -> Result<(), HostError> {
        self.host.update_limits(id, cpu_shares, memory_limit)
    }

    /// States of all containers, for quick assertions and the panel.
    pub fn container_states(&self) -> Vec<(ContainerId, ContainerState)> {
        self.host
            .containers()
            .map(|c| (c.id(), c.state()))
            .collect()
    }
}

impl fmt::Display for NodeDaemon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "daemon@{} ({})", self.name, self.host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picloud_container::image::ContainerImage;

    fn daemon() -> NodeDaemon {
        NodeDaemon::new(
            NodeId(0),
            0,
            "pi-0-0.picloud",
            NodeSpec::pi_model_b_rev1(),
            SimTime::ZERO,
        )
    }

    fn web() -> ContainerConfig {
        ContainerConfig::new(ContainerImage::lighttpd())
    }

    #[test]
    fn spawn_creates_running_container() {
        let mut d = daemon();
        let id = d.spawn("web-0", web()).unwrap();
        assert_eq!(d.container_states(), vec![(id, ContainerState::Running)]);
    }

    #[test]
    fn failed_spawn_leaves_no_debris() {
        let mut d = daemon();
        // Fill RAM with 6 containers, then a 7th spawn fails at start.
        for i in 0..6 {
            d.spawn(format!("c{i}"), web()).unwrap();
        }
        let err = d.spawn("c6", web()).unwrap_err();
        assert!(matches!(err, HostError::OutOfMemory { .. }));
        assert_eq!(
            d.host().containers().count(),
            6,
            "no half-spawned container"
        );
    }

    #[test]
    fn sample_reflects_load() {
        let mut d = daemon();
        let id = d.spawn("web-0", web()).unwrap();
        d.set_demand(id, 350e6); // half the 700 MHz core
        let s = d.sample(SimTime::from_secs(1));
        assert!((s.cpu_utilisation - 0.5).abs() < 1e-9);
        assert_eq!(s.memory_used, Bytes::mib(30));
        assert_eq!(s.running_containers, 1);
        assert_eq!(s.containers.len(), 1);
        assert_eq!(s.containers[0].image, "lighttpd");
    }

    #[test]
    fn mean_utilisation_is_time_weighted() {
        let mut d = daemon();
        let id = d.spawn("web-0", web()).unwrap();
        d.set_demand(id, 700e6);
        d.refresh_load(SimTime::ZERO); // 100% from t=0
        d.set_demand(id, 0.0);
        d.refresh_load(SimTime::from_secs(10)); // 0% from t=10
        let s = d.sample(SimTime::from_secs(20));
        assert!(
            (s.cpu_mean_utilisation - 0.5).abs() < 0.01,
            "{}",
            s.cpu_mean_utilisation
        );
    }

    #[test]
    fn stop_and_destroy_clear_demand() {
        let mut d = daemon();
        let id = d.spawn("web-0", web()).unwrap();
        d.set_demand(id, 700e6);
        d.stop(id).unwrap();
        let s = d.sample(SimTime::from_secs(1));
        assert_eq!(s.cpu_utilisation, 0.0);
        assert_eq!(s.running_containers, 0);
        d.destroy(id).unwrap();
        assert_eq!(d.host().containers().count(), 0);
    }

    #[test]
    fn set_limits_delegates() {
        let mut d = daemon();
        let id = d.spawn("web-0", web()).unwrap();
        d.set_limits(id, Some(512), Some(Bytes::mib(48))).unwrap();
        let c = d.host().container(id).unwrap();
        assert_eq!(c.config().cpu_shares, 512);
        assert_eq!(c.config().memory_limit, Some(Bytes::mib(48)));
    }
}
