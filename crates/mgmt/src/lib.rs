//! The PiCloud management plane: the `pimaster` and its node daemons.
//!
//! §II-C: "we rely upon a bespoke administration API supported by daemons
//! on the pimaster and on individual Pi devices. An outward-facing
//! webserver on pimaster provides a web-based control panel to users and
//! administrators... This website interacts with the local daemons, and
//! controls workloads running on the Pi devices using RESTful interfaces.
//! Typical use-case scenarios include remote monitoring of the CPU load on
//! some/all Pi nodes, spawning new VM instances and specifying (soft)
//! per-VM resource utilisation limits."
//!
//! * [`api`] — the typed RESTful request/response vocabulary (the HTTP
//!   socket is elided; verbs, resources and status codes are preserved).
//! * [`daemon`] — the per-Pi daemon wrapping the LXC runtime with
//!   telemetry.
//! * [`dhcp`] — DHCP leasing and DNS naming policy ("A system administrator
//!   can implement customised IP and naming policies through DHCP and DNS
//!   services running on the pimaster").
//! * [`images`] — image management: "image upgrading, patching, and
//!   spawning".
//! * [`gossip`] — the §III "peer-to-peer Cloud management system"
//!   research direction: push anti-entropy gossip as the decentralised
//!   alternative to the pimaster.
//! * [`monitor`] — cluster-wide telemetry collection.
//! * [`panel`] — the Fig. 4 web control panel as a serialisable data model.
//! * [`pimaster`] — the head node tying all of it together.
//!
//! # Example
//!
//! ```
//! use picloud_mgmt::api::ApiRequest;
//! use picloud_mgmt::pimaster::Pimaster;
//! use picloud_hardware::node::NodeSpec;
//! use picloud_simcore::SimTime;
//!
//! let mut master = Pimaster::new();
//! for _ in 0..4 {
//!     master.register_node(NodeSpec::pi_model_b_rev1(), 0, SimTime::ZERO)?;
//! }
//! let resp = master.handle(ApiRequest::ClusterSummary, SimTime::ZERO);
//! assert!(resp.is_ok());
//! # Ok::<(), picloud_mgmt::api::ApiError>(())
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod daemon;
pub mod dhcp;
pub mod gossip;
pub mod images;
pub mod monitor;
pub mod panel;
pub mod pimaster;

pub use api::{ApiError, ApiRequest, ApiResponse};
pub use daemon::NodeDaemon;
pub use dhcp::{DhcpServer, DnsService, IpAddr4};
pub use gossip::{GossipNetwork, GossipStats};
pub use images::ImageStore;
pub use monitor::{ClusterSnapshot, NodeSample};
pub use panel::{ControlPanel, PanelView};
pub use pimaster::Pimaster;
