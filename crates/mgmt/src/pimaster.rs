//! The `pimaster` head node.
//!
//! Owns the node daemons, the DHCP and DNS services and the image store,
//! and dispatches the RESTful [`ApiRequest`] vocabulary — the component an
//! administrator actually talks to (§II-A, §II-C).

use crate::api::{ApiError, ApiRequest, ApiResponse};
use crate::daemon::NodeDaemon;
use crate::dhcp::{ClientId, DhcpServer, DnsService};
use crate::images::ImageStore;
use crate::monitor::{ClusterSnapshot, ContainerInfo};
use picloud_container::container::{ContainerConfig, ContainerId};
use picloud_hardware::node::{NodeId, NodeSpec};
use picloud_simcore::telemetry::MetricsRegistry;
use picloud_simcore::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// The head node: daemons + DHCP + DNS + images.
#[derive(Debug, Clone, Default)]
pub struct Pimaster {
    daemons: BTreeMap<NodeId, NodeDaemon>,
    dhcp: DhcpServer,
    dns: DnsService,
    images: ImageStore,
    next_node: u32,
    next_client: u64,
    /// DHCP client behind each container's bridged lease, so destroying
    /// the container returns its address to the rack pool. Without this
    /// a long churn of spawn/destroy cycles (every failover is one)
    /// leaks the pool dry and every later spawn 507s.
    container_leases: BTreeMap<(NodeId, ContainerId), ClientId>,
    /// Slot counter per rack for the naming policy.
    rack_slots: BTreeMap<u16, u16>,
    /// API calls handled, by [`ApiRequest::verb`].
    api_calls: BTreeMap<&'static str, u64>,
}

impl Pimaster {
    /// Creates a pimaster with the standard image set and empty cluster.
    pub fn new() -> Self {
        Pimaster {
            images: ImageStore::with_standard_images(),
            ..Pimaster::default()
        }
    }

    /// Registers a new node in `rack`: starts its daemon, leases it an
    /// address and enters it into DNS. Returns its id.
    ///
    /// # Errors
    ///
    /// [`ApiError::InsufficientStorage`] when the rack's DHCP pool is
    /// exhausted; the registration leaves no partial state behind (no id,
    /// slot or client number is consumed).
    pub fn register_node(
        &mut self,
        spec: NodeSpec,
        rack: u16,
        now: SimTime,
    ) -> Result<NodeId, ApiError> {
        let slot = self.rack_slots.get(&rack).copied().unwrap_or(0);
        let name = DnsService::node_name(rack, slot);
        let client = ClientId(self.next_client);
        // Lease first: it is the only step that can fail, and failing
        // before any counter moves keeps the registration atomic.
        let lease = self
            .dhcp
            .request(client, u8::try_from(rack).unwrap_or(u8::MAX), now)
            .map_err(|e| ApiError::InsufficientStorage(format!("node registration: {e}")))?;
        self.next_client += 1;
        self.rack_slots.insert(rack, slot + 1);
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.dns.register(name.clone(), lease.addr);
        self.daemons
            .insert(id, NodeDaemon::new(id, rack, name, spec, now));
        Ok(id)
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.daemons.len()
    }

    /// A node's daemon (read-only).
    pub fn daemon(&self, node: NodeId) -> Option<&NodeDaemon> {
        self.daemons.get(&node)
    }

    /// A node's daemon (mutable, for workload drivers).
    pub fn daemon_mut(&mut self, node: NodeId) -> Option<&mut NodeDaemon> {
        self.daemons.get_mut(&node)
    }

    /// All daemons in node order.
    pub fn daemons(&self) -> impl Iterator<Item = &NodeDaemon> {
        self.daemons.values()
    }

    /// The DNS zone.
    pub fn dns(&self) -> &DnsService {
        &self.dns
    }

    /// The DHCP service.
    pub fn dhcp(&self) -> &DhcpServer {
        &self.dhcp
    }

    /// The image store.
    pub fn images(&self) -> &ImageStore {
        &self.images
    }

    /// The image store (mutable).
    pub fn images_mut(&mut self) -> &mut ImageStore {
        &mut self.images
    }

    /// Polls every daemon — the panel's refresh.
    pub fn snapshot(&mut self, now: SimTime) -> ClusterSnapshot {
        let samples = self.daemons.values_mut().map(|d| d.sample(now)).collect();
        ClusterSnapshot {
            taken_at: now,
            samples,
        }
    }

    /// Records the management plane's telemetry into `reg`: API calls by
    /// verb (`mgmt_api_calls_total{verb}`), DHCP lease occupancy
    /// (`mgmt_dhcp_active_leases`), DNS zone size (`mgmt_dns_records`)
    /// and per-node samples via [`ClusterSnapshot::record_telemetry`].
    pub fn record_telemetry(&mut self, reg: &mut MetricsRegistry, now: SimTime) {
        for (verb, count) in &self.api_calls {
            let c = reg.counter("mgmt_api_calls_total", &[("verb", verb)]);
            // Top up to the running total: record_telemetry may be called
            // repeatedly on the same registry without double-counting.
            c.add(count - c.value());
        }
        reg.gauge("mgmt_dhcp_active_leases", &[])
            .set(now, self.dhcp.active_leases() as f64);
        reg.gauge("mgmt_dns_records", &[])
            .set(now, self.dns.len() as f64);
        self.snapshot(now).record_telemetry(reg, now);
    }

    /// Dispatches one management request at time `now`.
    ///
    /// # Errors
    ///
    /// [`ApiError`] with REST semantics (404 unknown resources, 409
    /// conflicts, 507 capacity).
    pub fn handle(&mut self, req: ApiRequest, now: SimTime) -> Result<ApiResponse, ApiError> {
        *self.api_calls.entry(req.verb()).or_insert(0) += 1;
        match req {
            ApiRequest::ClusterSummary => {
                let snap = self.snapshot(now);
                Ok(ApiResponse::Summary {
                    nodes: snap.node_count(),
                    containers: snap.total_containers(),
                    running: snap.total_running(),
                    mean_cpu: snap.mean_cpu(),
                })
            }
            ApiRequest::ListNodes => Ok(ApiResponse::Nodes(self.snapshot(now))),
            ApiRequest::NodeStatus(node) => {
                let daemon = self
                    .daemons
                    .get_mut(&node)
                    .ok_or_else(|| ApiError::NotFound(format!("no such node {node}")))?;
                Ok(ApiResponse::Node(daemon.sample(now)))
            }
            ApiRequest::SpawnContainer { node, name, image } => self.spawn(node, name, &image, now),
            ApiRequest::StopContainer { node, container } => {
                let daemon = self
                    .daemons
                    .get_mut(&node)
                    .ok_or_else(|| ApiError::NotFound(format!("no such node {node}")))?;
                daemon.stop(container)?;
                let info = Self::info_of(daemon, container)?;
                Ok(ApiResponse::ContainerUpdated {
                    node,
                    container,
                    info,
                })
            }
            ApiRequest::DestroyContainer { node, container } => {
                let daemon = self
                    .daemons
                    .get_mut(&node)
                    .ok_or_else(|| ApiError::NotFound(format!("no such node {node}")))?;
                let node_name = daemon.name().to_owned();
                let ct_name = daemon
                    .host()
                    .container(container)
                    .map(|c| c.name().to_owned());
                daemon.destroy(container)?;
                if let Some(ct_name) = ct_name {
                    self.dns
                        .unregister(&DnsService::container_name(&ct_name, &node_name));
                }
                if let Some(client) = self.container_leases.remove(&(node, container)) {
                    self.dhcp.release(client);
                }
                Ok(ApiResponse::Destroyed { node, container })
            }
            ApiRequest::SetVmLimits {
                node,
                container,
                cpu_shares,
                memory_limit,
            } => {
                if cpu_shares.is_none() && memory_limit.is_none() {
                    return Err(ApiError::BadRequest(
                        "limits request changes nothing".to_owned(),
                    ));
                }
                let daemon = self
                    .daemons
                    .get_mut(&node)
                    .ok_or_else(|| ApiError::NotFound(format!("no such node {node}")))?;
                daemon.set_limits(container, cpu_shares, memory_limit)?;
                let info = Self::info_of(daemon, container)?;
                Ok(ApiResponse::ContainerUpdated {
                    node,
                    container,
                    info,
                })
            }
            ApiRequest::ListImages => Ok(ApiResponse::Images(
                self.images
                    .names()
                    .filter_map(|n| {
                        // A name without a golden image (mid-update store
                        // churn) is skipped rather than panicking the API.
                        self.images
                            .golden(n)
                            .ok()
                            .map(|img| (n.to_owned(), img.version))
                    })
                    .collect(),
            )),
            ApiRequest::PatchImage { name } => {
                let version = self
                    .images
                    .patch(&name)
                    .map_err(|e| ApiError::NotFound(e.to_string()))?;
                Ok(ApiResponse::Patched { name, version })
            }
        }
    }

    fn spawn(
        &mut self,
        node: NodeId,
        name: String,
        image: &str,
        now: SimTime,
    ) -> Result<ApiResponse, ApiError> {
        let rack = self
            .daemons
            .get(&node)
            .map(|d| d.rack())
            .ok_or_else(|| ApiError::NotFound(format!("no such node {node}")))?;
        let img = self
            .images
            .spawn(image, node)
            .map_err(|e| ApiError::NotFound(e.to_string()))?;
        let daemon = self
            .daemons
            .get_mut(&node)
            .ok_or_else(|| ApiError::NotFound(format!("no such node {node}")))?;
        let container = daemon.spawn(name.clone(), ContainerConfig::new(img))?;
        let node_name = daemon.name().to_owned();
        // Bridged networking: the container leases its own address.
        let client = ClientId(self.next_client);
        self.next_client += 1;
        let lease = self
            .dhcp
            .request(client, u8::try_from(rack).unwrap_or(u8::MAX), now)
            .map_err(|e| ApiError::InsufficientStorage(e.to_string()))?;
        let dns_name = DnsService::container_name(&name, &node_name);
        self.dns.register(dns_name.clone(), lease.addr);
        self.container_leases.insert((node, container), client);
        Ok(ApiResponse::Spawned {
            node,
            container,
            dns_name,
            address: lease.addr.to_string(),
        })
    }

    fn info_of(daemon: &NodeDaemon, container: ContainerId) -> Result<ContainerInfo, ApiError> {
        let c = daemon
            .host()
            .container(container)
            .ok_or_else(|| ApiError::NotFound(format!("no such container {container}")))?;
        Ok(ContainerInfo {
            id: c.id(),
            name: c.name().to_owned(),
            image: c.config().image.name.clone(),
            state: c.state(),
        })
    }
}

impl fmt::Display for Pimaster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pimaster: {} nodes, {} DNS records, {} images",
            self.daemons.len(),
            self.dns.len(),
            self.images.names().count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picloud_container::container::ContainerState;
    use picloud_simcore::units::Bytes;

    fn master_with(n: u32) -> Pimaster {
        let mut m = Pimaster::new();
        for i in 0..n {
            m.register_node(NodeSpec::pi_model_b_rev1(), (i / 14) as u16, SimTime::ZERO)
                .expect("rack subnet has room");
        }
        m
    }

    #[test]
    fn registration_names_and_addresses() {
        let m = master_with(56);
        assert_eq!(m.node_count(), 56);
        // Naming policy: pi-<rack>-<slot>.
        assert!(m.dns().resolve("pi-0-0.picloud").is_some());
        assert!(m.dns().resolve("pi-3-13.picloud").is_some());
        assert!(m.dns().resolve("pi-4-0.picloud").is_none());
        // Rack subnets.
        let a = m.dns().resolve("pi-0-0.picloud").unwrap();
        let b = m.dns().resolve("pi-3-0.picloud").unwrap();
        assert_eq!(a.0[2], 0);
        assert_eq!(b.0[2], 3);
    }

    #[test]
    fn destroy_returns_the_lease_to_the_pool() {
        // A long spawn/destroy churn (every failover is one cycle) must
        // not drain the rack's DHCP pool: far more cycles than a /24
        // holds addresses all succeed because destroy releases the lease.
        let mut m = master_with(4);
        for i in 0..600 {
            let resp = m
                .handle(
                    ApiRequest::SpawnContainer {
                        node: NodeId(0),
                        name: format!("churn-{i}"),
                        image: "lighttpd".into(),
                    },
                    SimTime::ZERO,
                )
                .expect("the pool never runs dry");
            let ApiResponse::Spawned { container, .. } = resp else {
                unreachable!("spawn returns Spawned");
            };
            m.handle(
                ApiRequest::DestroyContainer {
                    node: NodeId(0),
                    container,
                },
                SimTime::ZERO,
            )
            .expect("destroy succeeds");
        }
        let leases = m.dhcp().active_leases();
        assert!(leases <= 4, "only node leases remain, got {leases}");
    }

    #[test]
    fn spawn_via_api_wires_dhcp_and_dns() {
        let mut m = master_with(4);
        let resp = m
            .handle(
                ApiRequest::SpawnContainer {
                    node: NodeId(2),
                    name: "web-0".into(),
                    image: "lighttpd".into(),
                },
                SimTime::ZERO,
            )
            .unwrap();
        let ApiResponse::Spawned {
            node,
            dns_name,
            address,
            ..
        } = &resp
        else {
            panic!("expected Spawned, got {resp:?}");
        };
        assert_eq!(*node, NodeId(2));
        assert_eq!(dns_name, "web-0.pi-0-2.picloud");
        assert!(m.dns().resolve(dns_name).is_some());
        assert!(address.starts_with("10.0.0."));
    }

    #[test]
    fn spawn_unknown_image_404s() {
        let mut m = master_with(1);
        let err = m
            .handle(
                ApiRequest::SpawnContainer {
                    node: NodeId(0),
                    name: "x".into(),
                    image: "windows-server".into(),
                },
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err.status_code(), 404);
    }

    #[test]
    fn spawn_until_507() {
        let mut m = master_with(1);
        for i in 0..6 {
            m.handle(
                ApiRequest::SpawnContainer {
                    node: NodeId(0),
                    name: format!("c{i}"),
                    image: "lighttpd".into(),
                },
                SimTime::ZERO,
            )
            .unwrap();
        }
        let err = m
            .handle(
                ApiRequest::SpawnContainer {
                    node: NodeId(0),
                    name: "c6".into(),
                    image: "lighttpd".into(),
                },
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err.status_code(), 507);
    }

    #[test]
    fn stop_destroy_and_dns_cleanup() {
        let mut m = master_with(1);
        let resp = m
            .handle(
                ApiRequest::SpawnContainer {
                    node: NodeId(0),
                    name: "web-0".into(),
                    image: "lighttpd".into(),
                },
                SimTime::ZERO,
            )
            .unwrap();
        let ApiResponse::Spawned {
            container,
            dns_name,
            ..
        } = resp
        else {
            panic!()
        };
        let resp = m
            .handle(
                ApiRequest::StopContainer {
                    node: NodeId(0),
                    container,
                },
                SimTime::from_secs(1),
            )
            .unwrap();
        let ApiResponse::ContainerUpdated { info, .. } = resp else {
            panic!()
        };
        assert_eq!(info.state, ContainerState::Stopped);
        m.handle(
            ApiRequest::DestroyContainer {
                node: NodeId(0),
                container,
            },
            SimTime::from_secs(2),
        )
        .unwrap();
        assert!(
            m.dns().resolve(&dns_name).is_none(),
            "DNS record cleaned up"
        );
    }

    #[test]
    fn set_limits_via_api() {
        let mut m = master_with(1);
        let ApiResponse::Spawned { container, .. } = m
            .handle(
                ApiRequest::SpawnContainer {
                    node: NodeId(0),
                    name: "db".into(),
                    image: "database".into(),
                },
                SimTime::ZERO,
            )
            .unwrap()
        else {
            panic!()
        };
        m.handle(
            ApiRequest::SetVmLimits {
                node: NodeId(0),
                container,
                cpu_shares: Some(2048),
                memory_limit: Some(Bytes::mib(64)),
            },
            SimTime::ZERO,
        )
        .unwrap();
        let c = m
            .daemon(NodeId(0))
            .unwrap()
            .host()
            .container(container)
            .unwrap();
        assert_eq!(c.config().cpu_shares, 2048);
        // Empty limit change is a 400.
        let err = m
            .handle(
                ApiRequest::SetVmLimits {
                    node: NodeId(0),
                    container,
                    cpu_shares: None,
                    memory_limit: None,
                },
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err.status_code(), 400);
    }

    #[test]
    fn cluster_summary_counts() {
        let mut m = master_with(3);
        for node in 0..3u32 {
            m.handle(
                ApiRequest::SpawnContainer {
                    node: NodeId(node),
                    name: format!("web-{node}"),
                    image: "lighttpd".into(),
                },
                SimTime::ZERO,
            )
            .unwrap();
        }
        let ApiResponse::Summary {
            nodes,
            containers,
            running,
            ..
        } = m
            .handle(ApiRequest::ClusterSummary, SimTime::from_secs(1))
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(nodes, 3);
        assert_eq!(containers, 3);
        assert_eq!(running, 3);
    }

    #[test]
    fn image_patch_via_api() {
        let mut m = master_with(1);
        let ApiResponse::Patched { version, .. } = m
            .handle(
                ApiRequest::PatchImage {
                    name: "lighttpd".into(),
                },
                SimTime::ZERO,
            )
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(version, 2);
        let ApiResponse::Images(images) = m.handle(ApiRequest::ListImages, SimTime::ZERO).unwrap()
        else {
            panic!()
        };
        assert!(images.contains(&("lighttpd".to_owned(), 2)));
    }

    #[test]
    fn unknown_node_404s_everywhere() {
        let mut m = master_with(1);
        let ghost = NodeId(9);
        for req in [
            ApiRequest::NodeStatus(ghost),
            ApiRequest::StopContainer {
                node: ghost,
                container: ContainerId(0),
            },
            ApiRequest::DestroyContainer {
                node: ghost,
                container: ContainerId(0),
            },
        ] {
            assert_eq!(m.handle(req, SimTime::ZERO).unwrap_err().status_code(), 404);
        }
    }

    #[test]
    fn exhausted_rack_pool_is_a_507_not_a_panic() {
        // A /24 rack subnet holds 253 leases (host octets 2..=254).
        let mut m = Pimaster::new();
        for _ in 0..253 {
            m.register_node(NodeSpec::pi_model_b_rev1(), 0, SimTime::ZERO)
                .expect("pool has room");
        }
        let err = m
            .register_node(NodeSpec::pi_model_b_rev1(), 0, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err.status_code(), 507);
        // The failed registration consumed nothing: the next rack works
        // and ids continue contiguously.
        assert_eq!(m.node_count(), 253);
        let id = m
            .register_node(NodeSpec::pi_model_b_rev1(), 1, SimTime::ZERO)
            .expect("fresh rack leases");
        assert_eq!(id, NodeId(253));
        assert!(m.dns().resolve("pi-1-0.picloud").is_some());
    }

    #[test]
    fn display_summarises() {
        assert!(master_with(2).to_string().contains("2 nodes"));
    }
}
