//! A web farm on the PiCloud: spawn lighttpd containers across the
//! cluster through the management API, drive a diurnal load, and watch the
//! Fig. 4 control panel — the §II-C use case end to end.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example webfarm
//! ```

use picloud::PiCloud;
use picloud_hardware::node::NodeId;
use picloud_mgmt::api::{ApiRequest, ApiResponse};
use picloud_mgmt::panel::ControlPanel;
use picloud_simcore::units::Bytes;
use picloud_simcore::SimTime;
use picloud_workloads::httpd::{HttpRequest, HttpServerSpec};
use rand::Rng;

fn main() {
    let mut cloud = PiCloud::glasgow();
    let server = HttpServerSpec::lighttpd();
    let page = HttpRequest::static_page();
    let mut rng = cloud.seeds().stream("webfarm/load");

    // Spawn one web container per node across the whole cluster.
    let mut farm: Vec<(NodeId, picloud_container::container::ContainerId)> = Vec::new();
    for node in 0..cloud.node_count() as u32 {
        let resp = cloud
            .api(
                ApiRequest::SpawnContainer {
                    node: NodeId(node),
                    name: format!("web-{node}"),
                    image: "lighttpd".to_owned(),
                },
                SimTime::ZERO,
            )
            .expect("fresh node hosts one container");
        let ApiResponse::Spawned { container, .. } = resp else {
            unreachable!()
        };
        farm.push((NodeId(node), container));
    }
    println!("Spawned {} web containers (one per Pi).\n", farm.len());

    // Soft limits on half the farm, §II-C style.
    for (node, ct) in farm.iter().take(28) {
        cloud
            .api(
                ApiRequest::SetVmLimits {
                    node: *node,
                    container: *ct,
                    cpu_shares: Some(512),
                    memory_limit: Some(Bytes::mib(48)),
                },
                SimTime::ZERO,
            )
            .expect("limits apply");
    }

    // Drive three load epochs: night, morning, peak.
    let mut panel = ControlPanel::new();
    for (epoch, (label, base_rps)) in [("night", 20.0), ("morning", 120.0), ("peak", 320.0)]
        .iter()
        .enumerate()
    {
        let now = SimTime::from_secs(epoch as u64 * 3600);
        for (node, ct) in &farm {
            let rps: f64 = base_rps * rng.gen_range(0.5..1.5);
            let demand = server.cpu_demand_hz(&page, rps);
            cloud
                .pimaster_mut()
                .daemon_mut(*node)
                .expect("node exists")
                .set_demand(*ct, demand);
        }
        let view = panel.refresh(cloud.pimaster_mut(), now);
        println!("=== {label} (t={now}) ===");
        println!(
            "mean CPU {:.0}%, hottest node: {}",
            view.mean_cpu_percent,
            view.rows
                .iter()
                .max_by(|a, b| a.cpu_percent.partial_cmp(&b.cpu_percent).unwrap())
                .map(|r| format!("{} at {:.0}%", r.node, r.cpu_percent))
                .unwrap_or_default()
        );
        // Print the first rack's rows as a sample of the Fig. 4 panel.
        for row in view.rows.iter().take(4) {
            println!(
                "  {:<18} cpu {:>3.0}%  mem {:>3.0}/{:<3.0} MiB  {}",
                row.node,
                row.cpu_percent,
                row.mem_used_mib,
                row.mem_total_mib,
                row.containers.join(", ")
            );
        }
        // Latency check at this epoch on one representative node.
        match server.mm1_latency(700e6, &page, *base_rps) {
            Some(latency) => println!("  per-node M/M/1 latency ≈ {latency}\n"),
            None => println!("  per-node load exceeds a single Pi core — saturated!\n"),
        }
    }

    // Final JSON payload, truncated — what the panel frontend fetches.
    let view = panel.refresh(cloud.pimaster_mut(), SimTime::from_secs(4 * 3600));
    let json = view.to_json();
    println!(
        "panel JSON payload: {} bytes (first 200: {})",
        json.len(),
        &json[..200.min(json.len())]
    );
}
