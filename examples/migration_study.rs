//! Migration study: the conclusion's future work ("we will implement
//! sophisticated live migration within the PiCloud"), implemented.
//!
//! Sweeps cold vs pre-copy migration on the Pi's Fast Ethernet and the
//! gigabit re-cable, then shows consolidation using migration for power
//! savings — with its congestion bill.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example migration_study
//! ```

use picloud::experiments::migration_exp::MigrationExperiment;
use picloud::experiments::placement_exp::PlacementExperiment;
use picloud_placement::migration::LiveMigrationModel;
use picloud_simcore::units::{Bandwidth, Bytes};

fn main() {
    // E6: the timing sweep at both link rates.
    println!("{}", MigrationExperiment::paper_scale());
    println!("{}", MigrationExperiment::gigabit_recable());

    // The convergence cliff, explicitly: a 64 MB container against a
    // rising dirty rate on Fast Ethernet (12.5 MB/s).
    println!("Pre-copy convergence cliff (64 MiB container, 100 Mbit/s):");
    let model = LiveMigrationModel::default();
    for mb_per_s in [1.0f64, 4.0, 8.0, 11.0, 12.0, 13.0, 16.0] {
        let out = model.pre_copy(Bytes::mib(64), mb_per_s * 1e6);
        println!(
            "  dirty {mb_per_s:>5.1} MB/s -> downtime {:>12} total {:>12} rounds {:>2} {}",
            out.downtime.to_string(),
            out.total_time.to_string(),
            out.rounds,
            if out.converged {
                "converged"
            } else {
                "DIVERGED (stop-and-copy fallback)"
            }
        );
    }
    println!();

    // A "what bandwidth do I need" table for SLA planning.
    println!("Bandwidth needed to migrate a 128 MiB instance with <300 ms downtime:");
    for mbps in [100u64, 200, 500, 1000] {
        let m = LiveMigrationModel {
            bandwidth: Bandwidth::mbps(mbps),
            ..LiveMigrationModel::default()
        };
        let out = m.pre_copy(Bytes::mib(128), 6e6); // 6 MB/s dirtying
        println!(
            "  {:>4} Mbit/s -> downtime {:>12} ({} on the wire) {}",
            mbps,
            out.downtime.to_string(),
            out.bytes_transferred,
            if out.converged { "" } else { "<- diverged" }
        );
    }
    println!();

    // E5: consolidation uses these migrations; show the full ledger.
    println!("{}", PlacementExperiment::paper_scale());
}
