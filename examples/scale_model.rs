//! The scale-model argument, quantified end to end.
//!
//! §IV asks "Isn't the Raspberry Pi just a 'toy' device?" — this example
//! runs the reproduction's answer: the fidelity comparison (shape vs
//! magnitude), the discrete-event web-server validation behind it, and the
//! efficiency levers (cpufreq governors, oversubscription) a scale model
//! lets you study for pennies.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example scale_model
//! ```

use picloud::experiments::dvfs_exp::DvfsExperiment;
use picloud::experiments::fidelity::FidelityExperiment;
use picloud::experiments::oversub_exp::OversubscriptionExperiment;
use picloud::experiments::sla_exp::SlaExperiment;
use picloud_simcore::SeedFactory;
use picloud_workloads::websim::{simulate, WebSimConfig};

fn main() {
    // E10: shape vs magnitude, Pi cluster vs x86 cluster.
    println!("{}", FidelityExperiment::paper_scale());

    // The queueing behaviour underneath: a Pi web server from light load
    // to overload, simulated request by request on the event engine.
    println!("\nOne Pi core serving static pages (M/D/1, simulated):");
    let seeds = SeedFactory::new(2013);
    for rps in [50.0, 175.0, 280.0, 330.0, 420.0] {
        let cfg = WebSimConfig::pi_static(rps);
        let report = simulate(&cfg, 30_000, &seeds);
        println!(
            "  offered {rps:>4.0} req/s (rho {:.2}): {report}",
            cfg.rho()
        );
    }

    // E15: the cpufreq governors over a diurnal day.
    println!("\n{}", DvfsExperiment::paper_scale());

    // E14: oversubscription density vs overload risk.
    println!("\n{}", OversubscriptionExperiment::paper_scale());

    // E16: the SLA cost of density, per placement policy.
    println!("\n{}", SlaExperiment::paper_scale());
}
