//! Hadoop on the PiCloud: run MapReduce jobs on the cluster fabric and
//! watch the shuffle exercise the aggregation layer — the cross-layer
//! interaction (§III/§IV) the testbed exists to expose.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example mapreduce
//! ```

use picloud::{PiCloud, TopologyKind};
use picloud_network::flowsim::RateAllocator;
use picloud_network::routing::RoutingPolicy;
use picloud_network::topology::DeviceKind;
use picloud_simcore::units::Bytes;
use picloud_workloads::mapreduce::MapReduceJob;

fn run_job(cloud: &PiCloud, job: &MapReduceJob, workers: usize) {
    let hosts: Vec<_> = cloud
        .node_ids()
        .take(workers)
        .map(|n| cloud.device_of(n))
        .collect();
    let mut sim = cloud.flow_simulator(RoutingPolicy::default(), RateAllocator::MaxMin);
    let plan = job.plan(&hosts);
    let spec = cloud.node_spec();
    let outcome = plan.execute(&mut sim, spec.clock, &spec.storage);
    println!("{job} on {workers} Pis:");
    println!(
        "  map {} | shuffle {} | reduce {} | makespan {}",
        outcome.map_time,
        outcome.shuffle_time,
        outcome.reduce_time,
        outcome.makespan()
    );
    println!(
        "  shuffle rack-locality {:.0}%, network flows {}",
        outcome.shuffle_rack_locality * 100.0,
        plan.shuffle_flows().len()
    );
    // Where did the shuffle hurt? Top uplinks by mean utilisation.
    let topo = sim.topology();
    let mut uplinks: Vec<(String, f64)> = topo
        .links()
        .iter()
        .filter(|l| {
            matches!(
                (&topo.device(l.a).kind, &topo.device(l.b).kind),
                (DeviceKind::TopOfRack { .. }, DeviceKind::Aggregation)
                    | (DeviceKind::Aggregation, DeviceKind::TopOfRack { .. })
            )
        })
        .map(|l| {
            (
                format!("{}-{}", topo.device(l.a).name, topo.device(l.b).name),
                sim.mean_link_utilisation(l.id),
            )
        })
        .collect();
    uplinks.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("  busiest uplinks during the job:");
    for (name, util) in uplinks.iter().take(3) {
        println!("    {name:<16} mean {:.1}%", util * 100.0);
    }
    println!();
}

fn main() {
    let cloud = PiCloud::glasgow();
    println!("{cloud}\n");

    // Wordcount: CPU-ish, light shuffle.
    run_job(&cloud, &MapReduceJob::wordcount(Bytes::mib(128)), 16);

    // Terasort: shuffle == input — the network-bound case.
    run_job(&cloud, &MapReduceJob::terasort_like(Bytes::mib(128)), 16);

    // Scale-out: the same sort on the whole 56-node cloud.
    run_job(&cloud, &MapReduceJob::terasort_like(Bytes::mib(128)), 56);

    // The fat-tree re-cable: same job, richer fabric.
    let fat = PiCloud::builder()
        .topology(TopologyKind::FatTree { k: 6 })
        .build();
    println!("--- after re-cabling to {} ---\n", fat.topology_kind());
    run_job(&fat, &MapReduceJob::terasort_like(Bytes::mib(128)), 54);
}
