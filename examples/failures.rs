//! Failure drills on the PiCloud: what breaks, what survives.
//!
//! Covers the resilience side of the testbed: aggregation-root loss on the
//! paper fabric vs the fat-tree re-cable, random link attrition, and the
//! management plane's answer — centralised pimaster vs peer-to-peer
//! gossip.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example failures
//! ```

use picloud::experiments::failure_exp::FailureExperiment;
use picloud::experiments::p2p_mgmt::P2pMgmtExperiment;
use picloud_hardware::node::NodeId;
use picloud_mgmt::gossip::GossipNetwork;
use picloud_network::failure::{aggregation_devices, ConnectivityReport, FailureMask};
use picloud_network::topology::Topology;
use picloud_simcore::SeedFactory;

fn main() {
    // The full failure-injection sweep.
    println!("{}", FailureExperiment::run(2013));

    // A live walk-through: lose one root, then both.
    let topo = Topology::multi_root_tree(4, 14, 2);
    let roots = aggregation_devices(&topo);
    println!(
        "\nWalk-through on the paper fabric ({} aggregation roots):",
        roots.len()
    );
    let mut mask = FailureMask::none();
    println!("  healthy:         {}", ConnectivityReport::measure(&topo));
    mask.fail_device(roots[0]);
    println!(
        "  one root down:   {}",
        ConnectivityReport::measure(&mask.apply(&topo).topology)
    );
    mask.fail_device(roots[1]);
    println!(
        "  both roots down: {} (racks are islands)",
        ConnectivityReport::measure(&mask.apply(&topo).topology)
    );

    // The management plane under failure: pimaster vs gossip.
    println!("\n{}", P2pMgmtExperiment::paper_scale());

    // Gossip riding out a progressive failure.
    println!("\nGossip under progressive node loss (56 nodes, fanout 2):");
    let mut net = GossipNetwork::new(56, 2, &SeedFactory::new(99));
    net.run_to_convergence(64).expect("healthy convergence");
    for wave in 1..=3u32 {
        for i in 0..7 {
            net.fail_node(NodeId((wave - 1) * 7 + i));
        }
        let mut probe = net.clone();
        let ok = probe.run_to_convergence(64).is_some();
        println!(
            "  wave {wave}: {} nodes down, survivors {} converge",
            wave * 7,
            if ok { "still" } else { "NO LONGER" }
        );
    }
}
