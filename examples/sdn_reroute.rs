//! SDN on the PiCloud: the OpenFlow aggregation layer in action.
//!
//! Demonstrates §II-A/§III: reactive vs proactive rule installation on the
//! paper fabric, then the IP-less routing experiment — migrate a service
//! container across racks and compare control-plane churn under IP
//! addressing versus flat labels.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example sdn_reroute
//! ```

use picloud::experiments::sdn_exp::SdnExperiment;
use picloud_network::topology::Topology;
use picloud_sdn::controller::{InstallMode, SdnController};
use picloud_sdn::ipless::{AddressingMode, IplessFabric, Label};
use picloud_simcore::SimTime;

fn main() {
    // A first flow pays the control-plane round trip; the second rides the
    // installed rules.
    let topo = Topology::multi_root_tree(4, 14, 2);
    let hosts: Vec<_> = topo.hosts().map(|h| h.id).collect();
    let mut ctrl = SdnController::new(topo, InstallMode::Reactive);
    let first = ctrl.route(hosts[0], hosts[55]);
    let second = ctrl.route(hosts[0], hosts[55]);
    println!("reactive fabric, flow pi-0-0 -> pi-3-13:");
    println!(
        "  first packet: {} setup, {} rules installed along {} hops",
        first.setup_latency,
        first.rules_installed,
        first.path.len()
    );
    println!(
        "  second flow:  {} setup (cache hit: {})\n",
        second.setup_latency, second.cache_hit
    );

    // The full discipline comparison.
    println!("{}", SdnExperiment::paper_scale());

    // A live walk-through of the IP-less migration story.
    println!("\nWalk-through: migrating a service with 10 clients attached");
    for mode in [AddressingMode::IpSubnet, AddressingMode::FlatLabel] {
        let topo = Topology::multi_root_tree(4, 14, 2);
        let hosts: Vec<_> = topo.hosts().map(|h| h.id).collect();
        let mut fabric = IplessFabric::new(topo, mode);
        let svc = Label(7);
        fabric.bind(svc, hosts[55]);
        for host in hosts.iter().take(10) {
            fabric
                .open_session(*host, svc)
                .expect("bound label routes on a healthy fabric");
        }
        let impact = fabric
            .migrate(svc, hosts[14], SimTime::from_secs(1))
            .expect("bound label migrates");
        println!(
            "  {mode}: {} rules touched, {} sessions broken, converged in {}",
            impact.rules_touched, impact.flows_disrupted, impact.convergence_latency
        );
    }
}
