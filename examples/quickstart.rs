//! Quickstart: build the Glasgow PiCloud, look at every layer, and
//! regenerate the paper's Table I and Figs. 1–3.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use picloud::experiments::{fig3::Fig3, table1::Table1};
use picloud::PiCloud;
use picloud_hardware::node::NodeId;
use picloud_simcore::SimTime;

fn main() {
    // ---------------------------------------------------------------
    // The testbed of the paper: 56 Raspberry Pi Model B boards, four
    // Lego racks of 14, multi-root tree fabric, pimaster on top.
    // ---------------------------------------------------------------
    let mut cloud = PiCloud::glasgow();
    println!("{cloud}\n");

    // Fig. 1 — the racks.
    println!("--- Fig. 1: the racks (first rack shown) ---");
    let racks = cloud.render_racks();
    let first_rack: String = racks.lines().take(17).collect::<Vec<_>>().join("\n");
    println!("{first_rack}\n");

    // Fig. 2 — the architecture.
    println!("--- Fig. 2: system architecture ---");
    println!("{}", cloud.render_architecture());

    // Fig. 3 — the per-Pi software stack: deploy web + db + hadoop on
    // node 0 through the management API.
    println!("--- Fig. 3: software stack on node 0 ---");
    let stack = cloud
        .deploy_standard_stack(NodeId(0), SimTime::ZERO)
        .expect("a fresh Pi hosts the standard stack");
    println!("{}", stack.render_ascii());
    for member in stack.members() {
        println!(
            "  {} -> {} @ {}",
            member.image, member.dns_name, member.address
        );
    }
    println!();

    // Table I — the cost breakdown, regenerated.
    println!("{}", Table1::paper());

    // The §II-B density claims behind Fig. 3.
    println!("{}", Fig3::run());

    // The single-socket claim.
    println!(
        "Whole-cloud nameplate power: {} — fits a single UK socket: {}",
        cloud.nameplate_power(),
        cloud.fits_single_socket()
    );
}
